#!/usr/bin/env python3
"""Quickstart: train a shared dictionary, compress a library, get it back.

This walks through the core ZSMILES workflow of the paper (Figure 3):

1. generate a small MIXED SMILES library (stand-in for a screening input),
2. train the shared dictionary with the paper's recommended configuration
   (ring-identifier preprocessing + SMILES-alphabet pre-population),
3. compress / decompress individual records and a whole ``.smi`` file,
4. persist the dictionary so other tools (and other machines) can reuse it.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ZSmilesCodec
from repro.core.streaming import compress_file, decompress_file, write_lines
from repro.datasets import mixed


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="zsmiles_quickstart_"))
    print(f"working directory: {workdir}\n")

    # ------------------------------------------------------------------ #
    # 1. A library to compress (synthetic MIXED corpus, see DESIGN.md).
    # ------------------------------------------------------------------ #
    library = mixed.generate(2_000, seed=7)
    print(f"generated {len(library)} SMILES; example record: {library[0]}")

    # ------------------------------------------------------------------ #
    # 2. Train the shared dictionary (Table I's best configuration).
    # ------------------------------------------------------------------ #
    codec = ZSmilesCodec.train(library, preprocessing=True, lmax=8)
    report = codec.training_report
    assert report is not None
    print(report.summary())

    # ------------------------------------------------------------------ #
    # 3a. Single-record compression.
    # ------------------------------------------------------------------ #
    vanillin = "COc1cc(C=O)ccc1O"  # the paper's Figure 1 example
    compressed = codec.compress(vanillin)
    print(f"\nvanillin:            {vanillin}")
    print(f"compressed ({len(compressed)} chars): {compressed!r}")
    print(f"decompressed:        {codec.decompress(compressed)}")
    print(f"record ratio:        {len(compressed) / len(vanillin):.2f}")

    # ------------------------------------------------------------------ #
    # 3b. Whole-file compression with preserved line separability.
    # ------------------------------------------------------------------ #
    smi_path = workdir / "library.smi"
    write_lines(smi_path, library)
    stats = compress_file(codec, smi_path)
    print(
        f"\ncompressed file:     {stats.output_path.name} "
        f"({stats.input_bytes} -> {stats.output_bytes} bytes, ratio {stats.ratio:.3f})"
    )
    restored = decompress_file(codec, stats.output_path, workdir / "restored.smi")
    print(f"decompressed file:   {restored.output_path.name} ({restored.lines} records)")

    # ------------------------------------------------------------------ #
    # 4. Persist the dictionary for reuse.
    # ------------------------------------------------------------------ #
    dct_path = workdir / "shared.dct"
    codec.save_dictionary(dct_path)
    reloaded = ZSmilesCodec.from_dictionary(dct_path)
    assert reloaded.decompress(compressed) == codec.preprocess(vanillin)
    print(f"\ndictionary saved to {dct_path} and reloaded successfully")

    corpus_ratio = codec.compression_ratio(library)
    print(f"corpus compression ratio: {corpus_ratio:.3f} (paper reports up to 0.29)")


if __name__ == "__main__":
    main()
