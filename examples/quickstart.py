#!/usr/bin/env python3
"""Quickstart: train a shared dictionary, compress a library, get it back.

This walks through the core ZSMILES workflow of the paper (Figure 3) on the
unified engine surface:

1. generate a small MIXED SMILES library (stand-in for a screening input),
2. train the shared dictionary with the paper's recommended configuration
   (ring-identifier preprocessing + SMILES-alphabet pre-population) via
   ``ZSmilesEngine.train``,
3. compress / decompress a whole batch, a single record and a ``.smi`` file
   through the same engine (``backend="auto"`` transparently moves large
   batches onto the process pool),
4. persist the dictionary so other tools (and other machines) can reuse it,
5. pack the library into a block-compressed ``.zss`` store and serve single
   molecules out of it — decoding only the block that holds them,
6. pack the same corpus into a *sharded* library (``library.json`` + N
   shards) and serve it through ``CorpusLibrary`` — synchronously and
   concurrently via ``AsyncCorpusLibrary``'s bounded reader pool,
7. stand up the HTTP serving front over that library and read it back
   through ``CorpusClient`` (and plain ``open_reader("http://…")``) — the
   same corpus, now a network service (``zsmiles serve`` is the CLI
   spelling) — then scale it out: a multi-process ``ServerFleet``
   (``zsmiles serve --workers N``), deflate-compressed transport, and a
   replica-aware ``FailoverCorpusClient`` that rides out a dead replica,
8. run the curation loop: ingest a messy dump (filters + streaming dedup),
   train a *pinned* dictionary on a reservoir sample of the same pass, pack
   with it, and migrate the live library to a new dictionary with
   ``repack_library`` — ``zsmiles ingest`` / ``train-dict`` / ``repack`` on
   the CLI,
9. run a generative GA screening campaign over the packed corpus: sample a
   seed population, breed with the fragment operators, score, select, and
   pack every generation as a composed library — then kill it mid-run and
   resume from ``campaign.json`` to the exact same results (``zsmiles
   campaign run`` / ``resume`` / ``status`` / ``top-hits`` on the CLI),
10. survive bit rot: flip bits in a copy of the shards with the seeded
    fault harness (``repro.faults``), let ``zsmiles fsck`` pin down every
    damaged block, and restore the shards byte-identically from a healthy
    replica with ``fsck --repair`` — while degraded reads quarantine the
    bad block and keep serving everything else,
11. observe the stack: serve the library with a structured JSON access log,
    drive it under a caller-chosen trace id, scrape ``GET /metrics``
    (Prometheus text, per-route latency histograms, fleet-aggregated), and
    read the request's span back from ``/stats?trace=recent`` — ``zsmiles
    serve --access-log`` and ``zsmiles stats URL --watch`` on the CLI.

Migrating from the pre-engine API?  ``ZSmilesCodec.train`` →
``ZSmilesEngine.train``, ``codec.compress_many(xs)`` →
``engine.compress_batch(xs).records``, ``compress_file(codec, path)`` →
``engine.compress_file(path)``; the old names still work as shims.
Migrating reader plumbing?  See the serving guide in ``repro.library``.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro import (
    AsyncCorpusLibrary,
    BackgroundServer,
    CorpusClient,
    CorpusLibrary,
    CorpusStore,
    EngineConfig,
    FailoverCorpusClient,
    ServerFleet,
    ZSmilesEngine,
    open_reader,
    pack_library,
    pack_records,
)
from repro.core.streaming import write_lines
from repro.datasets import mixed


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="zsmiles_quickstart_"))
    print(f"working directory: {workdir}\n")

    # ------------------------------------------------------------------ #
    # 1. A library to compress (synthetic MIXED corpus, see DESIGN.md).
    # ------------------------------------------------------------------ #
    library = mixed.generate(2_000, seed=7)
    print(f"generated {len(library)} SMILES; example record: {library[0]}")

    # ------------------------------------------------------------------ #
    # 2. Train the shared dictionary (Table I's best configuration).
    #    One EngineConfig collects dictionary, preprocessing, parsing and
    #    backend-selection knobs.
    # ------------------------------------------------------------------ #
    engine = ZSmilesEngine.train(library, EngineConfig(preprocessing=True, lmax=8))
    report = engine.training_report
    assert report is not None
    print(report.summary())

    # ------------------------------------------------------------------ #
    # 3a. Batch compression — the engine's primary surface.
    # ------------------------------------------------------------------ #
    batch = engine.compress_batch(library)
    print(
        f"\nbatch of {batch.stats.lines} records via {batch.backend!r} backend: "
        f"ratio {batch.stats.ratio:.3f} in {batch.wall_time:.2f}s"
    )
    restored = engine.decompress_batch(batch.records)
    assert restored.records == [engine.preprocess(s) for s in library]

    # 3b. Single-record convenience helpers.
    vanillin = "COc1cc(C=O)ccc1O"  # the paper's Figure 1 example
    compressed = engine.compress(vanillin)
    print(f"\nvanillin:            {vanillin}")
    print(f"compressed ({len(compressed)} chars): {compressed!r}")
    print(f"decompressed:        {engine.decompress(compressed)}")
    print(f"record ratio:        {len(compressed) / len(vanillin):.2f}")

    # ------------------------------------------------------------------ #
    # 3c. Whole-file compression with preserved line separability.
    # ------------------------------------------------------------------ #
    smi_path = workdir / "library.smi"
    write_lines(smi_path, library)
    stats = engine.compress_file(smi_path)
    print(
        f"\ncompressed file:     {stats.output_path.name} "
        f"({stats.input_bytes} -> {stats.output_bytes} bytes, ratio {stats.ratio:.3f})"
    )
    restored_file = engine.decompress_file(stats.output_path, workdir / "restored.smi")
    print(f"decompressed file:   {restored_file.output_path.name} ({restored_file.lines} records)")

    # ------------------------------------------------------------------ #
    # 4. Persist the dictionary for reuse.
    # ------------------------------------------------------------------ #
    dct_path = workdir / "shared.dct"
    engine.save_dictionary(dct_path)
    reloaded = ZSmilesEngine.from_dictionary(dct_path)
    assert reloaded.decompress(compressed) == engine.preprocess(vanillin)
    print(f"\ndictionary saved to {dct_path} and reloaded successfully")

    corpus_stats = engine.evaluate(library)
    print(f"corpus compression ratio: {corpus_stats.ratio:.3f} (paper reports up to 0.29)")

    # ------------------------------------------------------------------ #
    # 5. Pack into the block-compressed .zss store and query it.
    #    Blocks are compressed through the engine (parallel across blocks on
    #    the process pool for big corpora); the dictionary is embedded in the
    #    store footer, so the reader needs no external codec.
    # ------------------------------------------------------------------ #
    zss_path = workdir / "library.zss"
    info = pack_records(zss_path, library, engine, records_per_block=128)
    print(
        f"\npacked store:        {zss_path.name} — {info.records} records in "
        f"{info.blocks} blocks, {info.file_bytes} bytes (payload ratio {info.ratio:.3f})"
    )
    with CorpusStore(zss_path) as store:
        molecule = store.get(1_234)
        assert molecule == engine.preprocess(library[1_234])
        shard = store.shards[0]
        print(
            f"store.get(1234):     {molecule} "
            f"(decoded {shard.blocks_decoded} of {shard.block_count} blocks, "
            f"{shard.bytes_read} of {info.payload_bytes} payload bytes)"
        )

    # ------------------------------------------------------------------ #
    # 6. Shard the corpus into a serving library and read it concurrently.
    #    library.json routes global indices to shards; shards open lazily
    #    and share one LRU cache budget.  The async surface fans batched
    #    requests out over a bounded pool of readers.
    # ------------------------------------------------------------------ #
    library_dir = workdir / "library.library"
    lib_info = pack_library(library_dir, library, engine, shards=4, records_per_block=128)
    print(
        f"\nsharded library:     {library_dir.name} — {lib_info.records} records in "
        f"{lib_info.shard_count} shards ({lib_info.blocks} blocks, "
        f"{lib_info.file_bytes} bytes on disk)"
    )
    with CorpusLibrary.open(library_dir) as lib:
        assert lib.get(1_234) == engine.preprocess(library[1_234])
        print(
            f"library.get(1234):   routed to shard "
            f"{lib.manifest.locate(1_234)[0]} ({lib.open_shard_count} of "
            f"{lib.shard_count} shards opened)"
        )

    async def serve_concurrently() -> None:
        async with AsyncCorpusLibrary.open(library_dir, pool_size=4) as alib:
            wanted = [5, 999, 1_234, 1_999]
            records = await alib.get_many(wanted)
            assert records == [engine.preprocess(library[i]) for i in wanted]
            streamed = [record async for record in alib.stream(0, 8)]
            assert streamed == [engine.preprocess(s) for s in library[:8]]
            print(
                f"async get_many:      {len(records)} records over "
                f"{alib.pool_size} pooled readers; streamed {len(streamed)} more"
            )

    asyncio.run(serve_concurrently())

    # ------------------------------------------------------------------ #
    # 7. The network tier: the same library as an HTTP service.
    #    `zsmiles serve library.library --port 8765` is the CLI spelling;
    #    here the server runs on a background thread of this process.  The
    #    bounded reader pool caps concurrent block decodes (backpressure),
    #    and any RecordReader consumer can point at the URL.
    # ------------------------------------------------------------------ #
    with BackgroundServer(library_dir, readers=4) as server:
        with CorpusClient(server.url) as client:
            assert client.get(1_234) == engine.preprocess(library[1_234])
            batch = client.get_many([5, 999, 1_234, 1_999])
            streamed = client.slice(0, 256)
            stats = client.stats()
            print(
                f"\nHTTP serving front:  {server.url} — fetched 1 + {len(batch)} + "
                f"{len(streamed)} records over the wire "
                f"(cache: {stats['cache']['hits']} hits / "
                f"{stats['cache']['misses']} misses)"
            )
        # Consumers don't need to know it's remote: open_reader dispatches.
        with open_reader(server.url) as remote:
            assert remote.get(42) == engine.preprocess(library[42])
            print("open_reader(url):    served record 42 through the shared protocol")

    # ------------------------------------------------------------------ #
    # 7b. Scale the front out.  `zsmiles serve library.library --workers 4`
    #     pre-forks worker processes over the same library (SO_REUSEPORT
    #     kernel dispatch where available, a proxy accept-loop otherwise);
    #     ServerFleet is the in-process spelling.  Clients negotiate
    #     deflate transport transparently (Accept-Encoding; the server only
    #     compresses when it pays), and FailoverCorpusClient round-robins
    #     replicas, retrying connection loss and 503s while typed request
    #     errors (404/400) propagate untouched.
    # ------------------------------------------------------------------ #
    with ServerFleet(library_dir, workers=2, readers=4) as fleet:
        with BackgroundServer(library_dir, readers=4) as second_replica:
            with FailoverCorpusClient([fleet.url, second_replica.url]) as client:
                wanted = [5, 999, 1_234, 1_999]
                assert client.get_many(wanted) == [
                    engine.preprocess(library[i]) for i in wanted
                ]
                fleet.kill_worker(0)  # a replica degrades mid-flight...
                streamed = client.slice(0, 256)  # ...and reads keep landing
                assert streamed == [engine.preprocess(s) for s in library[:256]]
                print(
                    f"fleet + failover:    {fleet.mode} fleet of 2 workers at "
                    f"{fleet.url}; killed one worker mid-stream, "
                    f"{len(streamed)} records still byte-correct across "
                    f"{len(client.urls)} replicas (deflate transport)"
                )

    # ------------------------------------------------------------------ #
    # 8. The curation loop: ingest -> train -> pack -> repack.
    #    A messy multi-source dump streams through filters + dedup once;
    #    a reservoir sampler tees off the training sample in the same pass;
    #    the dictionary is pinned (name/version/content hash) so every
    #    manifest packed with it records its identity; and when a better
    #    dictionary lands, the live library migrates loss-free.
    # ------------------------------------------------------------------ #
    from repro.curation import (
        IngestPipeline,
        ReservoirSampler,
        ingest_to_file,
        repack_library,
        save_pinned,
        strip_filter,
        tee,
    )

    dump_path = workdir / "dump.txt"
    write_lines(dump_path, library + library[:500] + ["", "   "])  # dupes + blanks
    curated_path = workdir / "curated.smi"
    pipeline = IngestPipeline([strip_filter()])
    stats = ingest_to_file(dump_path, curated_path, pipeline)
    print(
        f"\ningest:              {stats.lines_in} lines -> {stats.records_out} "
        f"records ({stats.rejected_total()} rejected; counters tally)"
    )

    sampler = ReservoirSampler(1_000, seed=7)
    for _ in tee(pipeline.process(dump_path), sampler):
        pass
    engine_v2 = ZSmilesEngine.train(sampler.sample, EngineConfig(preprocessing=True, lmax=8))
    identity = save_pinned(engine_v2.table, workdir / "shared-v2.dct",
                           name="quickstart", version="2")
    print(f"trained dictionary:  {identity.label()} on a {len(sampler)}-record sample")

    result = repack_library(library_dir, workdir / "library.v2.library",
                            engine_v2.table, shard_jobs=2)
    print(
        f"repacked library:    {result.records} records -> "
        f"{result.target_identity.label()} (readback verified; source untouched)"
    )

    # ------------------------------------------------------------------ #
    # 9. A generative GA screening campaign over the packed corpus.
    #    Seeds sample from the library (the same sample(n, seed) the HTTP
    #    tier serves), offspring breed through the fragment operators and
    #    the curation filter chain, the deterministic docking surrogate
    #    scores them, and every generation lands as a normal library
    #    composed into one manifest.  campaign.json checkpoints the RNG
    #    state after each generation, so a campaign killed at any instant
    #    resumes to byte-identical results.
    # ------------------------------------------------------------------ #
    from repro.campaign import CampaignConfig, CampaignDriver, campaign_top_hits

    campaign_dir = workdir / "campaign"
    config = CampaignConfig(population_size=16, generations=3, seed=29,
                            immigrants=4)
    with CampaignDriver.start(library_dir, campaign_dir, config) as driver:
        driver.step()  # generation 1... then pretend the process died.
    # A new process picks the checkpoint up and finishes the campaign.
    with CampaignDriver.resume(campaign_dir) as driver:
        state = driver.run()
    best, best_score = campaign_top_hits(campaign_dir, 1)[0]
    print(
        f"\ncampaign:            {state.generation + 1} generations, "
        f"{state.counters()['scored']} molecules scored, resumed after an "
        f"interrupt;\n                     best hit {best_score:.3f}  {best}"
    )

    # ------------------------------------------------------------------ #
    # 10. Disks rot: scrub and repair the packed library.  A seeded fault
    #     schedule flips bits in a *copy* of the shards (the healthy
    #     original plays the role of a clean replica), ``zsmiles fsck``
    #     pins down every damaged block, and ``--repair`` restores the
    #     shards byte-identically from the replica.  Reads of the corrupt
    #     copy stay degraded, not dead: the bad block is quarantined and
    #     every record outside it keeps serving.
    # ------------------------------------------------------------------ #
    import shutil

    from repro import fsck_path, repair_path
    from repro.faults import FaultSchedule, apply_corruptions

    damaged_dir = workdir / "library_damaged"
    shutil.copytree(library_dir, damaged_dir)
    schedule = FaultSchedule(seed=4242)
    plan = schedule.plan_corruptions(
        sorted(damaged_dir.glob("*.zss")), flips=3, truncations=0
    )
    apply_corruptions(plan)

    report = fsck_path(damaged_dir)
    print(f"\nfsck after bit rot:  {report.summary().splitlines()[1].strip()}")
    result = repair_path(damaged_dir, replica=library_dir)
    assert result.after.clean, "repair must leave the library clean"
    parity = all(
        (damaged_dir / path.name).read_bytes() == path.read_bytes()
        for path in sorted(library_dir.glob("*.zss"))
    )
    print(
        f"fsck --repair:       restored {len(result.repaired)} shard(s) from "
        f"the replica; byte-identical: {parity}"
    )

    # ------------------------------------------------------------------ #
    # 11. Observe the stack.  Serve with a structured access log, pin a
    #     trace id on a batch of reads (the client stamps it on every
    #     request; the server adopts, logs and echoes it), scrape the
    #     Prometheus exposition, and read the spans back.  `zsmiles serve
    #     --access-log access.log` / `zsmiles stats URL --watch 2` are the
    #     CLI spellings; ZSMILES_TELEMETRY=off is the kill switch (responses
    #     stay byte-identical either way).
    # ------------------------------------------------------------------ #
    import json

    from repro.telemetry import trace_context

    access_log = workdir / "access.log"
    with BackgroundServer(library_dir, readers=4, access_log=access_log) as server:
        with CorpusClient(server.url) as client:
            with trace_context() as trace_id:
                client.get(1_234)           # both requests share one trace id
                client.get_many([5, 999])
            exposition = client.metrics()
            spans = client.stats(trace=True)["trace"]
    latency_lines = [
        line for line in exposition.splitlines()
        if line.startswith("zsmiles_server_request_seconds_bucket")
    ]
    logged = [json.loads(line) for line in access_log.read_text().splitlines()]
    traced = [entry for entry in logged if entry["request_id"] == trace_id]
    print(
        f"\nobservability:       trace {trace_id} covered "
        f"{len(traced)} access-log lines "
        f"(routes {sorted({e['route'] for e in traced})}); /metrics served "
        f"{len(latency_lines)} latency-bucket series; "
        f"{len(spans)} recent spans via /stats?trace=recent"
    )
    assert all(entry["status"] == 200 for entry in traced)
    assert any(span["trace_id"] == trace_id for span in spans)


if __name__ == "__main__":
    main()
