#!/usr/bin/env python3
"""Ablation study: how much does each ZSMILES optimization buy? (paper Table I)

The two domain-specific optimizations of the paper are ring-identifier
renumbering (Section IV-A) and dictionary pre-population (Section IV-B).  This
example trains a dictionary for every combination on the same MIXED sample and
reports the resulting compression ratios, together with the paper's own
numbers for reference.

Run with:  python examples/ablation_study.py
"""

from __future__ import annotations

from repro.datasets import mixed
from repro.experiments import ExperimentScale, run_table1
from repro.preprocess.ring_renumber import renumber_rings


def show_preprocessing_effect() -> None:
    example = "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2"  # dibenzoylmethane (Section IV-A)
    print("ring-identifier renumbering example:")
    print(f"  before: {example}")
    print(f"  after:  {renumber_rings(example)}")
    print("  both benzene rings now share the substring 'C0=CC=C', so a single")
    print("  dictionary entry covers both.\n")


def main() -> None:
    show_preprocessing_effect()

    scale = ExperimentScale(training_size=1_500, evaluation_size=1_500, seed=3)
    corpus = mixed.generate(max(scale.training_size, scale.evaluation_size), seed=scale.seed)
    result = run_table1(scale=scale, corpus=corpus)

    print(result.to_table().to_text())
    (preprocessing, policy), ratio = result.best()
    print(f"\nbest configuration: preprocessing={'yes' if preprocessing else 'no'}, "
          f"pre-population={policy.value} -> ratio {ratio:.3f}")
    print("the paper reaches the same configuration (preprocessing + SMILES alphabet).")


if __name__ == "__main__":
    main()
