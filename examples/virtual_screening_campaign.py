#!/usr/bin/env python3
"""Virtual screening campaign over a ZSMILES-compressed ligand library.

The paper's motivating scenario (Section I): an extreme-scale screening
campaign stores a huge ligand library on shared storage, scores ligands
against several protein pockets, and domain experts later sample individual
molecules out of the compressed library without decompressing it.

This example runs the whole loop on a laptop-sized synthetic library:

1. build an EXSCALATE-like library and compress it with a shared dictionary,
2. run the (toy) docking model against three pockets on a random sample,
   fetching ligands through the random-access reader,
3. write the score-decorated ``.smi`` outputs per pocket,
4. pull a specific hit back out of the compressed library by line number,
5. project the storage savings to campaign scale (the paper's ≈72 TB example).

Run with:  python examples/virtual_screening_campaign.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ZSmilesCodec
from repro.datasets import exscalate, mixed
from repro.screening import DEFAULT_POCKETS, ScreeningCampaign, format_bytes


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="zsmiles_campaign_"))
    print(f"working directory: {workdir}\n")

    # Shared dictionary trained on the MIXED corpus (the paper's recommendation
    # from Table II: the mixed dictionary generalizes best).
    training = mixed.generate(1_500, seed=11)
    codec = ZSmilesCodec.train(training, preprocessing=True, lmax=8)

    # The screening input library.
    library = exscalate.generate(1_200, seed=42)
    campaign = ScreeningCampaign(codec, pockets=DEFAULT_POCKETS, top_k=10)
    zsmi_path, index, footprint = campaign.prepare_library(library, workdir, name="ligands")

    print("library prepared:")
    print(f"  raw size:              {format_bytes(footprint.raw_bytes)}")
    print(f"  ZSMILES size:          {format_bytes(footprint.zsmiles_bytes)} "
          f"(ratio {footprint.zsmiles_ratio:.3f})")
    print(f"  ZSMILES+bzip2 (cold):  {format_bytes(footprint.zsmiles_bzip2_bytes)} "
          f"(ratio {footprint.cold_storage_ratio:.3f})")

    # Score a random sample of the compressed library (random access in action).
    result = campaign.run(zsmi_path, index=index, sample=400, seed=3, footprint=footprint)
    print(f"\nscored {len(result.sampled_indices)} sampled ligands against "
          f"{len(campaign.pockets)} pockets")

    for pocket in campaign.pockets:
        best_smiles, best_score = result.hits[pocket.name][0]
        print(f"  {pocket.name:>7}: best score {best_score:7.3f}  {best_smiles}")

    output_paths = campaign.write_results(result, workdir / "scores")
    print(f"\nper-pocket score files written: {[p.name for p in output_paths.values()]}")

    # A domain expert pulls one specific ligand back out of the compressed file.
    line_number = result.sampled_indices[0]
    ligand = campaign.fetch_hit(zsmi_path, line_number)
    print(f"\nrandom-access fetch of line {line_number}: {ligand}")

    # Project the footprint to campaign scale (the paper cites ~72 TB of
    # screening data for the Marconi100 campaign).
    campaign_records = 10_000_000_000  # ten billion ligands
    projection = footprint.scaled(campaign_records)
    print(f"\nprojection to {campaign_records:,} ligands:")
    print(f"  raw .smi:        {format_bytes(projection['raw_bytes'])}")
    print(f"  ZSMILES .zsmi:   {format_bytes(projection['zsmiles_bytes'])}")
    print(f"  cold storage:    {format_bytes(projection['zsmiles_bzip2_bytes'])}")


if __name__ == "__main__":
    main()
