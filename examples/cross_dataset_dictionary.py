#!/usr/bin/env python3
"""Choosing the training set for the shared dictionary (paper Table II).

ZSMILES deliberately uses one *input-independent* dictionary for every library
so that databases can be cut and combined freely.  Which corpus should that
dictionary be trained on?  This example reproduces the paper's cross-dictionary
experiment at a small scale: train one dictionary per dataset (GDB-17-like,
MEDIATE-like, EXSCALATE-like and their MIXED union) and evaluate every
dictionary on every dataset.

Expected outcome (as in Table II): each dictionary is best on its own dataset,
the homogeneous GDB-17 dictionary transfers worst, and the MIXED dictionary is
the best compromise — which is why the paper adopts it as the shared one.

Run with:  python examples/cross_dataset_dictionary.py
"""

from __future__ import annotations

from repro import ZSmilesCodec
from repro.datasets import mixed
from repro.metrics.reporting import ResultTable


def main() -> None:
    corpora = mixed.generate_components(800, seed=5)
    order = ["GDB-17", "MEDIATE", "EXSCALATE", "MIXED"]

    print("training one dictionary per dataset...")
    codecs = {
        name: ZSmilesCodec.train(corpora[name], preprocessing=True, lmax=8)
        for name in order
    }

    table = ResultTable(
        title="Cross-dictionary compression ratios (rows: training set, columns: test set)",
        columns=["Train \\ Test", *order, "Avg"],
    )
    averages = {}
    for train in order:
        ratios = [codecs[train].compression_ratio(corpora[test]) for test in order]
        averages[train] = sum(ratios) / len(ratios)
        table.add_row(train, *ratios, averages[train])
    print()
    print(table.to_text())

    best = min(averages, key=averages.get)
    print(f"\nbest shared dictionary: trained on {best} "
          f"(average ratio {averages[best]:.3f})")
    print("the paper reaches the same conclusion and ships the MIXED dictionary.")


if __name__ == "__main__":
    main()
