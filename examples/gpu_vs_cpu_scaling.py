#!/usr/bin/env python3
"""Serial vs accelerated ZSMILES: the Figure 5 experiment plus a real CPU pool.

The paper compares its serial C++ implementation against a CUDA version and
finds a ≈7× compression / ≈2× decompression speedup, flat in ``Lmax`` because
the kernels are memory-bound.  This reproduction has no GPU, so two things are
shown side by side:

* the *simulated* device model (calibrated EPYC-core vs A100 profiles fed with
  real kernel work counts) regenerating the Figure 5 curves, and
* the *real* process-pool backend compressing a batch on all local cores,
  demonstrating that the per-record decomposition parallelizes losslessly.

Run with:  python examples/gpu_vs_cpu_scaling.py
"""

from __future__ import annotations

import time

from repro import ZSmilesCodec
from repro.datasets import mixed
from repro.metrics.reporting import ResultTable
from repro.parallel import CPU_PROFILE, GPU_PROFILE, ParallelCodec, run_performance_sweep


def simulated_figure5() -> None:
    corpus = mixed.generate(1_200, seed=17)
    sweep = run_performance_sweep(corpus[:600], corpus[600:], lmax_values=(5, 8, 15))

    for operation, label in (("compression", "Figure 5a"), ("decompression", "Figure 5b")):
        table = ResultTable(
            title=f"{label} — normalized execution time vs Lmax (simulated devices)",
            columns=["Backend", "Lmax=5", "Lmax=8", "Lmax=15"],
        )
        for profile in (CPU_PROFILE, GPU_PROFILE):
            series = {p.lmax: p.normalized for p in sweep.series(profile.name, operation)}
            table.add_row(profile.name, series[5], series[8], series[15])
        print(table.to_text())
        print(f"  -> speedup at Lmax=15: {sweep.speedup(operation):.2f}x "
              f"(paper: {'7x' if operation == 'compression' else '2x'})\n")


def real_process_pool() -> None:
    corpus = mixed.generate(3_000, seed=23)
    codec = ZSmilesCodec.train(corpus[:1_000], preprocessing=True, lmax=8)
    batch = corpus[1_000:]

    start = time.perf_counter()
    serial = codec.compress_many(batch)
    serial_time = time.perf_counter() - start

    parallel_codec = ParallelCodec(codec, chunk_size=256, serial_threshold=0)
    start = time.perf_counter()
    parallel = parallel_codec.compress_many(batch)
    parallel_time = time.perf_counter() - start

    assert parallel == serial  # identical output, any number of workers
    stats = parallel_codec.last_stats
    print("real CPU process pool:")
    print(f"  records:        {len(batch)}")
    print(f"  serial:         {serial_time:.2f} s")
    print(f"  {stats.workers} workers:     {parallel_time:.2f} s "
          f"(speedup {serial_time / max(parallel_time, 1e-9):.2f}x, "
          "includes process start-up)")


def main() -> None:
    simulated_figure5()
    real_process_pool()


if __name__ == "__main__":
    main()
