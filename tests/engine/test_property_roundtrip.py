"""Property test: batch round trips across every registered backend.

For every registered execution backend and both parse strategies, compressing
then decompressing a generated corpus must reproduce the preprocessed input
exactly — the engine-level statement of the paper's losslessness property
(Section IV; preprocessing is a canonicalization, so the fixed point is the
preprocessed string, and the byte-exact case is covered with preprocessing
disabled).
"""

from __future__ import annotations

import pytest

from repro.datasets import mixed
from repro.engine import EngineConfig, ZSmilesEngine, available_backends

from ..conftest import CURATED_SMILES


@pytest.fixture(scope="module")
def generated_corpus():
    # Generated corpus plus curated grammar-edge cases (rings, charges,
    # isotopes, two-digit ring ids...).
    return mixed.generate(90, seed=1234) + CURATED_SMILES


@pytest.mark.parametrize("strategy", ["optimal", "greedy"])
@pytest.mark.parametrize("backend", sorted(available_backends()))
class TestRoundTripProperty:
    def test_roundtrip_equals_preprocessed_input(
        self, backend, strategy, generated_corpus
    ):
        engine = ZSmilesEngine.train(
            generated_corpus,
            EngineConfig(
                preprocessing=True,
                strategy=strategy,
                lmax=7,
                jobs=2,
                chunk_size=24,
            ),
        )
        with engine:
            compressed = engine.compress_batch(generated_corpus, backend=backend)
            restored = engine.decompress_batch(compressed.records, backend=backend)
        assert restored.records == [engine.preprocess(s) for s in generated_corpus]

    def test_roundtrip_is_byte_exact_without_preprocessing(
        self, backend, strategy, generated_corpus
    ):
        engine = ZSmilesEngine.train(
            generated_corpus,
            EngineConfig(
                preprocessing=False,
                strategy=strategy,
                lmax=7,
                jobs=2,
                chunk_size=24,
            ),
        )
        with engine:
            compressed = engine.compress_batch(generated_corpus, backend=backend)
            restored = engine.decompress_batch(compressed.records, backend=backend)
        assert restored.records == list(generated_corpus)
