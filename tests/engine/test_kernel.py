"""Byte-parity suite: the flat-array kernel vs the reference oracle.

The kernel (:mod:`repro.engine.kernel`) must reproduce the reference per-line
path **exactly** — output bytes, match/escape statistics, error types and
messages — on the golden fixtures, through every registered engine backend,
and over generated inputs including the nasty cases: escape-heavy non-SMILES
text, empty records, characters beyond Latin-1 (the line-level fallback) and
inputs built from maximum-length dictionary patterns.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import ZSmilesCodec
from repro.core.compressor import ParseStrategy
from repro.core.streaming import read_lines
from repro.dictionary.codec_table import CodecTable, DictionaryEntry
from repro.engine import EngineConfig, ZSmilesEngine, available_backends
from repro.engine.backends import KernelBackend, SerialBackend
from repro.engine.kernel import BlockKernel, CodecAutomaton
from repro.errors import CompressionError, DecompressionError

from ..conftest import CURATED_SMILES
from ..fixtures.regenerate import CORPUS, FIXTURES


# --------------------------------------------------------------------------- #
# Shared codecs / kernels
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def golden_codec() -> ZSmilesCodec:
    return ZSmilesCodec.from_dictionary(FIXTURES / "golden.dct", preprocessing=False)

@pytest.fixture(scope="module")
def golden_compressed() -> list[str]:
    return list(read_lines(FIXTURES / "corpus.zsmi"))


def reference_records(codec: ZSmilesCodec, lines: list[str]):
    records = [codec.compress_record(line) for line in lines]
    return (
        [r.compressed for r in records],
        sum(r.matches for r in records),
        sum(r.escapes for r in records),
    )


# --------------------------------------------------------------------------- #
# Golden-fixture parity
# --------------------------------------------------------------------------- #
class TestGoldenParity:
    def test_kernel_reproduces_golden_bytes(self, golden_codec, golden_compressed):
        kernel = BlockKernel(golden_codec)
        records, matches, escapes = kernel.compress_block(CORPUS)
        assert records == golden_compressed
        _, ref_matches, ref_escapes = reference_records(golden_codec, CORPUS)
        assert (matches, escapes) == (ref_matches, ref_escapes)

    def test_kernel_inverts_golden_bytes(self, golden_codec, golden_compressed):
        kernel = BlockKernel(golden_codec)
        assert kernel.decompress_block(golden_compressed) == CORPUS

    def test_kernel_backend_is_default_in_process_route(self, golden_codec):
        engine = ZSmilesEngine.from_codec(golden_codec)
        result = engine.compress_batch(CORPUS)
        assert result.backend == "kernel"

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_every_backend_matches_kernel_bytes(
        self, backend, golden_codec, golden_compressed
    ):
        with ZSmilesEngine.from_codec(golden_codec, backend=backend, jobs=2) as engine:
            result = engine.compress_batch(CORPUS, backend=backend)
        assert result.records == golden_compressed


class TestAutomatonStructure:
    def test_state_count_matches_trie_size(self, golden_codec):
        automaton = CodecAutomaton(golden_codec.table)
        # One state per distinct pattern prefix plus the root.
        prefixes = {
            pattern[:k]
            for pattern in golden_codec.table.patterns()
            for k in range(1, len(pattern) + 1)
        }
        assert automaton.num_states == len(prefixes) + 1

    def test_max_pattern_length_mirrors_table(self, golden_codec):
        automaton = CodecAutomaton(golden_codec.table)
        assert automaton.max_pattern_length == golden_codec.table.max_pattern_length

    def test_non_latin1_table_is_unsupported(self):
        table = CodecTable(
            [DictionaryEntry(symbol="Ā", pattern="zz", seeded=False)],
            prepopulation="none",
        )
        assert CodecAutomaton.try_from_table(table) is None

    def test_non_latin1_table_falls_back_to_reference(self):
        table = CodecTable(
            [
                DictionaryEntry(symbol="a", pattern="a", seeded=True),
                DictionaryEntry(symbol="Ā", pattern="zz", seeded=False),
            ],
            prepopulation="none",
        )
        codec = ZSmilesCodec(table)
        kernel = BlockKernel(codec)
        assert kernel.automaton is None
        lines = ["azza", "", "qq"]
        expected, matches, escapes = reference_records(codec, lines)
        assert kernel.compress_block(lines) == (expected, matches, escapes)
        assert kernel.decompress_block(expected) == lines


# --------------------------------------------------------------------------- #
# Strategy / preprocessing / stats parity on generated corpora
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("strategy", ["optimal", "greedy"])
@pytest.mark.parametrize("preprocessing", [True, False])
class TestBackendParity:
    def test_kernel_matches_serial_bytes_and_stats(
        self, strategy, preprocessing, mixed_corpus_small
    ):
        engine = ZSmilesEngine.train(
            mixed_corpus_small,
            EngineConfig(preprocessing=preprocessing, strategy=strategy, lmax=7),
        )
        corpus = mixed_corpus_small[:120] + CURATED_SMILES + ["", "C", "!weird?"]
        serial = engine.compress_batch(corpus, backend="serial")
        kernel = engine.compress_batch(corpus, backend="kernel")
        assert kernel.records == serial.records
        assert (kernel.stats.matches, kernel.stats.escapes) == (
            serial.stats.matches,
            serial.stats.escapes,
        )
        assert (kernel.stats.original_bytes, kernel.stats.compressed_bytes) == (
            serial.stats.original_bytes,
            serial.stats.compressed_bytes,
        )
        restored_serial = engine.decompress_batch(serial.records, backend="serial")
        restored_kernel = engine.decompress_batch(serial.records, backend="kernel")
        assert restored_kernel.records == restored_serial.records


class TestEdgeCaseParity:
    def test_empty_batch_and_empty_lines(self, plain_codec):
        kernel = BlockKernel(plain_codec)
        assert kernel.compress_block([]) == ([], 0, 0)
        assert kernel.compress_block(["", ""])[0] == ["", ""]
        assert kernel.decompress_block([]) == []
        assert kernel.decompress_block([""]) == [""]

    def test_escape_heavy_input(self, plain_codec):
        # Characters with no single-char dictionary coverage escape 1:1.
        lines = ["!!!???", "x y z", "\x7f\x80\xff", "a!b?c"]
        expected, matches, escapes = reference_records(plain_codec, lines)
        assert BlockKernel(plain_codec).compress_block(lines) == (
            expected,
            matches,
            escapes,
        )

    def test_max_pattern_length_runs(self, plain_codec):
        lmax = plain_codec.table.max_pattern_length
        longest = max(plain_codec.table.patterns(), key=len)
        lines = [longest, longest * 3, longest[:-1], "C" * (lmax * 4 + 1)]
        expected, matches, escapes = reference_records(plain_codec, lines)
        assert BlockKernel(plain_codec).compress_block(lines) == (
            expected,
            matches,
            escapes,
        )

    def test_non_latin1_line_falls_back_per_line(self, plain_codec):
        kernel = BlockKernel(plain_codec)
        assert kernel.automaton is not None
        lines = ["CCO", "CαC", "世界", ""]
        expected, matches, escapes = reference_records(plain_codec, lines)
        assert kernel.compress_block(lines) == (expected, matches, escapes)
        assert kernel.decompress_block(expected) == lines

    def test_line_terminator_rejected_like_reference(self, plain_codec):
        kernel = BlockKernel(plain_codec)
        with pytest.raises(CompressionError, match="line terminators"):
            kernel.compress_block(["C\nC"])
        with pytest.raises(DecompressionError, match="line terminators"):
            kernel.decompress_block(["C\rC"])

    def test_dangling_escape_error_matches_reference(self, plain_codec):
        kernel = BlockKernel(plain_codec)
        with pytest.raises(DecompressionError) as kernel_error:
            kernel.decompress_block(["CC "])
        with pytest.raises(DecompressionError) as reference_error:
            plain_codec.decompress("CC ")
        assert str(kernel_error.value) == str(reference_error.value)

    def test_unknown_symbol_error_matches_reference(self, plain_codec):
        unknown = next(
            chr(code)
            for code in range(1, 256)
            if chr(code) not in (" ", "\n", "\r")
            and plain_codec.table.pattern_for(chr(code)) is None
        )
        kernel = BlockKernel(plain_codec)
        with pytest.raises(DecompressionError) as kernel_error:
            kernel.decompress_block([unknown])
        with pytest.raises(DecompressionError) as reference_error:
            plain_codec.decompress(unknown)
        assert str(kernel_error.value) == str(reference_error.value)

    def test_escaped_space_round_trips(self, plain_codec):
        # A literal space compresses to escape-marker + space (two spaces).
        line = "a b"
        kernel = BlockKernel(plain_codec)
        compressed, _, _ = kernel.compress_block([line])
        assert compressed == [plain_codec.compress(line)]
        assert kernel.decompress_block(compressed) == [line]


# --------------------------------------------------------------------------- #
# Hypothesis property: parity over generated SMILES-ish text
# --------------------------------------------------------------------------- #
#: Alphabet mixing SMILES characters, escape-forcing punctuation and Latin-1
#: extremes; separate strategy injects astral characters for the fallback.
_SMILES_ISH = st.text(
    alphabet="CNOPSFIclnos()[]123456789%=#-+@H/\\.*"
    + "!?_^"      # escape-forcing printable noise
    + "\x7f\xfe"  # Latin-1 boundary
    + "Δ",   # beyond Latin-1: forces the per-line reference fallback
    max_size=40,
)


class TestHypothesisParity:
    @given(lines=st.lists(_SMILES_ISH, max_size=12))
    @settings(max_examples=120, deadline=None)
    def test_generated_lines_match_reference(self, plain_codec, lines):
        kernel = BlockKernel(plain_codec)
        expected, matches, escapes = reference_records(plain_codec, lines)
        assert kernel.compress_block(lines) == (expected, matches, escapes)
        assert kernel.decompress_block(expected) == lines

    @given(lines=st.lists(_SMILES_ISH, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_generated_lines_match_greedy_reference(self, plain_codec, lines):
        greedy_codec = ZSmilesCodec(
            plain_codec.table,
            pipeline=plain_codec.pipeline,
            strategy=ParseStrategy.GREEDY,
        )
        kernel = BlockKernel(greedy_codec)
        expected, matches, escapes = reference_records(greedy_codec, lines)
        assert kernel.compress_block(lines) == (expected, matches, escapes)


# --------------------------------------------------------------------------- #
# Backend-object behaviour
# --------------------------------------------------------------------------- #
class TestKernelBackendSurface:
    def test_batchresult_mirrors_serial(self, plain_codec, mixed_corpus_small):
        corpus = mixed_corpus_small[:40]
        serial = SerialBackend(plain_codec).compress_batch(corpus)
        kernel = KernelBackend(plain_codec).compress_batch(corpus)
        assert kernel.records == serial.records
        assert kernel.backend == "kernel"
        assert kernel.workers == 1 and kernel.chunks == 1
        assert kernel.stats.lines == serial.stats.lines

    def test_cumulative_stats_accumulate(self, plain_codec, mixed_corpus_small):
        backend = KernelBackend(plain_codec)
        backend.compress_batch(mixed_corpus_small[:10])
        backend.decompress_batch([])
        stats = backend.stats()
        assert stats.batches == 2
        assert stats.records == 10

    def test_concurrent_compress_batches_stay_byte_identical(
        self, plain_codec, mixed_corpus_small
    ):
        # The kernel backend is cached per engine and its DP scratch is
        # shared, so concurrent compress calls must serialize internally;
        # racing threads previously could interleave scratch state.
        import threading

        backend = KernelBackend(plain_codec)
        corpus = mixed_corpus_small[:120]
        expected, _, _ = reference_records(plain_codec, corpus)
        results: dict[int, list[str]] = {}

        def worker(slot: int) -> None:
            for _ in range(5):
                results[slot] = backend.compress_batch(corpus).records

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(records == expected for records in results.values())

    def test_process_pool_workers_use_kernel(self, plain_codec, mixed_corpus_small):
        # Parity through real worker processes running the kernel chunk path.
        corpus = mixed_corpus_small[:64]
        expected, _, _ = reference_records(plain_codec, corpus)
        with ZSmilesEngine.from_codec(
            plain_codec, backend="process", jobs=2, chunk_size=16
        ) as engine:
            result = engine.compress_batch(corpus, backend="process")
            assert result.records == expected
            restored = engine.decompress_batch(expected, backend="process")
        assert restored.records == corpus
