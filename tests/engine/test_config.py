"""Tests for the consolidated :class:`EngineConfig`."""

from __future__ import annotations

import pytest

from repro.core.compressor import ParseStrategy
from repro.dictionary.prepopulation import PrePopulation
from repro.engine import EngineConfig, EngineConfigError
from repro.engine.config import (
    AUTO_BACKEND,
    KERNEL_BACKEND,
    PROCESS_BACKEND,
    SERIAL_BACKEND,
)


class TestValidation:
    def test_defaults_are_consistent(self):
        config = EngineConfig()
        assert config.backend == AUTO_BACKEND
        assert config.strategy is ParseStrategy.OPTIMAL
        assert config.prepopulation is PrePopulation.SMILES_ALPHABET

    def test_string_strategy_and_prepopulation_coerced(self):
        config = EngineConfig(strategy="greedy", prepopulation="printable")
        assert config.strategy is ParseStrategy.GREEDY
        assert config.prepopulation is PrePopulation.PRINTABLE

    def test_invalid_jobs_rejected(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(jobs=0)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(chunk_size=0)

    def test_replace_returns_updated_copy(self):
        config = EngineConfig(lmax=6)
        other = config.replace(lmax=10, backend=SERIAL_BACKEND)
        assert other.lmax == 10
        assert other.backend == SERIAL_BACKEND
        assert config.lmax == 6  # original untouched


class TestDictionarySlice:
    def test_dictionary_config_mirrors_fields(self):
        config = EngineConfig(lmin=3, lmax=7, max_entries=50, min_occurrences=4)
        dconfig = config.dictionary_config()
        assert dconfig.lmin == 3
        assert dconfig.lmax == 7
        assert dconfig.max_entries == 50
        assert dconfig.min_occurrences == 4
        assert dconfig.prepopulation is config.prepopulation

    def test_build_pipeline_honours_preprocessing_flag(self):
        assert EngineConfig(preprocessing=False).build_pipeline()("CC") == "CC"


class TestBackendResolution:
    def test_explicit_backend_wins(self):
        config = EngineConfig(backend=SERIAL_BACKEND, parallel_threshold=0)
        assert config.resolved_backend(10**6) == SERIAL_BACKEND

    def test_auto_small_batch_is_kernel(self):
        config = EngineConfig(parallel_threshold=100)
        assert config.resolved_backend(99) == KERNEL_BACKEND

    def test_auto_large_batch_is_process(self):
        config = EngineConfig(parallel_threshold=100)
        assert config.resolved_backend(100) == PROCESS_BACKEND

    def test_auto_single_job_stays_in_process(self):
        config = EngineConfig(parallel_threshold=100, jobs=1)
        assert config.resolved_backend(10**6) == KERNEL_BACKEND

    def test_reference_parser_routes_auto_to_serial(self):
        config = EngineConfig(parallel_threshold=100, parser="reference")
        assert config.resolved_backend(99) == SERIAL_BACKEND
        assert config.resolved_backend(100) == PROCESS_BACKEND

    def test_invalid_parser_rejected(self):
        with pytest.raises(EngineConfigError, match="parser"):
            EngineConfig(parser="c++")
