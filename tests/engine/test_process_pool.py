"""Focused tests for :class:`ProcessPoolBackend` (satellite coverage).

Order preservation across chunks, worker-count defaulting and error
propagation are the three behaviours the paper's data-parallel decomposition
depends on ("one record per work item, order preserved").
"""

from __future__ import annotations

import pytest

from repro.engine import EngineConfig, ProcessPoolBackend, default_worker_count
from repro.engine.config import EngineConfigError
from repro.errors import ParallelExecutionError


class TestWorkerDefaults:
    def test_jobs_none_defaults_to_cpu_count(self, plain_codec):
        backend = ProcessPoolBackend(plain_codec, EngineConfig(jobs=None))
        assert backend.workers == default_worker_count()
        assert backend.workers >= 1

    def test_explicit_jobs_respected(self, plain_codec):
        backend = ProcessPoolBackend(plain_codec, EngineConfig(jobs=3))
        assert backend.workers == 3

    def test_invalid_jobs_rejected_at_config_level(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(jobs=0)

    def test_default_config_used_when_omitted(self, plain_codec):
        backend = ProcessPoolBackend(plain_codec)
        assert backend.workers == default_worker_count()
        assert backend.chunk_size == EngineConfig().chunk_size


class TestOrderPreservation:
    def test_order_preserved_across_many_chunks(self, plain_codec, mixed_corpus_small):
        batch = mixed_corpus_small[:60]
        with ProcessPoolBackend(plain_codec, EngineConfig(jobs=2, chunk_size=8)) as pool:
            result = pool.compress_batch(batch)
            assert result.chunks == 8  # 60 records / 8 per chunk
            assert result.records == [plain_codec.compress(s) for s in batch]

            restored = pool.decompress_batch(result.records)
            assert restored.records == batch

    def test_pool_is_reused_across_batches(self, plain_codec, mixed_corpus_small):
        batch = mixed_corpus_small[:20]
        with ProcessPoolBackend(plain_codec, EngineConfig(jobs=2, chunk_size=5)) as pool:
            first = pool.compress_batch(batch)
            pool_obj = pool._pool
            assert pool_obj is not None
            second = pool.compress_batch(batch)
            assert pool._pool is pool_obj  # no respawn between batches
            assert first.records == second.records


class TestErrorPropagation:
    def test_malformed_compressed_input_raises_parallel_error(
        self, plain_codec, mixed_corpus_small
    ):
        compressed = [plain_codec.compress(s) for s in mixed_corpus_small[:12]]
        compressed[7] = "\x00\x01\x02"  # symbols no dictionary contains
        with ProcessPoolBackend(plain_codec, EngineConfig(jobs=2, chunk_size=4)) as pool:
            with pytest.raises(ParallelExecutionError) as excinfo:
                pool.decompress_batch(compressed)
        assert "parallel batch failed" in str(excinfo.value)

    def test_dangling_escape_raises_parallel_error(self, plain_codec):
        with ProcessPoolBackend(plain_codec, EngineConfig(jobs=2, chunk_size=1)) as pool:
            with pytest.raises(ParallelExecutionError):
                pool.decompress_batch([" "])  # escape marker with nothing after it

    def test_pool_survives_worker_exception(self, plain_codec, mixed_corpus_small):
        """A decoding error in one batch must not poison the next batch."""
        batch = mixed_corpus_small[:8]
        with ProcessPoolBackend(plain_codec, EngineConfig(jobs=2, chunk_size=4)) as pool:
            with pytest.raises(ParallelExecutionError):
                pool.decompress_batch(["\x00"])
            result = pool.compress_batch(batch)
            assert result.records == [plain_codec.compress(s) for s in batch]


class TestEmptyBatch:
    def test_empty_batch_needs_no_pool(self, plain_codec):
        backend = ProcessPoolBackend(plain_codec, EngineConfig(jobs=2))
        result = backend.compress_batch([])
        assert result.records == []
        assert backend._pool is None  # no processes were spawned
