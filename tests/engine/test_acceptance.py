"""Acceptance checks for the engine redesign.

The issue's bar: ``experiments/table2.py`` and ``screening/pipeline.py`` run
through :class:`ZSmilesEngine` with byte-identical compressed output (and
hence identical ratios) to the seed :class:`ZSmilesCodec` path.
"""

from __future__ import annotations

import pytest

from repro.core.codec import ZSmilesCodec
from repro.core.streaming import read_lines
from repro.experiments.common import ExperimentScale, component_corpora
from repro.experiments.table2 import DATASET_ORDER, run_table2
from repro.screening.pipeline import ScreeningCampaign


@pytest.fixture(scope="module")
def tiny_scale():
    return ExperimentScale(training_size=120, evaluation_size=120, per_dataset_size=100, seed=0)


@pytest.mark.slow
class TestTable2ThroughEngine:
    def test_matrix_matches_direct_codec_path(self, tiny_scale):
        result = run_table2(scale=tiny_scale, lmax=6)
        corpora = component_corpora(tiny_scale)
        codecs = {
            name: ZSmilesCodec.train(corpora[name], preprocessing=True, lmax=6)
            for name in DATASET_ORDER
        }
        for train in DATASET_ORDER:
            for test in DATASET_ORDER:
                direct = codecs[train].compression_ratio(corpora[test])
                assert result.ratios[(train, test)] == pytest.approx(direct, abs=0.0)


class TestScreeningThroughEngine:
    def test_prepared_library_is_byte_identical_to_codec_path(
        self, trained_codec, mixed_corpus_small, tmp_path
    ):
        campaign = ScreeningCampaign(trained_codec)
        ligands = mixed_corpus_small[:64]
        zsmi_path, index, footprint = campaign.prepare_library(ligands, tmp_path)
        expected = [trained_codec.compress(s) for s in ligands]
        assert list(read_lines(zsmi_path)) == expected
        assert index.line_count == len(ligands)
        assert footprint.records == len(ligands)

    def test_campaign_runs_on_engine_prepared_library(
        self, trained_codec, mixed_corpus_small, tmp_path
    ):
        campaign = ScreeningCampaign(trained_codec, top_k=5)
        ligands = mixed_corpus_small[:40]
        zsmi_path, index, footprint = campaign.prepare_library(ligands, tmp_path)
        result = campaign.run(zsmi_path, index=index, footprint=footprint)
        for pocket in campaign.pockets:
            assert len(result.hits[pocket.name]) == 5
