"""Backend-protocol conformance suite.

Every execution backend — serial, process pool and the baseline adapters —
must satisfy the same contract: order-preserving batch operations with one
output per input, a :class:`BatchResult` carrying coherent statistics, and a
lossless round trip.  The suite is parametrized so adding a backend means
adding one factory entry.
"""

from __future__ import annotations

import pytest

from repro.baselines.bzip2_codec import Bzip2LineCodec
from repro.baselines.fsst import FsstCodec
from repro.baselines.shoco import ShocoCodec
from repro.baselines.zsmiles_adapter import ZSmilesBaseline
from repro.engine import (
    BaselineBackend,
    CompressionBackend,
    EngineConfig,
    ProcessPoolBackend,
    SerialBackend,
    available_backends,
    create_backend,
    register_backend,
)


def _serial(codec, corpus):
    return SerialBackend(codec)


def _process(codec, corpus):
    return ProcessPoolBackend(codec, EngineConfig(jobs=2, chunk_size=16))


def _bzip2(codec, corpus):
    return BaselineBackend.fitted(Bzip2LineCodec(), corpus)


def _shoco(codec, corpus):
    return BaselineBackend.fitted(ShocoCodec(), corpus)


def _fsst(codec, corpus):
    return BaselineBackend.fitted(FsstCodec(), corpus)


def _zsmiles_baseline(codec, corpus):
    return BaselineBackend.fitted(ZSmilesBaseline(preprocessing=False, lmax=6), corpus)


#: name -> factory(codec, corpus) for every backend under conformance test.
BACKEND_FACTORIES = {
    "serial": _serial,
    "process": _process,
    "baseline-bzip2-line": _bzip2,
    "baseline-shoco": _shoco,
    "baseline-fsst": _fsst,
    "baseline-zsmiles": _zsmiles_baseline,
}


@pytest.fixture(scope="module")
def corpus(mixed_corpus_small):
    # Small slice: the process backend pays a real pool spawn per instance.
    return mixed_corpus_small[:48]


@pytest.fixture(scope="module", params=sorted(BACKEND_FACTORIES))
def backend(request, plain_codec, corpus):
    instance = BACKEND_FACTORIES[request.param](plain_codec, corpus)
    yield instance
    closer = getattr(instance, "close", None)
    if closer is not None:
        closer()


class TestProtocolConformance:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, CompressionBackend)
        assert isinstance(backend.name, str) and backend.name

    def test_compress_batch_shape(self, backend, corpus):
        result = backend.compress_batch(corpus)
        assert len(result.records) == len(corpus)
        assert result.stats.lines == len(corpus)
        assert result.stats.original_bytes == sum(len(s) + 1 for s in corpus)
        assert result.stats.compressed_bytes > 0
        assert result.wall_time >= 0.0
        assert result.backend == backend.name

    def test_round_trip_restores_records(self, backend, corpus):
        # Backends here wrap codecs without preprocessing, so the round trip
        # is byte-exact on the raw records.
        compressed = backend.compress_batch(corpus)
        restored = backend.decompress_batch(compressed.records)
        assert restored.records == list(corpus)
        assert restored.stats.lines == len(corpus)

    def test_order_preserved(self, backend, corpus):
        # Compressing a reversed batch must give the reversed compressions.
        forward = backend.compress_batch(corpus).records
        backward = backend.compress_batch(list(reversed(corpus))).records
        assert backward == list(reversed(forward))

    def test_empty_batch(self, backend):
        result = backend.compress_batch([])
        assert result.records == []
        assert result.stats.lines == 0
        assert result.stats.ratio == 1.0

    def test_cumulative_stats_grow(self, backend, corpus):
        before = backend.stats().batches
        backend.compress_batch(corpus[:5])
        after = backend.stats()
        assert after.batches == before + 1
        assert after.records >= 5


class TestSerialProcessParity:
    def test_process_output_is_byte_identical_to_serial(self, plain_codec, corpus):
        serial = SerialBackend(plain_codec)
        with ProcessPoolBackend(plain_codec, EngineConfig(jobs=2, chunk_size=7)) as pool:
            assert pool.compress_batch(corpus).records == serial.compress_batch(corpus).records
            compressed = serial.compress_batch(corpus).records
            assert (
                pool.decompress_batch(compressed).records
                == serial.decompress_batch(compressed).records
            )

    def test_stats_match_between_backends(self, plain_codec, corpus):
        serial = SerialBackend(plain_codec)
        with ProcessPoolBackend(plain_codec, EngineConfig(jobs=2, chunk_size=7)) as pool:
            a = serial.compress_batch(corpus).stats
            b = pool.compress_batch(corpus).stats
        assert (a.lines, a.original_bytes, a.compressed_bytes, a.matches, a.escapes) == (
            b.lines, b.original_bytes, b.compressed_bytes, b.matches, b.escapes
        )


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "serial" in names
        assert "process" in names

    def test_unknown_backend_rejected(self, plain_codec):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("definitely-not-a-backend", plain_codec)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("serial", SerialBackend)

    def test_registered_backend_is_creatable(self, plain_codec):
        backend = create_backend("serial", plain_codec)
        assert isinstance(backend, SerialBackend)
