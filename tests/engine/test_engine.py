"""Tests for the :class:`ZSmilesEngine` facade.

Includes the acceptance checks of the engine redesign: the engine's batch and
file paths must be byte-identical to the seed :class:`ZSmilesCodec` per-line
path, and ``backend="auto"`` must route batches by size.
"""

from __future__ import annotations

import pytest

from repro import ZSmilesCodec
from repro.core.streaming import read_lines, write_lines
from repro.engine import EngineConfig, ZSmilesEngine


@pytest.fixture(scope="module")
def engine(mixed_corpus_small):
    return ZSmilesEngine.train(mixed_corpus_small, EngineConfig(preprocessing=True, lmax=8))


class TestConstruction:
    def test_train_matches_codec_train(self, mixed_corpus_small, trained_codec):
        engine = ZSmilesEngine.train(
            mixed_corpus_small, EngineConfig(preprocessing=True, lmax=8)
        )
        assert engine.table.patterns() == trained_codec.table.patterns()
        assert engine.table.symbols() == trained_codec.table.symbols()
        assert engine.training_report is not None

    def test_train_accepts_overrides(self, mixed_corpus_small):
        engine = ZSmilesEngine.train(mixed_corpus_small, lmax=5, preprocessing=False)
        assert engine.config.lmax == 5
        assert engine.table.max_pattern_length <= 5

    def test_from_codec_preserves_strategy_and_pipeline(self, plain_codec):
        engine = ZSmilesEngine.from_codec(plain_codec)
        assert engine.codec is plain_codec
        assert engine.config.strategy is plain_codec.compressor.strategy

    def test_from_codec_syncs_config_to_codec(self, plain_codec, trained_codec):
        # plain_codec was trained with preprocessing=False; the engine config
        # must reflect the codec's actual pipeline, not the EngineConfig default.
        assert ZSmilesEngine.from_codec(plain_codec).config.preprocessing is False
        engine = ZSmilesEngine.from_codec(trained_codec)
        assert engine.config.preprocessing is True
        assert engine.config.prepopulation is trained_codec.table.prepopulation

    def test_from_dictionary_round_trip(self, engine, tmp_path):
        path = tmp_path / "shared.dct"
        engine.save_dictionary(path)
        reloaded = ZSmilesEngine.from_dictionary(path)
        sample = "COc1cc(C=O)ccc1O"
        assert reloaded.compress(sample) == engine.compress(sample)


class TestByteIdenticalToSeedPath:
    """Acceptance criterion: engine output == seed ZSmilesCodec output."""

    def test_compress_batch_matches_per_line_codec(self, engine, mixed_corpus_small):
        expected = [engine.codec.compress(s) for s in mixed_corpus_small]
        assert engine.compress_batch(mixed_corpus_small).records == expected

    def test_decompress_batch_matches_per_line_codec(self, engine, mixed_corpus_small):
        compressed = engine.compress_batch(mixed_corpus_small).records
        expected = [engine.codec.decompress(c) for c in compressed]
        assert engine.decompress_batch(compressed).records == expected

    def test_evaluate_matches_seed_accounting(self, engine, mixed_corpus_small):
        stats = engine.evaluate(mixed_corpus_small)
        # Reproduce the seed ZSmilesCodec.evaluate accounting by hand.
        original = sum(len(s) + 1 for s in mixed_corpus_small)
        compressed = sum(
            len(engine.codec.compress(s)) + 1 for s in mixed_corpus_small
        )
        assert stats.lines == len(mixed_corpus_small)
        assert stats.original_bytes == original
        assert stats.compressed_bytes == compressed

    def test_compress_file_matches_per_line_output(self, engine, mixed_corpus_small, tmp_path):
        smi = tmp_path / "library.smi"
        write_lines(smi, mixed_corpus_small)
        stats = engine.compress_file(smi, tmp_path / "library.zsmi", batch_size=32)
        assert stats.lines == len(mixed_corpus_small)
        expected = [engine.codec.compress(s) for s in mixed_corpus_small]
        assert list(read_lines(stats.output_path)) == expected

    def test_decompress_file_round_trip(self, mixed_corpus_small, tmp_path):
        engine = ZSmilesEngine.train(mixed_corpus_small, preprocessing=False, lmax=6)
        smi = tmp_path / "plain.smi"
        write_lines(smi, mixed_corpus_small)
        engine.compress_file(smi, tmp_path / "plain.zsmi", batch_size=50)
        engine.decompress_file(tmp_path / "plain.zsmi", tmp_path / "restored.smi")
        assert list(read_lines(tmp_path / "restored.smi")) == mixed_corpus_small


class TestAutoBackendSelection:
    def test_small_batch_runs_kernel(self, mixed_corpus_small):
        engine = ZSmilesEngine.train(
            mixed_corpus_small, lmax=6, parallel_threshold=10_000
        )
        result = engine.compress_batch(mixed_corpus_small[:10])
        assert result.backend == "kernel"

    def test_reference_parser_routes_small_batches_to_serial(self, mixed_corpus_small):
        engine = ZSmilesEngine.train(
            mixed_corpus_small, lmax=6, parallel_threshold=10_000, parser="reference"
        )
        result = engine.compress_batch(mixed_corpus_small[:10])
        assert result.backend == "serial"

    def test_large_batch_routes_to_process_pool(self, mixed_corpus_small):
        engine = ZSmilesEngine.train(
            mixed_corpus_small,
            lmax=6,
            parallel_threshold=8,
            jobs=2,
            chunk_size=16,
        )
        with engine:
            batch = mixed_corpus_small[:32]
            result = engine.compress_batch(batch)
            assert result.backend == "process"
            assert result.records == [engine.codec.compress(s) for s in batch]

    def test_explicit_backend_argument_overrides_auto(self, mixed_corpus_small):
        engine = ZSmilesEngine.train(mixed_corpus_small, lmax=6, parallel_threshold=0)
        result = engine.compress_batch(mixed_corpus_small[:5], backend="serial")
        assert result.backend == "serial"

    def test_backend_instances_are_cached(self, engine):
        assert engine.backend("serial") is engine.backend("serial")

    def test_close_keeps_engine_usable(self, mixed_corpus_small):
        engine = ZSmilesEngine.train(mixed_corpus_small, lmax=6)
        engine.compress_batch(mixed_corpus_small[:4])
        engine.close()
        assert engine.compress_batch(mixed_corpus_small[:4]).records


class TestLegacyShimsDelegate:
    def test_codec_compress_many_equals_engine_batch(self, engine, mixed_corpus_small):
        codec = engine.codec
        assert codec.compress_many(mixed_corpus_small[:20]) == (
            engine.compress_batch(mixed_corpus_small[:20]).records
        )

    def test_codec_evaluate_equals_engine_evaluate(self, engine, mixed_corpus_small):
        a = engine.codec.evaluate(mixed_corpus_small[:30])
        b = engine.evaluate(mixed_corpus_small[:30])
        assert (a.lines, a.original_bytes, a.compressed_bytes, a.matches, a.escapes) == (
            b.lines, b.original_bytes, b.compressed_bytes, b.matches, b.escapes
        )
