"""The metrics registry primitives: the numbers every other test trusts.

Pins the semantics the instrumented tiers rely on: bucket-boundary
placement (a value equal to an edge lands in that edge's bucket), label
cardinality isolation, thread-safety under a hammer, snapshot internal
consistency (as a hypothesis property), snapshot merging, the Prometheus
text exposition shape, and the ``ZSMILES_TELEMETRY`` kill switch.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
    snapshot_to_json,
)
from repro.telemetry.metrics import TELEMETRY_ENV_VAR, telemetry_enabled


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry(enabled=True)
        requests = registry.counter("requests_total", "requests")
        requests.inc()
        requests.inc(2.5)
        assert requests.value == 3.5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry(enabled=True)
        depth = registry.gauge("queue_depth")
        depth.set(10)
        depth.dec(3)
        depth.inc(1)
        assert depth.value == 8.0

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry(enabled=True)
        first = registry.counter("hits_total", "hits")
        again = registry.counter("hits_total", "hits")
        assert first is again

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("y_total", labels=("route",))
        with pytest.raises(ValueError):
            registry.counter("y_total", labels=("route", "status"))


class TestHistogramBuckets:
    def test_value_equal_to_edge_lands_in_that_bucket(self):
        """The pinned boundary semantics: v == edge counts as <= edge."""
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0)
        assert hist.bucket_counts() == [0, 1, 0, 0]

    def test_overflow_lands_in_inf_slot(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.bucket_counts() == [0, 0, 1]

    def test_every_edge_is_its_own_boundary(self):
        edges = (0.001, 0.01, 0.1, 1.0)
        hist = Histogram(buckets=edges)
        for edge in edges:
            hist.observe(edge)
        assert hist.bucket_counts() == [1, 1, 1, 1, 0]

    def test_sum_and_count_track_observations(self):
        hist = Histogram(buckets=(1.0,))
        for value in (0.25, 0.5, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(3.75)

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestLabels:
    def test_label_children_are_isolated(self):
        registry = MetricsRegistry(enabled=True)
        requests = registry.counter("req_total", labels=("route", "status"))
        requests.labels("single", "200").inc(5)
        requests.labels("single", "404").inc(1)
        requests.labels("batch", "200").inc(2)
        assert requests.labels("single", "200").value == 5.0
        assert requests.labels("single", "404").value == 1.0
        assert requests.labels("batch", "200").value == 2.0

    def test_label_arity_enforced(self):
        registry = MetricsRegistry(enabled=True)
        family = registry.counter("z_total", labels=("route",))
        with pytest.raises(ValueError):
            family.labels("a", "b")
        with pytest.raises(ValueError):
            family.inc()  # labelled family has no default child

    def test_label_values_coerced_to_str(self):
        registry = MetricsRegistry(enabled=True)
        family = registry.counter("status_total", labels=("code",))
        family.labels(200).inc()
        assert family.labels("200").value == 1.0


class TestThreadSafety:
    def test_hammered_counter_equals_serial_total(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("hammer_total")
        hist = registry.histogram("hammer_seconds", buckets=(0.5,))
        workers, per_worker = 8, 2_000

        def hammer():
            for _ in range(per_worker):
                counter.inc()
                hist.observe(0.25)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == workers * per_worker
        assert hist.count == workers * per_worker
        assert hist.bucket_counts() == [workers * per_worker, 0]


@settings(max_examples=50, deadline=None)
@given(
    observations=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=60
    ),
    edges=st.lists(
        st.floats(min_value=0.001, max_value=9.0, allow_nan=False),
        min_size=1,
        max_size=8,
        unique=True,
    ),
)
def test_snapshot_is_internally_consistent(observations, edges):
    """Property: sum of a histogram's bucket counts == its observation count."""
    registry = MetricsRegistry(enabled=True)
    hist = registry.histogram("prop_seconds", buckets=sorted(edges))
    for value in observations:
        hist.observe(value)
    snapshot = registry.snapshot()
    (item,) = snapshot["metrics"]
    (series,) = item["series"]
    assert sum(series["counts"]) == series["count"] == len(observations)
    assert len(series["counts"]) == len(item["buckets"]) + 1
    assert series["sum"] == pytest.approx(sum(observations))


class TestSnapshotAndMerge:
    def _worker_snapshot(self, single, batch, latencies):
        registry = MetricsRegistry(enabled=True)
        requests = registry.counter("req_total", "requests", labels=("route",))
        requests.labels("single").inc(single)
        requests.labels("batch").inc(batch)
        hist = registry.histogram("lat_seconds", buckets=(0.01, 0.1))
        for value in latencies:
            hist.observe(value)
        return registry.snapshot()

    def test_merge_sums_counters_and_buckets(self):
        merged = merge_snapshots(
            [
                self._worker_snapshot(3, 1, [0.005, 0.5]),
                self._worker_snapshot(2, 4, [0.05]),
            ]
        )
        by_name = {item["name"]: item for item in merged["metrics"]}
        series = {tuple(s["values"]): s["value"] for s in by_name["req_total"]["series"]}
        assert series == {("single",): 5.0, ("batch",): 5.0}
        (lat,) = by_name["lat_seconds"]["series"]
        # 0.005 ≤ 0.01 from worker A, 0.05 ≤ 0.1 from worker B, 0.5 → +Inf.
        assert lat["counts"] == [1, 1, 1]
        assert lat["count"] == 3

    def test_merge_keeps_first_on_bucket_mismatch(self):
        registry_a = MetricsRegistry(enabled=True)
        registry_a.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        registry_b = MetricsRegistry(enabled=True)
        registry_b.histogram("h_seconds", buckets=(2.0,)).observe(0.5)
        merged = merge_snapshots([registry_a.snapshot(), registry_b.snapshot()])
        (item,) = merged["metrics"]
        assert item["buckets"] == [1.0]
        assert item["series"][0]["count"] == 1  # the straggler is dropped

    def test_snapshot_json_is_deterministic(self):
        snap = self._worker_snapshot(1, 2, [0.05])
        assert snapshot_to_json(snap) == snapshot_to_json(snap)
        assert snapshot_to_json(snap).endswith(b"\n")


class TestPrometheusRendering:
    def test_counter_and_histogram_exposition(self):
        registry = MetricsRegistry(enabled=True)
        requests = registry.counter("req_total", "Requests served.", labels=("route",))
        requests.labels("single").inc(7)
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.01, 0.1))
        hist.observe(0.005)
        hist.observe(0.05)
        hist.observe(5.0)
        text = render_prometheus(registry.snapshot())
        lines = text.splitlines()
        assert "# HELP req_total Requests served." in lines
        assert "# TYPE req_total counter" in lines
        assert 'req_total{route="single"} 7' in lines
        assert "# TYPE lat_seconds histogram" in lines
        # Cumulative le buckets: 1 at 0.01, 2 at 0.1, 3 at +Inf.
        assert 'lat_seconds_bucket{le="0.01"} 1' in lines
        assert 'lat_seconds_bucket{le="0.1"} 2' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 3' in lines
        assert "lat_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry(enabled=True)
        family = registry.counter("esc_total", labels=("path",))
        family.labels('a"b\\c').inc()
        text = render_prometheus(registry.snapshot())
        assert 'esc_total{path="a\\"b\\\\c"} 1' in text


class TestKillSwitch:
    def test_disabled_registry_instruments_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("dead_total")
        counter.inc(100)
        hist = registry.histogram("dead_seconds", buckets=(1.0,))
        hist.observe(0.5)
        assert counter.value == 0.0
        assert hist.count == 0

    def test_env_values_parse(self, monkeypatch):
        for value in ("off", "0", "false", "no", " OFF "):
            monkeypatch.setenv(TELEMETRY_ENV_VAR, value)
            assert not telemetry_enabled()
        for value in ("on", "1", "yes", ""):
            monkeypatch.setenv(TELEMETRY_ENV_VAR, value)
            assert telemetry_enabled()
        monkeypatch.delenv(TELEMETRY_ENV_VAR)
        assert telemetry_enabled()

    def test_default_registry_honours_env(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV_VAR, "off")
        registry = MetricsRegistry()
        assert registry.enabled is False
        registry.counter("k_total").inc()
        assert registry.counter("k_total").value == 0.0
