"""Trace context propagation and the span ring."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import (
    Span,
    SpanExporter,
    current_trace_id,
    new_trace_id,
    start_span,
    trace_context,
)


class TestTraceContext:
    def test_no_ambient_trace_by_default(self):
        assert current_trace_id() is None

    def test_context_mints_and_resets(self):
        with trace_context() as trace_id:
            assert current_trace_id() == trace_id
            assert len(trace_id) == 16
        assert current_trace_id() is None

    def test_nested_context_joins_enclosing_trace(self):
        with trace_context() as outer:
            with trace_context() as inner:
                assert inner == outer

    def test_explicit_id_wins_over_ambient(self):
        with trace_context("aaaa"):
            with trace_context("bbbb") as inner:
                assert inner == "bbbb"
            assert current_trace_id() == "aaaa"

    def test_ids_are_distinct(self):
        assert new_trace_id() != new_trace_id()

    def test_context_does_not_leak_across_threads(self):
        seen = {}

        def probe():
            seen["other"] = current_trace_id()

        with trace_context():
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["other"] is None


class TestSpans:
    def test_span_times_and_exports(self):
        ring = SpanExporter(capacity=8)
        with start_span("unit.op", exporter=ring, shard=3) as span:
            pass
        assert span.duration_ms is not None and span.duration_ms >= 0
        (exported,) = ring.recent()
        assert exported["name"] == "unit.op"
        assert exported["trace_id"] == span.trace_id
        assert exported["attrs"] == {"shard": 3}
        assert "error" not in exported

    def test_span_joins_ambient_trace(self):
        ring = SpanExporter()
        with trace_context("cafe") as trace_id:
            with start_span("inner", exporter=ring) as span:
                assert span.trace_id == trace_id == "cafe"

    def test_span_records_error_and_reraises(self):
        ring = SpanExporter()
        with pytest.raises(RuntimeError):
            with start_span("boom", exporter=ring):
                raise RuntimeError("kaput")
        (exported,) = ring.recent()
        assert exported["error"] == "RuntimeError: kaput"
        assert exported["duration_ms"] is not None


class TestSpanExporterRing:
    def test_ring_drops_oldest(self):
        ring = SpanExporter(capacity=3)
        for i in range(5):
            ring.export(Span(f"s{i}", "t", {}))
        assert len(ring) == 3
        assert [s["name"] for s in ring.recent()] == ["s2", "s3", "s4"]

    def test_recent_limit_returns_newest(self):
        ring = SpanExporter(capacity=10)
        for i in range(4):
            ring.export(Span(f"s{i}", "t", {}))
        assert [s["name"] for s in ring.recent(limit=2)] == ["s2", "s3"]

    def test_clear_and_capacity_floor(self):
        ring = SpanExporter(capacity=2)
        ring.export(Span("s", "t", {}))
        ring.clear()
        assert len(ring) == 0
        with pytest.raises(ValueError):
            SpanExporter(capacity=0)
