"""Cross-tier instrument wiring: the retry policy reports what it grants."""

from __future__ import annotations

import pytest

from repro.server import RetryPolicy
from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import set_registry


@pytest.fixture()
def fresh_registry():
    registry = MetricsRegistry(enabled=True)
    set_registry(registry)
    yield registry
    set_registry(None)


def _series(registry, name):
    for item in registry.snapshot()["metrics"]:
        if item["name"] == name:
            return {tuple(s["values"]): s["value"] for s in item["series"]}
    return {}


class TestRetryMetrics:
    def test_granted_attempts_and_backoff_are_counted(self, fresh_registry):
        policy = RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0)
        state = policy.start()
        delays = []
        while True:
            delay = state.next_delay()
            if delay is None:
                break
            delays.append(delay)
        assert len(delays) == 3  # 4 attempts = 1 initial + 3 retries
        attempts = _series(fresh_registry, "zsmiles_retry_attempts_total")
        assert attempts[()] == 3
        backoff = _series(fresh_registry, "zsmiles_retry_backoff_seconds_total")
        assert backoff[()] == pytest.approx(sum(delays))
        exhausted = _series(fresh_registry, "zsmiles_retry_exhausted_total")
        assert exhausted.get(("attempts",)) == 1

    def test_deadline_exhaustion_reason_is_labelled(self, fresh_registry):
        policy = RetryPolicy(
            max_attempts=10, base_delay=5.0, jitter=0.0, deadline=0.001
        )
        state = policy.start()
        assert state.next_delay() is None  # 5 s sleep cannot fit the budget
        exhausted = _series(fresh_registry, "zsmiles_retry_exhausted_total")
        assert exhausted.get(("deadline",)) == 1
        assert ("attempts",) not in exhausted

    def test_single_attempt_policy_exhausts_immediately(self, fresh_registry):
        state = RetryPolicy(max_attempts=1).start()
        assert state.next_delay() is None
        attempts = _series(fresh_registry, "zsmiles_retry_attempts_total")
        assert attempts.get((), 0) == 0
        exhausted = _series(fresh_registry, "zsmiles_retry_exhausted_total")
        assert exhausted.get(("attempts",)) == 1
