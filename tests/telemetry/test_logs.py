"""Structured access logging: line shape, targets, and failure safety."""

from __future__ import annotations

import json

from repro.telemetry import AccessLogger, open_access_log


class TestAccessLogger:
    def test_lines_are_json_with_defaults(self, tmp_path):
        log_path = tmp_path / "access.log"
        with AccessLogger(log_path, worker_id=2) as logger:
            logger.log(route="single", status=200, bytes=17, request_id="abcd")
            logger.log(route="batch", status=404)
        lines = log_path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["route"] == "single"
        assert first["status"] == 200
        assert first["request_id"] == "abcd"
        assert first["worker"] == 2
        assert isinstance(first["ts"], float)
        # Keys are sorted, lines are compact: deterministic, parseable.
        assert lines[0] == json.dumps(first, sort_keys=True, separators=(",", ":"))

    def test_appends_across_logger_lifetimes(self, tmp_path):
        log_path = tmp_path / "access.log"
        with AccessLogger(log_path) as logger:
            logger.log(route="a")
        with AccessLogger(log_path) as logger:
            logger.log(route="b")
        assert len(log_path.read_text().splitlines()) == 2

    def test_dash_targets_stdout_and_is_not_closed(self, capsys):
        logger = AccessLogger("-")
        logger.log(route="single", status=200)
        logger.close()
        out = capsys.readouterr().out
        assert json.loads(out)["route"] == "single"
        # Closing the logger must not close the borrowed stdout stream.
        print("still alive")
        assert "still alive" in capsys.readouterr().out

    def test_broken_target_never_raises(self, tmp_path):
        log_path = tmp_path / "access.log"
        logger = AccessLogger(log_path)
        logger._handle.close()  # simulate the target dying mid-flight
        logger._owns_handle = False
        logger.log(route="single")  # first write trips the breaker
        logger.log(route="single")  # later writes are silent no-ops
        assert logger._broken is True

    def test_worker_id_omitted_when_unset(self, tmp_path):
        log_path = tmp_path / "access.log"
        with AccessLogger(log_path) as logger:
            logger.log(route="single")
        assert "worker" not in json.loads(log_path.read_text())

    def test_open_access_log_none_passthrough(self, tmp_path):
        assert open_access_log(None) is None
        logger = open_access_log(tmp_path / "a.log", worker_id=7)
        assert logger is not None and logger.worker_id == 7
        logger.close()
