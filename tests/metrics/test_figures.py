"""Tests for ASCII figure rendering."""

from __future__ import annotations

import pytest

from repro.metrics.figures import BarChart, LineSeries, figure4_chart, figure5_chart


class TestBarChart:
    def test_render_contains_labels_and_values(self):
        chart = BarChart(title="Figure 4")
        chart.add("ZSMILES", 0.29)
        chart.add("Bzip2", 0.18)
        text = chart.render()
        assert "Figure 4" in text
        assert "ZSMILES" in text and "0.290" in text
        assert "Bzip2" in text and "0.180" in text

    def test_bar_lengths_proportional(self):
        chart = BarChart(title="t", width=40)
        chart.add("big", 1.0)
        chart.add("half", 0.5)
        lines = chart.render().splitlines()
        big_bar = lines[1].count("#")
        half_bar = lines[2].count("#")
        assert big_bar == 40
        assert abs(half_bar - 20) <= 1

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BarChart(title="t").add("x", -1.0)

    def test_empty_chart(self):
        assert "(no data)" in BarChart(title="t").render()

    def test_figure4_helper_respects_order(self):
        chart = figure4_chart({"A": 0.3, "B": 0.2}, order=["B", "A", "missing"])
        labels = [label for label, _ in chart.values]
        assert labels == ["B", "A"]


class TestLineSeries:
    def test_render_contains_all_points(self):
        chart = LineSeries(title="Figure 5a", x_label="Lmax", x_values=[5, 8, 15])
        chart.add_series("C++", [1.0, 1.0, 1.0])
        chart.add_series("CUDA", [0.15, 0.15, 0.15])
        text = chart.render()
        assert "C++" in text and "CUDA" in text
        assert text.count("Lmax=") == 6

    def test_mismatched_series_length_rejected(self):
        chart = LineSeries(title="t", x_label="x", x_values=[1, 2])
        with pytest.raises(ValueError):
            chart.add_series("bad", [1.0])

    def test_empty_series(self):
        chart = LineSeries(title="t", x_label="x", x_values=[1])
        assert "(no data)" in chart.render()

    def test_figure5_helper(self):
        chart = figure5_chart("compression", [5, 8], {"C++": [1.0, 1.0], "CUDA": [0.2, 0.2]})
        assert "compression" in chart.title
        assert set(chart.series) == {"C++", "CUDA"}
