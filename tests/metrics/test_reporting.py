"""Tests for result-table formatting and comparison helpers."""

from __future__ import annotations

import pytest

from repro.metrics.reporting import ResultTable, comparison_factor, percent_change
from repro.metrics.timing import Timer, throughput_mb_per_s, time_callable


class TestResultTable:
    def test_add_row_validates_arity(self):
        table = ResultTable(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_text_rendering_contains_all_cells(self):
        table = ResultTable(title="Demo", columns=["Tool", "Ratio"])
        table.add_row("ZSMILES", 0.29)
        table.add_row("FSST", 0.33)
        text = table.to_text()
        assert "Demo" in text
        assert "ZSMILES" in text and "0.290" in text
        assert "FSST" in text and "0.330" in text

    def test_markdown_rendering(self):
        table = ResultTable(title="Demo", columns=["Tool", "Ratio"])
        table.add_row("ZSMILES", 0.29)
        md = table.to_markdown()
        assert md.startswith("**Demo**")
        assert "| Tool | Ratio |" in md
        assert "| ZSMILES | 0.290 |" in md

    def test_notes_rendered(self):
        table = ResultTable(title="T", columns=["x"])
        table.add_note("measured on synthetic data")
        assert "measured on synthetic data" in table.to_text()
        assert "measured on synthetic data" in table.to_markdown()

    def test_column_accessor(self):
        table = ResultTable(title="T", columns=["name", "value"])
        table.add_row("a", 1)
        table.add_row("b", 2)
        assert table.column("value") == [1, 2]

    def test_as_dicts(self):
        table = ResultTable(title="T", columns=["name", "value"])
        table.add_row("a", 1)
        assert table.as_dicts() == [{"name": "a", "value": 1}]


class TestComparisons:
    def test_comparison_factor_matches_paper_usage(self):
        # FSST at 0.33 vs ZSMILES at 0.29 is the paper's "x1.13" headline.
        assert comparison_factor(0.33, 0.29) == pytest.approx(1.137, abs=1e-3)

    def test_comparison_factor_zero_candidate(self):
        assert comparison_factor(1.0, 0.0) == float("inf")

    def test_percent_change(self):
        assert percent_change(0.4, 0.3) == pytest.approx(-25.0)
        assert percent_change(0.0, 0.3) == 0.0


class TestTimer:
    def test_measure_accumulates_samples(self):
        timer = Timer()
        with timer.measure("step"):
            sum(range(100))
        with timer.measure("step"):
            sum(range(100))
        assert timer.count("step") == 2
        assert timer.total("step") >= timer.mean("step") >= 0

    def test_add_external_sample(self):
        timer = Timer()
        timer.add("io", 1.5)
        assert timer.total("io") == 1.5
        assert timer.names() == ["io"]

    def test_missing_name_defaults(self):
        timer = Timer()
        assert timer.total("none") == 0.0
        assert timer.mean("none") == 0.0

    def test_time_callable(self):
        assert time_callable(lambda: sum(range(1000)), repeats=2) >= 0.0

    def test_time_callable_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_throughput(self):
        assert throughput_mb_per_s(2_000_000, 2.0) == pytest.approx(1.0)
        assert throughput_mb_per_s(100, 0.0) == 0.0
