"""Integration tests: the full virtual-screening campaign over a compressed library."""

from __future__ import annotations

import pytest

from repro.core.random_access import LineIndex
from repro.errors import ScreeningError
from repro.screening.docking import DEFAULT_POCKETS, dock_score
from repro.screening.pipeline import ScreeningCampaign
from repro.screening.storage import StorageFootprint, format_bytes, measure_footprint


@pytest.fixture(scope="module")
def campaign_setup(tmp_path_factory):
    from repro.core.codec import ZSmilesCodec
    from repro.datasets import mixed

    corpus = mixed.generate(200, seed=21)
    codec = ZSmilesCodec.train(corpus, preprocessing=True, lmax=8)
    campaign = ScreeningCampaign(codec, pockets=DEFAULT_POCKETS[:2], top_k=10)
    directory = tmp_path_factory.mktemp("campaign")
    zsmi_path, index, footprint = campaign.prepare_library(corpus, directory)
    return campaign, corpus, zsmi_path, index, footprint, directory


class TestLibraryPreparation:
    def test_compressed_library_created_with_index(self, campaign_setup):
        _, corpus, zsmi_path, index, _, _ = campaign_setup
        assert zsmi_path.exists()
        assert index.line_count == len(corpus)
        assert LineIndex.default_path(zsmi_path).exists()

    def test_footprint_reports_savings(self, campaign_setup):
        footprint = campaign_setup[4]
        assert isinstance(footprint, StorageFootprint)
        assert footprint.zsmiles_bytes < footprint.raw_bytes
        assert footprint.zsmiles_bzip2_bytes < footprint.zsmiles_bytes
        assert 0 < footprint.zsmiles_ratio < 1

    def test_footprint_measures_packed_store(self, campaign_setup):
        footprint = campaign_setup[4]
        # The .zss column includes the real container framing: slightly larger
        # than the bare .zsmi payload but still far below the raw library.
        assert footprint.zss_bytes > footprint.zsmiles_bytes
        assert footprint.zss_bytes < footprint.raw_bytes
        assert 0 < footprint.zss_ratio < 1


class TestCampaignRun:
    def test_full_run_scores_every_ligand(self, campaign_setup):
        campaign, corpus, zsmi_path, index, footprint, _ = campaign_setup
        result = campaign.run(zsmi_path, index=index, footprint=footprint)
        for pocket in campaign.pockets:
            assert len(result.pocket_results[pocket.name]) == len(corpus)
            assert len(result.hits[pocket.name]) == 10

    def test_scores_match_direct_scoring(self, campaign_setup):
        """Scoring through the compressed library equals scoring the raw SMILES."""
        campaign, corpus, zsmi_path, index, _, _ = campaign_setup
        result = campaign.run(zsmi_path, index=index)
        pocket = campaign.pockets[0]
        scored = dict(result.pocket_results[pocket.name])
        for smiles in corpus[:25]:
            preprocessed = campaign.codec.preprocess(smiles)
            assert scored[preprocessed] == pytest.approx(dock_score(preprocessed, pocket))

    def test_sampled_run_uses_random_access(self, campaign_setup):
        campaign, corpus, zsmi_path, index, _, _ = campaign_setup
        result = campaign.run(zsmi_path, index=index, sample=25, seed=3)
        assert len(result.sampled_indices) == 25
        assert len(set(result.sampled_indices)) == 25
        pocket = campaign.pockets[0]
        assert len(result.pocket_results[pocket.name]) == 25

    def test_sample_must_be_positive(self, campaign_setup):
        campaign, _, zsmi_path, index, _, _ = campaign_setup
        with pytest.raises(ScreeningError):
            campaign.run(zsmi_path, index=index, sample=0)

    def test_fetch_hit_roundtrip(self, campaign_setup):
        campaign, corpus, zsmi_path, _, _, _ = campaign_setup
        assert campaign.fetch_hit(zsmi_path, 17) == campaign.codec.preprocess(corpus[17])

    def test_write_results_creates_score_files(self, campaign_setup):
        campaign, _, zsmi_path, index, _, directory = campaign_setup
        result = campaign.run(zsmi_path, index=index, sample=20, seed=1)
        paths = campaign.write_results(result, directory / "out")
        assert set(paths) == {p.name for p in campaign.pockets}
        for path in paths.values():
            assert path.exists()
            first_line = path.read_text().splitlines()[0]
            assert len(first_line.split()) == 3  # smiles, pocket, score

    def test_top_k_validation(self, campaign_setup):
        campaign, *_ = campaign_setup
        with pytest.raises(ScreeningError):
            ScreeningCampaign(campaign.codec, top_k=0)


class TestPackedLibraryCampaign:
    """The same campaign served out of a sharded .zss library."""

    @pytest.fixture(scope="class")
    def packed_setup(self, campaign_setup, tmp_path_factory):
        campaign, corpus, *_ = campaign_setup
        directory = tmp_path_factory.mktemp("packed_campaign")
        library_dir, info, footprint = campaign.prepare_packed_library(
            corpus, directory, shards=3, records_per_block=16
        )
        return campaign, corpus, library_dir, info, footprint

    def test_prepare_packed_library_writes_manifest(self, packed_setup):
        _, corpus, library_dir, info, _ = packed_setup
        assert (library_dir / "library.json").exists()
        assert info.shard_count == 3
        assert info.records == len(corpus)

    def test_run_over_library_matches_flat_run(self, campaign_setup, packed_setup):
        campaign, _, zsmi_path, index, _, _ = campaign_setup
        _, _, library_dir, _, _ = packed_setup
        flat = campaign.run(zsmi_path, index=index, sample=40, seed=5)
        packed = campaign.run(library_dir, sample=40, seed=5)
        assert packed.sampled_indices == flat.sampled_indices
        assert packed.pocket_results == flat.pocket_results
        assert packed.hits == flat.hits

    def test_run_accepts_single_zss(self, campaign_setup, packed_setup, tmp_path):
        campaign, corpus, *_ = campaign_setup
        _, _, library_dir, _, _ = packed_setup
        zss = library_dir / "shard-0000.zss"
        result = campaign.run(zss, sample=10, seed=2)
        assert len(result.sampled_indices) == 10

    def test_stale_index_ignored_for_packed_layouts(self, campaign_setup, packed_setup):
        """run() documents index= as ignored for packed libraries."""
        campaign, _, _, index, _, _ = campaign_setup
        _, _, library_dir, _, _ = packed_setup
        with_index = campaign.run(library_dir, index=index, sample=15, seed=9)
        without = campaign.run(library_dir, sample=15, seed=9)
        assert with_index.pocket_results == without.pocket_results

    def test_fetch_hit_from_library(self, campaign_setup, packed_setup):
        campaign, _, zsmi_path, _, _, _ = campaign_setup
        _, _, library_dir, _, _ = packed_setup
        assert campaign.fetch_hit(library_dir, 123) == campaign.fetch_hit(zsmi_path, 123)


class TestStorageHelpers:
    def test_measure_footprint_with_precomputed_records(self, campaign_setup):
        campaign, corpus, *_ = campaign_setup
        compressed = [campaign.codec.compress(s) for s in corpus[:50]]
        footprint = measure_footprint(corpus[:50], campaign.codec, compressed=compressed)
        assert footprint.records == 50
        assert footprint.zsmiles_ratio < 1

    def test_scaled_projection(self):
        footprint = StorageFootprint(
            raw_bytes=1000, zsmiles_bytes=400, zsmiles_bzip2_bytes=200, records=10,
            zss_bytes=450,
        )
        projected = footprint.scaled(1000)
        assert projected["raw_bytes"] == 100_000
        assert projected["zsmiles_bytes"] == 40_000
        assert projected["zss_bytes"] == 45_000

    def test_scaled_empty(self):
        footprint = StorageFootprint(0, 0, 0, 0)
        assert footprint.scaled(100)["raw_bytes"] == 0.0
        assert footprint.scaled(100)["zss_bytes"] == 0.0
        assert footprint.zsmiles_ratio == 1.0
        assert footprint.zss_ratio == 1.0

    def test_format_bytes(self):
        assert format_bytes(512) == "512.00 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert "TiB" in format_bytes(72 * 1024**4)
