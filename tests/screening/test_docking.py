"""Tests for the toy docking-score substrate."""

from __future__ import annotations

import pytest

from repro.errors import ScreeningError
from repro.screening.docking import (
    DEFAULT_POCKETS,
    PocketModel,
    dock_library,
    dock_score,
    top_hits,
)


class TestDockScore:
    def test_deterministic(self):
        pocket = DEFAULT_POCKETS[0]
        assert dock_score("CCO", pocket) == dock_score("CCO", pocket)

    def test_scores_are_negative(self, mediate_corpus):
        pocket = DEFAULT_POCKETS[0]
        assert all(dock_score(s, pocket) < 0 for s in mediate_corpus[:30])

    def test_different_pockets_rank_differently(self, mediate_corpus):
        a, b = DEFAULT_POCKETS[0], DEFAULT_POCKETS[1]
        sample = mediate_corpus[:40]
        order_a = sorted(sample, key=lambda s: dock_score(s, a))
        order_b = sorted(sample, key=lambda s: dock_score(s, b))
        assert order_a != order_b

    def test_different_ligands_get_different_scores(self):
        pocket = DEFAULT_POCKETS[0]
        assert dock_score("CCO", pocket) != dock_score("c1ccccc1", pocket)

    def test_unparsable_smiles_rejected(self):
        with pytest.raises(ScreeningError):
            dock_score("not a smiles!", DEFAULT_POCKETS[0])

    def test_custom_pocket(self):
        pocket = PocketModel(name="custom", preferred_size=10)
        assert dock_score("CCO", pocket) < 0


class TestLibraryScoring:
    def test_dock_library_preserves_order(self, gdb_corpus):
        pocket = DEFAULT_POCKETS[0]
        scored = dock_library(gdb_corpus[:20], pocket)
        assert [s for s, _ in scored] == gdb_corpus[:20]

    def test_top_hits_sorted_best_first(self, gdb_corpus):
        pocket = DEFAULT_POCKETS[0]
        scored = dock_library(gdb_corpus[:50], pocket)
        hits = top_hits(scored, 5)
        assert len(hits) == 5
        scores = [score for _, score in hits]
        assert scores == sorted(scores)
        assert min(score for _, score in scored) == scores[0]

    def test_top_hits_count_clamped(self):
        assert top_hits([("C", -1.0)], 10) == [("C", -1.0)]

    def test_top_hits_negative_count_rejected(self):
        with pytest.raises(ScreeningError):
            top_hits([], -1)


class TestTopHitsTotalOrder:
    """The selection order is total: score, then SMILES text.

    Campaign survivor selection packs ``top_hits`` output directly, so two
    runs that score the same candidate set in different input orders must
    select — and serialize — the identical list.
    """

    def test_equal_scores_tie_break_on_smiles(self):
        scored = [("CCO", -2.0), ("CCN", -2.0), ("CCC", -2.0), ("C", -5.0)]
        assert top_hits(scored, 4) == [
            ("C", -5.0),
            ("CCC", -2.0),
            ("CCN", -2.0),
            ("CCO", -2.0),
        ]

    def test_order_invariant_to_input_permutation(self):
        scored = [("CCO", -2.0), ("CCN", -2.0), ("CCC", -3.0), ("CO", -2.0)]
        forward = top_hits(scored, 3)
        assert top_hits(list(reversed(scored)), 3) == forward
        rotated = scored[2:] + scored[:2]
        assert top_hits(rotated, 3) == forward

    def test_tie_break_applies_inside_the_cut(self):
        # Without the SMILES tie-break, which of the -2.0 entries survives a
        # count=2 cut would depend on input order.
        scored = [("CCO", -2.0), ("CCN", -2.0), ("C", -5.0)]
        assert top_hits(scored, 2) == [("C", -5.0), ("CCN", -2.0)]
        assert top_hits(list(reversed(scored)), 2) == [("C", -5.0), ("CCN", -2.0)]

    def test_identical_pairs_keep_input_order(self):
        # Fully identical (smiles, score) duplicates: stable sort keeps
        # their relative input order.
        first = ("CCO", -2.0)
        second = ("CCO", -2.0)
        hits = top_hits([first, second], 2)
        assert hits[0] is first and hits[1] is second
