"""Tests for the SMILES parser."""

from __future__ import annotations

import pytest

from repro.errors import ParseError, TokenizationError
from repro.smiles.graph import BondOrder
from repro.smiles.parser import is_parsable, parse, parse_bracket_atom


class TestLinearMolecules:
    def test_single_atom(self):
        graph = parse("C")
        assert graph.atom_count() == 1
        assert graph.bond_count() == 0

    def test_chain_counts(self):
        graph = parse("CCO")
        assert graph.atom_count() == 3
        assert graph.bond_count() == 2
        assert [a.element for a in graph.atoms] == ["C", "C", "O"]

    def test_default_bond_is_single(self):
        graph = parse("CC")
        assert graph.bonds[0].order is BondOrder.SINGLE

    def test_explicit_double_bond(self):
        graph = parse("C=C")
        assert graph.bonds[0].order is BondOrder.DOUBLE

    def test_triple_bond(self):
        graph = parse("N#C")
        assert graph.bonds[0].order is BondOrder.TRIPLE

    def test_two_letter_atoms(self):
        graph = parse("ClCBr")
        assert [a.element for a in graph.atoms] == ["Cl", "C", "Br"]


class TestBranches:
    def test_single_branch(self):
        graph = parse("CC(C)C")
        assert graph.atom_count() == 4
        # atom 1 is the branch point with three carbon neighbours
        assert graph.degree(1) == 3

    def test_nested_branches(self):
        graph = parse("CC(C(C)C)C")
        assert graph.atom_count() == 6
        assert graph.bond_count() == 5

    def test_branch_then_continuation(self):
        graph = parse("C(O)N")
        assert sorted(graph.atoms[i].element for i in graph.neighbors(0)) == ["N", "O"]

    def test_unclosed_branch_raises(self):
        with pytest.raises(ParseError):
            parse("CC(C")

    def test_unmatched_close_raises(self):
        with pytest.raises(ParseError):
            parse("CC)C")

    def test_branch_before_atom_raises(self):
        with pytest.raises(ParseError):
            parse("(CC)")


class TestRings:
    def test_simple_ring(self):
        graph = parse("C1CCCCC1")
        assert graph.atom_count() == 6
        assert graph.bond_count() == 6
        assert graph.ring_bond_count() == 1

    def test_aromatic_ring_bond_orders(self):
        graph = parse("c1ccccc1")
        assert all(b.order is BondOrder.AROMATIC for b in graph.bonds)

    def test_ring_closure_bond_order_on_opening(self):
        graph = parse("C=1CCCCC=1")
        ring_bond = graph.get_bond(0, 5)
        assert ring_bond is not None
        assert ring_bond.order is BondOrder.DOUBLE

    def test_two_rings_fused(self):
        graph = parse("c1ccc2ccccc2c1")  # naphthalene
        assert graph.atom_count() == 10
        assert graph.bond_count() == 11
        assert graph.ring_bond_count() == 2

    def test_ring_id_reuse_after_closing(self):
        # Both rings use id 1; legal because the first closes before the second opens.
        graph = parse("C1CC1C1CC1")
        assert graph.atom_count() == 6
        assert graph.ring_bond_count() == 2

    def test_percent_ring_ids(self):
        graph = parse("C%12CCCCC%12")
        assert graph.ring_bond_count() == 1

    def test_unclosed_ring_raises(self):
        with pytest.raises(ParseError):
            parse("C1CCC")

    def test_ring_digit_before_atom_raises(self):
        with pytest.raises(ParseError):
            parse("1CC1")

    def test_ring_closure_on_same_atom_raises(self):
        with pytest.raises(ParseError):
            parse("C11")

    def test_conflicting_ring_bond_orders_raise(self):
        with pytest.raises(ParseError):
            parse("C=1CCCCC#1")

    def test_duplicate_bond_via_ring_raises(self):
        # Ring closure would duplicate the explicit bond between atoms 0 and 1.
        with pytest.raises(ParseError):
            parse("C1C1")


class TestDisconnectedStructures:
    def test_two_components(self):
        graph = parse("CCO.CC")
        assert graph.atom_count() == 5
        assert len(graph.connected_components()) == 2

    def test_dot_then_bond_symbol_raises(self):
        with pytest.raises(ParseError):
            parse("C=.C")

    def test_salt_pair(self):
        graph = parse("[Na+].[Cl-]")
        assert graph.atom_count() == 2
        assert graph.atoms[0].charge == 1
        assert graph.atoms[1].charge == -1


class TestBracketAtoms:
    def test_charge_and_h(self):
        atom = parse_bracket_atom("[NH4+]")
        assert atom.element == "N"
        assert atom.explicit_h == 4
        assert atom.charge == 1

    def test_isotope(self):
        atom = parse_bracket_atom("[13CH4]")
        assert atom.isotope == 13
        assert atom.explicit_h == 4

    def test_chirality(self):
        atom = parse_bracket_atom("[C@@H]")
        assert atom.chirality == "@@"
        assert atom.explicit_h == 1

    def test_numeric_charge(self):
        assert parse_bracket_atom("[Fe+2]").charge == 2
        assert parse_bracket_atom("[O-2]").charge == -2

    def test_repeated_sign_charge(self):
        assert parse_bracket_atom("[O--]").charge == -2

    def test_aromatic_bracket_atom(self):
        atom = parse_bracket_atom("[nH]")
        assert atom.element == "N"
        assert atom.aromatic is True

    def test_atom_class(self):
        assert parse_bracket_atom("[CH3:7]").atom_class == 7

    def test_malformed_raises(self):
        with pytest.raises(ParseError):
            parse_bracket_atom("[C@H")


class TestErrors:
    def test_dangling_bond_at_end(self):
        with pytest.raises(ParseError):
            parse("CC=")

    def test_two_consecutive_bonds(self):
        with pytest.raises(ParseError):
            parse("C==C")

    def test_tokenization_error_propagates(self):
        with pytest.raises(TokenizationError):
            parse("C!C")

    def test_is_parsable(self):
        assert is_parsable("c1ccccc1")
        assert not is_parsable("C1CC")


class TestCuratedCorpus:
    def test_all_curated_smiles_parse(self, curated_smiles):
        for smiles in curated_smiles:
            graph = parse(smiles)
            assert graph.atom_count() > 0

    def test_vanillin_structure(self):
        graph = parse("COc1cc(C=O)ccc1O")
        assert graph.atom_count() == 11
        elements = sorted(a.element for a in graph.atoms)
        assert elements.count("C") == 8
        assert elements.count("O") == 3
        assert graph.ring_bond_count() == 1

    def test_generated_corpora_parse(self, gdb_corpus, mediate_corpus, exscalate_corpus):
        for corpus in (gdb_corpus, mediate_corpus, exscalate_corpus):
            for smiles in corpus[:50]:
                assert is_parsable(smiles), smiles
