"""Tests for the graph → SMILES writer."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.smiles.graph import Atom, BondOrder, MolecularGraph
from repro.smiles.parser import parse
from repro.smiles.validate import is_valid
from repro.smiles.writer import SmilesWriter, format_atom, write


def graph_signature(graph: MolecularGraph) -> tuple:
    """Isomorphism-insensitive summary used to compare round-tripped graphs."""
    elements = Counter(a.element for a in graph.atoms)
    orders = Counter(b.order for b in graph.bonds)
    degrees = Counter(graph.degree(i) for i in range(graph.atom_count()))
    return (
        graph.atom_count(),
        graph.bond_count(),
        tuple(sorted(elements.items())),
        tuple(sorted((o.value, c) for o, c in orders.items())),
        tuple(sorted(degrees.items())),
        len(graph.connected_components()),
        graph.ring_bond_count(),
    )


class TestFormatAtom:
    def test_plain_atom(self):
        assert format_atom(Atom(element="C")) == "C"

    def test_aromatic_atom(self):
        assert format_atom(Atom(element="N", aromatic=True)) == "n"

    def test_two_letter_atom(self):
        assert format_atom(Atom(element="Cl")) == "Cl"

    def test_charge_forces_bracket(self):
        assert format_atom(Atom(element="O", charge=-1)) == "[O-]"

    def test_numeric_charge(self):
        assert format_atom(Atom(element="Fe", charge=2)) == "[Fe++]"

    def test_isotope_and_h(self):
        assert format_atom(Atom(element="C", isotope=13, explicit_h=4)) == "[13CH4]"

    def test_chirality(self):
        assert format_atom(Atom(element="C", chirality="@", explicit_h=1)) == "[C@H]"

    def test_atom_class(self):
        assert format_atom(Atom(element="C", atom_class=5)) == "[C:5]"

    def test_non_organic_element_needs_bracket(self):
        assert format_atom(Atom(element="Na")) == "[Na]"


class TestWriteSimpleGraphs:
    def test_single_atom(self):
        graph = MolecularGraph()
        graph.add_atom(Atom(element="C"))
        assert write(graph) == "C"

    def test_chain(self):
        graph = MolecularGraph()
        a = graph.add_atom(Atom(element="C"))
        b = graph.add_atom(Atom(element="C"))
        c = graph.add_atom(Atom(element="O"))
        graph.add_bond(a, b)
        graph.add_bond(b, c)
        smiles = write(graph)
        assert parse(smiles).atom_count() == 3

    def test_ring_produces_ring_digits(self):
        graph = MolecularGraph()
        atoms = [graph.add_atom(Atom(element="C")) for _ in range(6)]
        for i in range(6):
            graph.add_bond(atoms[i], atoms[(i + 1) % 6])
        smiles = write(graph)
        assert any(ch.isdigit() for ch in smiles)
        assert parse(smiles).ring_bond_count() == 1

    def test_disconnected_components_joined_by_dot(self):
        graph = MolecularGraph()
        a = graph.add_atom(Atom(element="C"))
        b = graph.add_atom(Atom(element="O"))
        assert a != b
        smiles = write(graph)
        assert "." in smiles

    def test_double_bond_symbol_emitted(self):
        graph = MolecularGraph()
        a = graph.add_atom(Atom(element="C"))
        b = graph.add_atom(Atom(element="O"))
        graph.add_bond(a, b, BondOrder.DOUBLE)
        assert "=" in write(graph)

    def test_aromatic_ring_written_lowercase(self):
        graph = parse("c1ccccc1")
        smiles = write(graph)
        assert smiles.count("c") == 6
        assert is_valid(smiles)


class TestRingPolicies:
    def test_sequential_policy_uses_fresh_ids(self):
        graph = parse("C1CC1C1CC1")  # two separate rings
        smiles = write(graph, ring_policy="sequential")
        ids = {ch for ch in smiles if ch.isdigit()}
        assert ids == {"1", "2"}

    def test_reuse_policy_reuses_ids(self):
        graph = parse("C1CC1C1CC1")
        smiles = write(graph, ring_policy="reuse")
        ids = {ch for ch in smiles if ch.isdigit()}
        assert ids == {"1"}

    def test_many_rings_roundtrip(self):
        # Steroid-like fused ring system.
        smiles_in = "C1CC2CCC3CCCC4CCC(C1)C2C34"
        graph = parse(smiles_in)
        for policy in ("sequential", "reuse"):
            out = write(graph, ring_policy=policy)
            assert graph_signature(parse(out)) == graph_signature(graph)


class TestRoundTrip:
    def test_curated_roundtrip_preserves_structure(self, curated_smiles):
        for smiles in curated_smiles:
            original = parse(smiles)
            rewritten = write(original)
            assert is_valid(rewritten), f"{smiles} -> {rewritten}"
            assert graph_signature(parse(rewritten)) == graph_signature(original), smiles

    def test_vanillin_exact_text(self):
        # The writer's deterministic DFS happens to reproduce the canonical text.
        assert write(parse("COc1cc(C=O)ccc1O")) == "COc1cc(C=O)ccc1O"

    def test_generated_corpus_roundtrip(self, mediate_corpus):
        for smiles in mediate_corpus[:60]:
            original = parse(smiles)
            rewritten = write(original)
            assert graph_signature(parse(rewritten)) == graph_signature(original), smiles


class TestWriterErrors:
    def test_ring_id_overflow_raises(self):
        writer = SmilesWriter(MolecularGraph())
        from repro.smiles.writer import _format_ring_id

        with pytest.raises(ValidationError):
            _format_ring_id(123)

    def test_negative_ring_id_raises(self):
        from repro.smiles.writer import _format_ring_id

        with pytest.raises(ValidationError):
            _format_ring_id(-1)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_generated_graph_write_parse_fixpoint(seed):
    """write(parse(write(g))) is structurally stable for generated molecules."""
    from repro.datasets.exscalate import generator

    gen = generator(seed=seed)
    graph = gen.generate_graph()
    first = write(graph)
    second = write(parse(first))
    assert graph_signature(parse(first)) == graph_signature(parse(second))
