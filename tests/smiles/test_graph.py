"""Tests for the molecular graph data structure."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.smiles.graph import Atom, Bond, BondOrder, MolecularGraph
from repro.smiles.parser import parse


class TestConstruction:
    def test_add_atom_returns_dense_indices(self):
        graph = MolecularGraph()
        assert graph.add_atom(Atom(element="C")) == 0
        assert graph.add_atom(Atom(element="N")) == 1
        assert len(graph) == 2

    def test_add_bond_updates_adjacency(self):
        graph = MolecularGraph()
        a = graph.add_atom(Atom(element="C"))
        b = graph.add_atom(Atom(element="O"))
        graph.add_bond(a, b)
        assert graph.neighbors(a) == [b]
        assert graph.neighbors(b) == [a]
        assert graph.degree(a) == 1

    def test_self_bond_rejected(self):
        graph = MolecularGraph()
        a = graph.add_atom(Atom(element="C"))
        with pytest.raises(ValidationError):
            graph.add_bond(a, a)

    def test_missing_atom_rejected(self):
        graph = MolecularGraph()
        graph.add_atom(Atom(element="C"))
        with pytest.raises(ValidationError):
            graph.add_bond(0, 5)

    def test_duplicate_bond_rejected(self):
        graph = MolecularGraph()
        a = graph.add_atom(Atom(element="C"))
        b = graph.add_atom(Atom(element="C"))
        graph.add_bond(a, b)
        with pytest.raises(ValidationError):
            graph.add_bond(b, a)


class TestQueries:
    def test_get_bond_is_order_insensitive(self):
        graph = MolecularGraph()
        a = graph.add_atom(Atom(element="C"))
        b = graph.add_atom(Atom(element="N"))
        graph.add_bond(a, b, BondOrder.DOUBLE)
        assert graph.get_bond(a, b) is graph.get_bond(b, a)
        assert graph.get_bond(a, b).order is BondOrder.DOUBLE

    def test_get_bond_missing_returns_none(self):
        graph = MolecularGraph()
        graph.add_atom(Atom(element="C"))
        graph.add_atom(Atom(element="C"))
        assert graph.get_bond(0, 1) is None

    def test_bonded_valence_counts_bond_orders(self):
        graph = parse("C(=O)O")
        # Atom 0 is the carbon with one double and one single bond.
        assert graph.bonded_valence(0) == 3

    def test_connected_components(self):
        graph = parse("CC.O.CCC")
        components = graph.connected_components()
        assert [len(c) for c in components] == [2, 1, 3]

    def test_ring_bond_count_acyclic(self):
        assert parse("CCCC").ring_bond_count() == 0

    def test_ring_bond_count_bicyclic(self):
        assert parse("C1CC2CCC1CC2").ring_bond_count() == 2

    def test_iter_ring_memberships_identifies_ring_bonds(self):
        graph = parse("C1CC1CC")  # triangle with a two-carbon tail
        ring_bonds = list(graph.iter_ring_memberships())
        assert len(ring_bonds) == 3  # only the triangle edges


class TestBond:
    def test_other_endpoint(self):
        bond = Bond(2, 5)
        assert bond.other(2) == 5
        assert bond.other(5) == 2

    def test_other_invalid_raises(self):
        with pytest.raises(ValueError):
            Bond(2, 5).other(7)

    def test_key_is_sorted(self):
        assert Bond(5, 2).key() == (2, 5)

    def test_valence_units(self):
        assert BondOrder.SINGLE.valence_units == 1
        assert BondOrder.DOUBLE.valence_units == 2
        assert BondOrder.TRIPLE.valence_units == 3
        assert BondOrder.AROMATIC.valence_units == 1


class TestAtom:
    def test_needs_bracket_for_charge(self):
        assert Atom(element="N", charge=1).needs_bracket()

    def test_needs_bracket_for_isotope(self):
        assert Atom(element="C", isotope=14).needs_bracket()

    def test_organic_subset_no_bracket(self):
        assert not Atom(element="C").needs_bracket()

    def test_non_organic_element_needs_bracket(self):
        assert Atom(element="Fe").needs_bracket()

    def test_smiles_symbol_lowercase_when_aromatic(self):
        assert Atom(element="N", aromatic=True).smiles_symbol() == "n"
