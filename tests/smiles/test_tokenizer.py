"""Tests for the SMILES tokenizer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TokenizationError
from repro.smiles.tokenizer import Token, TokenType, detokenize, is_tokenizable, tokenize


class TestBasicTokens:
    def test_single_atom(self):
        tokens = tokenize("C")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.ATOM
        assert tokens[0].text == "C"

    def test_two_letter_organic_atom(self):
        tokens = tokenize("CCl")
        assert [t.text for t in tokens] == ["C", "Cl"]
        assert all(t.type is TokenType.ATOM for t in tokens)

    def test_bromine_not_split(self):
        tokens = tokenize("BrBr")
        assert [t.text for t in tokens] == ["Br", "Br"]

    def test_aromatic_atoms(self):
        tokens = tokenize("cnosp")
        assert [t.text for t in tokens] == ["c", "n", "o", "s", "p"]
        assert all(t.type is TokenType.ATOM for t in tokens)

    def test_wildcard_atom(self):
        tokens = tokenize("*C")
        assert tokens[0].type is TokenType.ATOM
        assert tokens[0].text == "*"

    def test_bond_symbols(self):
        tokens = tokenize("C=C#N")
        types = [t.type for t in tokens]
        assert types == [
            TokenType.ATOM,
            TokenType.BOND,
            TokenType.ATOM,
            TokenType.BOND,
            TokenType.ATOM,
        ]

    def test_directional_bonds(self):
        tokens = tokenize("C/C=C\\C")
        bond_texts = [t.text for t in tokens if t.type is TokenType.BOND]
        assert bond_texts == ["/", "=", "\\"]

    def test_branches(self):
        tokens = tokenize("CC(C)C")
        types = [t.type for t in tokens]
        assert TokenType.BRANCH_OPEN in types
        assert TokenType.BRANCH_CLOSE in types

    def test_dot_disconnection(self):
        tokens = tokenize("C.C")
        assert tokens[1].type is TokenType.DOT


class TestRingBonds:
    def test_single_digit_ring(self):
        tokens = tokenize("C1CC1")
        ring_tokens = [t for t in tokens if t.type is TokenType.RING_BOND]
        assert len(ring_tokens) == 2
        assert all(t.ring_id == 1 for t in ring_tokens)

    def test_percent_ring_id(self):
        tokens = tokenize("C%12CCCCC%12")
        ring_tokens = [t for t in tokens if t.type is TokenType.RING_BOND]
        assert [t.ring_id for t in ring_tokens] == [12, 12]
        assert [t.text for t in ring_tokens] == ["%12", "%12"]

    def test_ring_id_zero(self):
        tokens = tokenize("C0CC0")
        ring_tokens = [t for t in tokens if t.type is TokenType.RING_BOND]
        assert [t.ring_id for t in ring_tokens] == [0, 0]

    def test_percent_requires_two_digits(self):
        with pytest.raises(TokenizationError):
            tokenize("C%1CC")

    def test_digits_inside_brackets_are_not_ring_bonds(self):
        tokens = tokenize("[13CH4]")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.BRACKET_ATOM


class TestBracketAtoms:
    @pytest.mark.parametrize(
        "text",
        ["[C]", "[CH4]", "[C@H]", "[C@@H]", "[O-]", "[N+]", "[13C]", "[nH]",
         "[Fe+2]", "[NH4+]", "[C@@](N)(O)C", "[Se]", "[cH:2]"],
    )
    def test_bracket_atom_accepted(self, text):
        tokens = tokenize(text)
        assert tokens[0].type is TokenType.BRACKET_ATOM

    def test_unterminated_bracket(self):
        with pytest.raises(TokenizationError) as excinfo:
            tokenize("[CH4")
        assert excinfo.value.position == 0

    def test_malformed_bracket(self):
        with pytest.raises(TokenizationError):
            tokenize("[]")

    def test_bracket_position_recorded(self):
        tokens = tokenize("C[OH]")
        assert tokens[1].position == 1


class TestErrors:
    @pytest.mark.parametrize("bad", ["C!C", "Cx", "C C", "C\tC", "Cé"])
    def test_unexpected_character(self, bad):
        with pytest.raises(TokenizationError):
            tokenize(bad)

    def test_error_carries_position(self):
        with pytest.raises(TokenizationError) as excinfo:
            tokenize("CC!")
        assert excinfo.value.position == 2
        assert excinfo.value.smiles == "CC!"

    def test_non_string_input(self):
        with pytest.raises(TokenizationError):
            tokenize(123)  # type: ignore[arg-type]

    def test_is_tokenizable(self):
        assert is_tokenizable("CCO")
        assert not is_tokenizable("C!O")


class TestDetokenize:
    def test_roundtrip_curated(self, curated_smiles):
        for smiles in curated_smiles:
            assert detokenize(tokenize(smiles)) == smiles

    def test_empty_string(self):
        assert tokenize("") == []
        assert detokenize([]) == ""

    def test_positions_are_monotonic(self, curated_smiles):
        for smiles in curated_smiles:
            positions = [t.position for t in tokenize(smiles)]
            assert positions == sorted(positions)

    def test_token_lengths_cover_input(self, curated_smiles):
        for smiles in curated_smiles:
            assert sum(len(t) for t in tokenize(smiles)) == len(smiles)


@pytest.mark.slow
@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_generated_smiles_tokenize_and_roundtrip(seed):
    """Every generator-produced SMILES tokenizes and detokenizes exactly."""
    from repro.datasets.mediate import generator

    smiles = generator(seed=seed).generate_smiles()
    tokens = tokenize(smiles)
    assert detokenize(tokens) == smiles
    assert len(tokens) > 0


@given(st.text(alphabet="CNOcno123()=#[]+-@H", max_size=30))
@settings(max_examples=60, deadline=None)
def test_tokenizer_never_crashes_on_smiles_characters(text):
    """Arbitrary strings over SMILES characters either tokenize or raise TokenizationError."""
    try:
        tokens = tokenize(text)
    except TokenizationError:
        return
    assert detokenize(tokens) == text
