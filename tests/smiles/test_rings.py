"""Tests for ring-bond span analysis."""

from __future__ import annotations

import pytest

from repro.errors import RingNumberingError
from repro.smiles.rings import (
    RingSpan,
    max_simultaneous_rings,
    pair_ring_bonds,
    ring_spans,
    ring_statistics,
)
from repro.smiles.tokenizer import tokenize


class TestPairing:
    def test_no_rings(self):
        assert ring_spans("CCO") == []

    def test_single_ring(self):
        spans = ring_spans("C1CCCCC1")
        assert len(spans) == 1
        assert spans[0].ring_id == 1
        assert spans[0].open_index < spans[0].close_index

    def test_two_sequential_rings(self):
        spans = ring_spans("C1CC1C2CC2")
        assert [s.ring_id for s in spans] == [1, 2]
        assert not spans[0].overlaps(spans[1])

    def test_reused_identifier_pairs_correctly(self):
        spans = ring_spans("C1CC1C1CC1")
        assert len(spans) == 2
        assert all(s.ring_id == 1 for s in spans)
        assert not spans[0].overlaps(spans[1])

    def test_nested_rings_overlap(self):
        spans = ring_spans("C1CC2CCC1CC2")
        assert len(spans) == 2
        assert spans[0].overlaps(spans[1])

    def test_percent_ids(self):
        spans = ring_spans("C%10CCCCC%10")
        assert spans[0].ring_id == 10

    def test_unclosed_ring_raises(self):
        with pytest.raises(RingNumberingError):
            pair_ring_bonds(tokenize("C1CCC"))

    def test_digits_inside_brackets_ignored(self):
        assert ring_spans("[13CH4]") == []


class TestSpanGeometry:
    def test_contains(self):
        outer = RingSpan(ring_id=1, open_index=0, close_index=10)
        inner = RingSpan(ring_id=2, open_index=2, close_index=5)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_length(self):
        span = RingSpan(ring_id=1, open_index=3, close_index=9)
        assert span.length == 5

    def test_overlap_is_symmetric(self):
        a = RingSpan(1, 0, 5)
        b = RingSpan(2, 3, 8)
        assert a.overlaps(b) and b.overlaps(a)

    def test_disjoint_spans_do_not_overlap(self):
        a = RingSpan(1, 0, 2)
        b = RingSpan(2, 5, 8)
        assert not a.overlaps(b)


class TestStatistics:
    def test_max_simultaneous_rings_nested(self):
        spans = ring_spans("C1CC2CCC1CC2")
        assert max_simultaneous_rings(spans) == 2

    def test_max_simultaneous_rings_sequential(self):
        spans = ring_spans("C1CC1C2CC2")
        assert max_simultaneous_rings(spans) == 1

    def test_statistics_no_rings(self):
        stats = ring_statistics("CCO")
        assert stats["count"] == 0
        assert stats["max_open"] == 0

    def test_statistics_dibenzoylmethane(self):
        stats = ring_statistics("C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2")
        assert stats["count"] == 2
        assert stats["distinct_ids"] == 2
        assert stats["max_open"] == 1

    def test_statistics_counts_generated_corpus(self, mediate_corpus):
        ring_counts = [ring_statistics(s)["count"] for s in mediate_corpus[:40]]
        assert any(count >= 1 for count in ring_counts)
