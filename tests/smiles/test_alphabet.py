"""Tests for the SMILES alphabet and symbol-pool definitions."""

from __future__ import annotations

from repro.smiles.alphabet import (
    ESCAPE_CHAR,
    EXTENDED_ASCII,
    NON_SMILES_PRINTABLE,
    PRINTABLE_ASCII,
    SMILES_ALPHABET,
    is_smiles_char,
    symbol_code_points,
)


class TestAlphabetMembership:
    def test_core_characters_present(self):
        for ch in "CNOPSFIclnosp0123456789()[]=#+-@/\\%.*~$:":
            assert ch in SMILES_ALPHABET, ch

    def test_two_letter_element_characters_present(self):
        # 'Cl' and 'Br' contribute their individual characters.
        assert "l" in SMILES_ALPHABET and "r" in SMILES_ALPHABET and "B" in SMILES_ALPHABET

    def test_space_and_newline_excluded(self):
        assert " " not in SMILES_ALPHABET
        assert "\n" not in SMILES_ALPHABET

    def test_is_smiles_char(self):
        assert is_smiles_char("C")
        assert not is_smiles_char("!")

    def test_escape_char_is_space(self):
        assert ESCAPE_CHAR == " "

    def test_alphabet_is_subset_of_printable(self):
        assert SMILES_ALPHABET <= PRINTABLE_ASCII

    def test_non_smiles_printable_disjoint_from_alphabet(self):
        assert not (NON_SMILES_PRINTABLE & SMILES_ALPHABET)
        assert ESCAPE_CHAR not in NON_SMILES_PRINTABLE


class TestExtendedRange:
    def test_extended_ascii_is_high_latin1(self):
        assert all(0x80 <= ord(ch) <= 0xFF for ch in EXTENDED_ASCII)

    def test_nel_excluded(self):
        """U+0085 splits lines under str.splitlines, so it must never be a symbol."""
        assert "\x85" not in EXTENDED_ASCII

    def test_no_duplicates(self):
        assert len(EXTENDED_ASCII) == len(set(EXTENDED_ASCII))


class TestSymbolCodePoints:
    def test_default_pool_excludes_reserved_characters(self):
        pool = symbol_code_points()
        assert ESCAPE_CHAR not in pool
        assert "\n" not in pool and "\t" not in pool

    def test_reserved_characters_removed(self):
        pool = symbol_code_points(frozenset({"!"}))
        assert "!" not in pool

    def test_printable_symbols_come_first(self):
        pool = symbol_code_points()
        first_extended = next(i for i, ch in enumerate(pool) if ord(ch) >= 0x80)
        assert all(ord(ch) < 0x80 for ch in pool[:first_extended])

    def test_pool_never_contains_smiles_characters(self):
        assert not (set(symbol_code_points()) & SMILES_ALPHABET)
