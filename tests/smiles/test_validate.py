"""Tests for SMILES validation."""

from __future__ import annotations

import pytest

from repro.smiles.parser import parse
from repro.smiles.validate import (
    ValidationReport,
    check_characters,
    check_structure,
    check_valence,
    is_valid,
    validate,
)


class TestCharacterCheck:
    def test_clean_string_has_no_problems(self):
        assert check_characters("COc1cc(C=O)ccc1O") == []

    def test_foreign_character_reported_with_position(self):
        problems = check_characters("CC!C")
        assert len(problems) == 1
        assert "position 2" in problems[0]

    def test_multiple_problems_all_reported(self):
        assert len(check_characters("C!C?")) == 2


class TestStructureCheck:
    def test_valid_structure(self):
        assert check_structure("c1ccccc1") == []

    def test_unbalanced_branch(self):
        assert len(check_structure("CC(C")) == 1

    def test_unclosed_ring(self):
        assert len(check_structure("C1CCC")) == 1


class TestValenceCheck:
    def test_normal_molecule_has_no_warnings(self):
        assert check_valence(parse("CC(C)(C)C")) == []

    def test_pentavalent_carbon_warns(self):
        graph = parse("C(C)(C)(C)(C)C")
        warnings = check_valence(graph)
        assert len(warnings) == 1
        assert "valence" in warnings[0]

    def test_charged_atoms_are_skipped(self):
        # [N+] with four bonds is legitimate; no warning because charged atoms are skipped.
        graph = parse("C[N+](C)(C)C")
        assert check_valence(graph) == []


class TestValidate:
    def test_valid_report(self):
        report = validate("CCO")
        assert report.valid
        assert report.errors == []

    def test_invalid_characters_short_circuit(self):
        report = validate("CC!")
        assert not report.valid
        assert len(report.errors) == 1

    def test_structural_error_reported(self):
        report = validate("C1CC")
        assert not report.valid

    def test_valence_warning_does_not_invalidate(self):
        report = validate("C(C)(C)(C)(C)C")
        assert report.valid
        assert report.warnings

    def test_valence_check_can_be_disabled(self):
        report = validate("C(C)(C)(C)(C)C", valence=False)
        assert report.warnings == []

    def test_report_mutators(self):
        report = ValidationReport(smiles="C")
        report.add_warning("odd")
        assert report.valid
        report.add_error("bad")
        assert not report.valid


class TestIsValid:
    @pytest.mark.parametrize(
        "smiles", ["C", "c1ccccc1", "CC(=O)Oc1ccccc1C(=O)O", "[13CH4]", "C%12CCCCC%12"]
    )
    def test_valid_strings(self, smiles):
        assert is_valid(smiles)

    @pytest.mark.parametrize("smiles", ["", "C1CC", "CC(", "C!C", "C=="])
    def test_invalid_strings(self, smiles):
        assert not is_valid(smiles)

    def test_generated_corpora_are_valid(self, gdb_corpus, mediate_corpus, exscalate_corpus):
        for corpus in (gdb_corpus, mediate_corpus, exscalate_corpus):
            assert all(is_valid(s) for s in corpus)
