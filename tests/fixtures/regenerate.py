#!/usr/bin/env python3
"""Regenerate the golden-parity fixtures.

The committed fixtures pin the on-disk formats byte for byte:

* ``corpus.smi``   — a small mixed SMILES corpus (curated grammar-coverage
  records + deterministic synthetic ones),
* ``golden.dct``   — the dictionary trained on it with the pinned
  configuration below,
* ``corpus.zsmi``  — the per-line :class:`ZSmilesCodec` output,
* ``corpus.zss``   — the packed block store (8 records per block, embedded
  dictionary).

``tests/test_golden_parity.py`` asserts that the codec, every registered
engine backend and the store writer still reproduce these bytes exactly.

Re-running this script and committing its output is a FORMAT BREAK: only do
that deliberately (e.g. a versioned ``.zss`` layout change), never to make a
red parity test pass.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/regenerate.py
"""

from __future__ import annotations

from pathlib import Path

FIXTURES = Path(__file__).parent

#: Pinned training configuration (preprocessing off => byte-exact round trips).
TRAIN_KWARGS = dict(preprocessing=False, lmax=6, min_occurrences=2)
#: Pinned block granularity of the golden store.
RECORDS_PER_BLOCK = 8

#: The fixture corpus.  Curated grammar-coverage records (rings, branches,
#: aromatics, brackets, charges, stereo, isotopes, %-ring ids, dots) followed
#: by a frozen sample of the synthetic MIXED corpus.  This list is part of the
#: fixture: corpus.smi is rewritten from it, never re-sampled.
CORPUS = [
    "C",
    "CCO",
    "c1ccccc1",
    "COc1cc(C=O)ccc1O",
    "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
    "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
    "CC(=O)Oc1ccccc1C(=O)O",
    "CN1CCC[C@H]1c1cccnc1",
    "C1CC2CCC1CC2",
    "O=C(O)c1ccccc1O",
    "[O-]C(=O)c1ccccc1[N+](=O)[O-]",
    "FC(F)(F)c1ccc(Cl)cc1Br",
    "C/C=C/C",
    "N#Cc1ccccc1",
    "C1CC1.C1CCC1",
    "c1ccc2ccccc2c1",
    "O=S(=O)(N)c1ccc(N)cc1",
    "[13CH4]",
    "C%12CCCCC%12",
    "CCN(CC)CC",
    "CC(C)(C)OC(=O)N",
    "c1ccsc1",
    "c1ccoc1",
    "C1CCNCC1",
    "CC(=O)Nc1ccc(O)cc1",
    "Clc1ccc(cc1)C(c1ccccc1)N1CCN(CC1)CCOCC(=O)O",
    "CC(C)NCC(O)COc1ccc(cc1)CC(=O)N",
    "OC(=O)CCc1ccccc1",
    "NCCc1ccc(O)c(O)c1",
    "CNC(=O)Oc1ccccc1",
    "CCOC(=O)c1ccccc1",
    "CSc1ccccc1",
    "O=[N+]([O-])c1ccccc1",
    "Ic1ccccc1",
    "C#CC#C",
    "CC=C=CC",
    "[NH4+].[Cl-]",
    "C1CC2(CC1)CCC2",
    "c1cc2cc3ccccc3cc2cc1",
    "CC(O)C(N)C(=O)O",
]


def main() -> None:
    import repro.engine  # noqa: F401  (registers the standard backends)
    from repro.core.codec import ZSmilesCodec
    from repro.core.streaming import FILE_ENCODING, write_lines
    from repro.engine.engine import ZSmilesEngine
    from repro.store.writer import pack_records

    corpus_path = FIXTURES / "corpus.smi"
    write_lines(corpus_path, CORPUS)

    codec = ZSmilesCodec.train(CORPUS, **TRAIN_KWARGS)
    codec.save_dictionary(FIXTURES / "golden.dct")

    compressed = [codec.compress(record) for record in CORPUS]
    write_lines(FIXTURES / "corpus.zsmi", compressed)

    engine = ZSmilesEngine.from_codec(codec, backend="serial")
    info = pack_records(
        FIXTURES / "corpus.zss",
        CORPUS,
        engine,
        records_per_block=RECORDS_PER_BLOCK,
        embed_dictionary=True,
    )
    zsmi_bytes = (FIXTURES / "corpus.zsmi").stat().st_size
    print(
        f"wrote {len(CORPUS)} records: corpus.smi, golden.dct "
        f"({len(codec.table)} entries), corpus.zsmi ({zsmi_bytes} B), "
        f"corpus.zss ({info.blocks} blocks, {info.file_bytes} B)"
    )


if __name__ == "__main__":
    main()
