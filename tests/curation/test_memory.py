"""Bounded-memory proof: a synthetic 1M-line ingest under a fixed ceiling.

The pipeline's contract is that memory scales with the number of *unique*
records (16 bytes of digest each), never with stream length.  A 1M-line
synthetic stream with a capped unique population must ingest under a fixed
tracemalloc ceiling, with the counters accounting for every line.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.curation import DEDUP_STAGE, IngestPipeline, ReservoirSampler, tee
from repro.curation.filters import length_filter, strip_filter

#: Synthetic stream length (1M lines) and its unique-record population.
STREAM_LINES = 1_000_000
UNIQUE_RECORDS = 50_000
#: Peak tracemalloc ceiling: 50k digests (16 B) + sampler + overhead is a
#: few MiB; 64 MiB proves "bounded by uniques" with a wide safety margin
#: (the raw stream is ~20 MB of text and never materialises).
MEMORY_CEILING_BYTES = 64 * 1024 * 1024


def synthetic_stream():
    """1M deterministic pseudo-SMILES lines drawn from a bounded population."""
    for i in range(STREAM_LINES):
        key = (i * 2654435761) % UNIQUE_RECORDS
        yield f"C{'C' * (key % 17)}N{key}O"


@pytest.mark.slow
class TestBoundedMemoryIngest:
    def test_million_line_ingest_stays_under_ceiling(self):
        pipeline = IngestPipeline([strip_filter(), length_filter(2, 80)])
        sampler = ReservoirSampler(10_000, seed=1)
        tracemalloc.start()
        try:
            emitted = 0
            for _ in tee(pipeline.process(synthetic_stream()), sampler):
                emitted += 1
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < MEMORY_CEILING_BYTES, f"peak {peak / 2**20:.1f} MiB"

        stats = pipeline.stats
        stats.check()
        assert stats.lines_in == STREAM_LINES
        assert stats.records_out == emitted == UNIQUE_RECORDS
        assert stats.stages[DEDUP_STAGE].rejected == STREAM_LINES - UNIQUE_RECORDS
        assert stats.lines_in == stats.records_out + stats.rejected_total()
        assert sampler.seen == UNIQUE_RECORDS
        assert len(sampler) == 10_000
