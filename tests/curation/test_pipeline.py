"""Pipeline properties: dedup order/stability, counters that always tally.

The acceptance contract: every line drawn from the source is accounted for
(``lines_in == records_out + sum(rejected)``), dedup keeps the *first*
occurrence so output order is order of first appearance, and re-running the
pipeline over its own output is the identity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curation import (
    DEDUP_STAGE,
    HeadSampler,
    IngestPipeline,
    IngestStats,
    ingest_to_file,
    ingest_to_store,
    iter_source,
    tee,
)
from repro.curation.filters import length_filter, strip_filter
from repro.errors import CurationError
from repro.store import CorpusStore

records_strategy = st.lists(
    st.text(alphabet=st.sampled_from("CNOcno()=#1"), min_size=0, max_size=12),
    max_size=60,
)


def first_occurrences(lines):
    seen, out = set(), []
    for line in lines:
        if line and line not in seen:
            seen.add(line)
            out.append(line)
    return out


class TestDedupProperties:
    @given(lines=records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_order_stable_first_occurrence_wins(self, lines):
        pipeline = IngestPipeline([strip_filter()])
        assert list(pipeline.process(lines)) == first_occurrences(lines)

    @given(lines=records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_idempotent_over_own_output(self, lines):
        """Re-ingesting a curated corpus is the identity."""
        pipeline = IngestPipeline([strip_filter()])
        once = list(pipeline.process(lines))
        again = list(pipeline.process(once))
        assert again == once

    @given(lines=records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_counters_always_tally(self, lines):
        pipeline = IngestPipeline([strip_filter(), length_filter(2, 10)])
        out = list(pipeline.process(lines))
        stats = pipeline.stats
        stats.check()
        assert stats.lines_in == len(lines)
        assert stats.records_out == len(out)
        assert stats.lines_in == stats.records_out + stats.rejected_total()

    def test_dedup_off_passes_duplicates(self):
        pipeline = IngestPipeline([strip_filter()], dedup=False)
        assert list(pipeline.process(["C", "C", "C"])) == ["C", "C", "C"]
        assert DEDUP_STAGE not in pipeline.stats.stages

    def test_fresh_stats_per_run(self):
        pipeline = IngestPipeline([strip_filter()])
        list(pipeline.process(["C", "N"]))
        first = pipeline.stats
        list(pipeline.process(["O"]))
        assert pipeline.stats is not first
        assert pipeline.stats.lines_in == 1

    def test_reserved_stage_name_rejected(self):
        from repro.curation.filters import RecordFilter

        with pytest.raises(CurationError):
            IngestPipeline([RecordFilter(DEDUP_STAGE, lambda r: r)])


class TestStatsCheck:
    def test_check_catches_broken_chain(self):
        stats = IngestStats(lines_in=10, records_out=9)
        from repro.curation.pipeline import StageCount

        stats.stages["strip"] = StageCount(seen=10, accepted=8, rejected=2)
        with pytest.raises(CurationError):
            stats.check()  # records_out != last accepted

    def test_as_dict_shape(self):
        pipeline = IngestPipeline([strip_filter()])
        list(pipeline.process([" C ", "", "C"]))
        payload = pipeline.stats.as_dict()
        assert payload["lines_in"] == 3
        assert payload["records_out"] == 1
        assert payload["rejected"] == 2
        assert set(payload["stages"]) == {"strip", DEDUP_STAGE}


class TestSources:
    def test_iter_source_strips_newlines_from_iterables(self):
        assert list(iter_source(["C\n", "N\r\n", "O"])) == ["C", "N", "O"]

    def test_iter_source_reads_paths(self, tmp_path):
        path = tmp_path / "in.smi"
        path.write_text("C\nN\n", encoding="utf-8")
        assert list(iter_source(path)) == ["C", "N"]


class TestSinks:
    def test_ingest_to_file_with_sampler_tee(self, tmp_path):
        sampler = HeadSampler(2)
        out = tmp_path / "curated.smi"
        stats = ingest_to_file(
            ["CCO", "CCO", " CCN ", "", "c1ccccc1"],
            out,
            IngestPipeline([strip_filter()]),
            sampler=sampler,
        )
        assert out.read_text(encoding="utf-8") == "CCO\nCCN\nc1ccccc1\n"
        assert stats.records_out == 3
        # The sampler saw every *emitted* record, capped at capacity.
        assert sampler.seen == 3
        assert sampler.sample == ["CCO", "CCN"]

    def test_ingest_to_store_round_trips(self, tmp_path, engine, corpus):
        out = tmp_path / "curated.zss"
        source = [f"  {record}" for record in corpus] + list(corpus[:10])
        stats = ingest_to_store(
            source, out, IngestPipeline([strip_filter()]), engine
        )
        unique = first_occurrences(corpus)
        assert stats.records_out == len(unique)
        assert stats.stages[DEDUP_STAGE].rejected == len(source) - len(unique)
        with CorpusStore(out) as store:
            assert list(store.iter_all()) == unique

    def test_tee_feeds_every_record(self):
        sampler = HeadSampler(100)
        assert list(tee(iter(["a", "b"]), sampler)) == ["a", "b"]
        assert sampler.seen == 2
