"""Bounded samplers: determinism, capacity bounds, uniformity, training."""

from __future__ import annotations

import pytest

from repro.curation import (
    HeadSampler,
    IngestPipeline,
    ReservoirSampler,
    make_sampler,
    train_on_sample,
)
from repro.curation.filters import strip_filter
from repro.errors import CurationError


class TestReservoirSampler:
    def test_capacity_bound_and_seen(self):
        sampler = ReservoirSampler(10, seed=1)
        for i in range(1000):
            sampler.add(str(i))
        assert len(sampler) == 10
        assert sampler.seen == 1000

    def test_sample_is_subset_of_stream(self):
        stream = [f"rec-{i}" for i in range(500)]
        sampler = ReservoirSampler(20, seed=3)
        for record in stream:
            sampler.add(record)
        assert set(sampler.sample) <= set(stream)

    def test_deterministic_for_fixed_seed(self):
        def run(seed):
            sampler = ReservoirSampler(8, seed=seed)
            for i in range(300):
                sampler.add(str(i))
            return sampler.sample

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_short_stream_kept_whole(self):
        sampler = ReservoirSampler(100, seed=0)
        for i in range(5):
            sampler.add(str(i))
        assert sampler.sample == ["0", "1", "2", "3", "4"]

    def test_roughly_uniform(self):
        """Every record has ~capacity/seen probability of surviving."""
        hits = [0] * 100
        for seed in range(200):
            sampler = ReservoirSampler(10, seed=seed)
            for i in range(100):
                sampler.add(i)
            for kept in sampler.sample:
                hits[kept] += 1
        # Expected 20 hits per position over 200 runs at p=0.1; a tight bound
        # would flake, but no position should be starved or saturated.
        assert all(2 <= h <= 60 for h in hits), hits

    def test_sample_returns_copy(self):
        sampler = ReservoirSampler(4, seed=0)
        sampler.add("C")
        sampler.sample.append("mutation")
        assert sampler.sample == ["C"]

    def test_zero_capacity_rejected(self):
        with pytest.raises(CurationError):
            ReservoirSampler(0)


class TestHeadSampler:
    def test_keeps_prefix(self):
        sampler = HeadSampler(3)
        for record in ["a", "b", "c", "d", "e"]:
            sampler.add(record)
        assert sampler.sample == ["a", "b", "c"]
        assert sampler.seen == 5


class TestMakeSampler:
    def test_kinds(self):
        assert isinstance(make_sampler("reservoir", 5, seed=1), ReservoirSampler)
        assert isinstance(make_sampler("head", 5), HeadSampler)
        with pytest.raises(CurationError):
            make_sampler("tail", 5)


class TestTrainOnSample:
    def test_trains_on_bounded_sample(self, corpus):
        pipeline = IngestPipeline([strip_filter()])
        engine, sampler = train_on_sample(
            pipeline.process(corpus), capacity=40, seed=2, lmax=6,
            preprocessing=False,
        )
        with engine:
            assert sampler.seen == pipeline.stats.records_out
            assert len(sampler) <= 40
            # The trained engine round-trips the sample it was trained on.
            record = sampler.sample[0]
            assert engine.decompress(engine.compress(record)) == record

    def test_empty_stream_raises(self):
        with pytest.raises(CurationError):
            train_on_sample(iter(()), capacity=10)
