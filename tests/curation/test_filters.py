"""Property suite for the ingest filters: purity, idempotence, semantics.

The filter contract the pipeline relies on: a filter is a pure function of
its input (same record → same answer, no hidden state), and whenever it
accepts a record its output is a fixpoint of itself, so re-ingesting an
already curated corpus is a no-op.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curation.filters import (
    canonical_filter,
    carbon_filter,
    charge_filter,
    column_filter,
    count_carbons,
    default_filters,
    is_charged,
    largest_fragment_filter,
    length_filter,
    strip_filter,
    validate_filters,
)
from repro.errors import CurationError

#: Text resembling raw ingest lines: printable ASCII with SMILES punctuation.
record_text = st.text(
    alphabet=st.sampled_from("CcNnOoS()[]=#+-.1234 \tCl"), max_size=40
)

#: Every built-in filter under test, constructed fresh per property run.
FILTER_FACTORIES = [
    strip_filter,
    largest_fragment_filter,
    charge_filter,
    lambda: length_filter(2, 30),
    lambda: carbon_filter(2),
    lambda: column_filter(0),
]


class TestPurityAndIdempotence:
    @pytest.mark.parametrize("factory", FILTER_FACTORIES)
    @given(record=record_text)
    @settings(max_examples=50, deadline=None)
    def test_pure(self, factory, record):
        """Same input twice → same answer (no hidden state)."""
        record_filter = factory()
        assert record_filter(record) == record_filter(record)

    @pytest.mark.parametrize("factory", FILTER_FACTORIES)
    @given(record=record_text)
    @settings(max_examples=50, deadline=None)
    def test_accepted_output_is_fixpoint(self, factory, record):
        """f(f(x)) == f(x) whenever f accepts x."""
        record_filter = factory()
        out = record_filter(record)
        if out is not None:
            assert record_filter(out) == out


class TestCanonicalFilter:
    @given(record=record_text)
    @settings(max_examples=50, deadline=None)
    def test_never_raises(self, record):
        """Unparsable garbage is rejected (None), never an exception."""
        canonical_filter()(record)

    def test_fixpoint_on_curated_corpus(self, curated_smiles):
        """write(parse(s)) is a fixpoint: canonicalising twice changes nothing."""
        record_filter = canonical_filter()
        for smiles in curated_smiles:
            once = record_filter(smiles)
            assert once is not None, smiles
            assert record_filter(once) == once

    def test_rejects_garbage(self):
        assert canonical_filter()("not(a(smiles") is None


class TestSemantics:
    def test_strip_rejects_blank(self):
        assert strip_filter()("   ") is None
        assert strip_filter()("  CCO \n") == "CCO"

    def test_column_picks_field(self):
        assert column_filter(1)("CCO\tmol-1") == "mol-1"
        assert column_filter(1)("CCO") is None

    def test_column_negative_index_rejected(self):
        with pytest.raises(CurationError):
            column_filter(-1)

    def test_largest_fragment(self):
        assert largest_fragment_filter()("Cl.CCCCO") == "CCCCO"
        assert largest_fragment_filter()("CCO") == "CCO"
        # Leftmost wins ties.
        assert largest_fragment_filter()("CCN.OCC") == "CCN"

    def test_charge_detection_only_in_brackets(self):
        assert is_charged("[O-]C(=O)C")
        assert is_charged("[N+](C)(C)C")
        assert not is_charged("C/C=C/C")      # direction symbols, not charges
        assert not is_charged("C#C")
        assert charge_filter()("[O-]CC") is None
        assert charge_filter()("OCC") == "OCC"

    def test_length_bounds(self):
        record_filter = length_filter(3, 5)
        assert record_filter("CC") is None
        assert record_filter("CCC") == "CCC"
        assert record_filter("CCCCCC") is None

    def test_length_bad_bounds(self):
        with pytest.raises(CurationError):
            length_filter(5, 3)

    def test_carbon_count_excludes_chlorine(self):
        assert count_carbons("ClCCl") == 1
        assert count_carbons("c1ccccc1") == 6
        assert carbon_filter(2)("ClCl") is None
        assert carbon_filter(2)("CCO") == "CCO"

    def test_default_chain_order_and_gating(self):
        names = [f.name for f in default_filters(
            canonicalize=True, drop_charged=True, min_length=2, min_carbons=2
        )]
        assert names[0] == "strip"
        assert names[-1] == "canonicalize"
        assert "uncharged" in names and "largest_fragment" in names

    def test_validate_rejects_duplicate_names(self):
        with pytest.raises(CurationError):
            validate_filters([strip_filter(), strip_filter()])
