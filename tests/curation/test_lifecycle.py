"""Dictionary lifecycle: content hash, pinning, verified save/load."""

from __future__ import annotations

import pytest

from repro.curation import (
    DictionaryIdentity,
    content_hash,
    identity_of,
    load_verified,
    pin_identity,
    save_pinned,
)
from repro.dictionary.serialization import dumps, loads
from repro.errors import DictionaryIntegrityError, DictionaryMismatchError


@pytest.fixture(scope="module")
def table(plain_codec):
    return plain_codec.table


class TestContentHash:
    def test_stable_across_serialization(self, table):
        assert content_hash(loads(dumps(table))) == content_hash(table)

    def test_metadata_does_not_change_hash(self, table):
        """Pinning name/version labels keeps the content hash — by design."""
        pinned = pin_identity(table, name="shared", version="1.0")
        assert content_hash(pinned) == content_hash(table)

    def test_entry_change_changes_hash(self, table):
        from repro.dictionary.codec_table import CodecTable

        truncated = CodecTable(
            table.entries[:-1], prepopulation=table.prepopulation
        )
        assert content_hash(truncated) != content_hash(table)


class TestPinning:
    def test_pin_writes_labels_and_count(self, table):
        pinned = pin_identity(table, name="shared", version="2026.08")
        assert pinned.metadata["name"] == "shared"
        assert pinned.metadata["version"] == "2026.08"
        assert pinned.metadata["entries"] == str(len(table))
        identity = identity_of(pinned)
        assert identity.name == "shared"
        assert identity.version == "2026.08"
        assert identity.entries == len(table)
        assert identity.label() == f"shared@2026.08 {identity.short_hash}"

    def test_original_table_untouched(self, table):
        before = dict(table.metadata)
        pin_identity(table, name="other")
        assert table.metadata == before

    def test_labels_survive_round_trip(self, table, tmp_path):
        path = tmp_path / "pinned.dct"
        identity = save_pinned(table, path, name="shared", version="1.0")
        loaded, loaded_identity = load_verified(path)
        assert loaded_identity == identity
        assert loaded.metadata["name"] == "shared"


class TestVerifiedLoad:
    def test_expected_hash_agreement(self, table, tmp_path):
        path = tmp_path / "ok.dct"
        identity = save_pinned(table, path)
        _, verified = load_verified(path, expected_hash=identity.hash)
        assert verified.hash == identity.hash

    def test_expected_hash_disagreement_raises(self, table, tmp_path):
        path = tmp_path / "wrong.dct"
        save_pinned(table, path)
        with pytest.raises(DictionaryMismatchError):
            load_verified(path, expected_hash="0" * 64)

    def test_truncated_pinned_dictionary_rejected(self, table, tmp_path):
        """The declared entry count is the truncation tripwire."""
        path = tmp_path / "truncated.dct"
        save_pinned(table, path)
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        path.write_text("".join(lines[:-3]), encoding="utf-8")
        with pytest.raises(DictionaryIntegrityError) as excinfo:
            load_verified(path)
        assert str(path) in str(excinfo.value)


class TestIdentityJson:
    def test_round_trip(self, table):
        identity = identity_of(pin_identity(table, name="n", version="v"))
        assert DictionaryIdentity.from_json_obj(identity.to_json_obj()) == identity

    def test_malformed_is_none(self):
        assert DictionaryIdentity.from_json_obj(None) is None
        assert DictionaryIdentity.from_json_obj({"name": "x"}) is None
        assert DictionaryIdentity.from_json_obj("hash") is None
