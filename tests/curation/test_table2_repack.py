"""Table II driven through real library re-packs matches the engine matrix.

Stored records are exact per-record codec outputs and the store's payload
accounting mirrors ``evaluate()``'s (record bytes + newline), so the repack
route must reproduce the in-memory matrix *exactly* — not approximately.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.table2 import DATASET_ORDER, run_table2


@pytest.fixture(scope="module")
def scale():
    return ExperimentScale.smoke()


def test_repack_matrix_equals_engine_matrix(scale):
    engine_result = run_table2(scale=scale, lmax=6, via="engine")
    repack_result = run_table2(scale=scale, lmax=6, via="repack")
    assert set(repack_result.ratios) == set(engine_result.ratios)
    for key in engine_result.ratios:
        assert repack_result.ratios[key] == pytest.approx(
            engine_result.ratios[key], abs=1e-12
        ), key
    assert len(repack_result.ratios) == len(DATASET_ORDER) ** 2


def test_unknown_via_rejected(scale):
    with pytest.raises(ValueError):
        run_table2(scale=scale, via="teleport")
