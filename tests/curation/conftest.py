"""Shared fixtures for the curation subsystem tests.

One serial engine (over the session's no-preprocessing codec, so round
trips are byte-exact) and one small multi-shard library packed with it.
"""

from __future__ import annotations

import pytest

from repro.engine import ZSmilesEngine
from repro.library import pack_library


@pytest.fixture(scope="module")
def engine(plain_codec):
    """Serial engine over the no-preprocessing codec (byte-exact round trips)."""
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as eng:
        yield eng


@pytest.fixture(scope="module")
def corpus(mixed_corpus_small):
    """120 records: small, fast, spans 3 shards."""
    return mixed_corpus_small[:120]


@pytest.fixture(scope="module")
def library_dir(tmp_path_factory, corpus, engine):
    """A 3-shard library over the corpus (blocks of 8)."""
    directory = tmp_path_factory.mktemp("curation_lib") / "corpus.library"
    pack_library(directory, corpus, engine, shards=3, records_per_block=8)
    return directory
