"""Cross-dictionary re-pack: parity, manifest pinning, mismatch detection.

The acceptance bar for ``zsmiles repack``: full readback of the repacked
multi-shard library is byte-identical to the source, its shard files are
byte-identical to a *fresh* pack of the same records with dictionary B, the
new manifest pins B's identity (and the server reports it), and the source
library is left untouched.
"""

from __future__ import annotations

import shutil

import pytest

from repro.curation import DictionaryIdentity, repack_library
from repro.engine import ZSmilesEngine
from repro.errors import CurationError, DictionaryMismatchError
from repro.library import CorpusLibrary, LibraryManifest, pack_library
from repro.server import BackgroundServer, CorpusClient


@pytest.fixture(scope="module")
def dict_b_engine(corpus):
    """Dictionary B: trained on a shifted slice so it differs from A."""
    with ZSmilesEngine.train(
        corpus[40:] + corpus[:40] + ["c1ccccc1CCCN"], preprocessing=False, lmax=6
    ) as eng:
        yield eng


@pytest.fixture(scope="module")
def repacked(tmp_path_factory, library_dir, dict_b_engine):
    destination = tmp_path_factory.mktemp("repack") / "corpus.v2.library"
    result = repack_library(
        library_dir, destination, dict_b_engine.table, shard_jobs=2
    )
    return destination, result


class TestRepackParity:
    def test_full_readback_byte_identical(self, repacked, library_dir, corpus):
        destination, result = repacked
        with CorpusLibrary.open(destination) as packed:
            assert list(packed.iter_all()) == list(corpus)
        assert result.records == len(corpus)

    def test_shards_byte_identical_to_fresh_pack(
        self, repacked, tmp_path_factory, corpus, dict_b_engine
    ):
        """Repack == decompress-with-A + fresh pack-with-B, byte for byte."""
        from repro.curation.repack import repack_engine

        destination, _ = repacked
        fresh_dir = tmp_path_factory.mktemp("fresh") / "corpus.library"
        with repack_engine(dict_b_engine.table) as engine:
            pack_library(fresh_dir, corpus, engine, shards=3, records_per_block=8)
        repacked_shards = sorted(p.name for p in destination.glob("*.zss"))
        fresh_shards = sorted(p.name for p in fresh_dir.glob("*.zss"))
        assert repacked_shards == fresh_shards
        for name in repacked_shards:
            assert (destination / name).read_bytes() == (
                fresh_dir / name
            ).read_bytes()

    def test_source_left_untouched(self, repacked, library_dir, corpus):
        with CorpusLibrary.open(library_dir) as source:
            assert list(source.iter_all()) == list(corpus)


class TestIdentityPinning:
    def test_manifest_pins_target_identity(self, repacked, dict_b_engine):
        destination, result = repacked
        expected = DictionaryIdentity.of(dict_b_engine.table)
        assert result.target_identity.hash == expected.hash
        manifest = LibraryManifest.load(destination / "library.json")
        assert manifest.dictionary_identity().hash == expected.hash

    def test_source_identity_reported(self, repacked, library_dir):
        _, result = repacked
        with CorpusLibrary.open(library_dir) as source:
            assert result.source_identity == source.dictionary_identity()

    def test_server_stats_serve_identity(self, repacked, dict_b_engine):
        destination, _ = repacked
        expected = DictionaryIdentity.of(dict_b_engine.table)
        with BackgroundServer(destination) as server:
            with CorpusClient(server.url) as client:
                stats = client.stats()
        assert stats["dictionary"]["hash"] == expected.hash
        assert stats["dictionary"]["entries"] == expected.entries


class TestGuards:
    def test_same_directory_rejected(self, library_dir, dict_b_engine):
        with pytest.raises(CurationError):
            repack_library(library_dir, library_dir, dict_b_engine.table)

    def test_dct_path_accepted_as_dictionary(
        self, tmp_path, library_dir, dict_b_engine, corpus
    ):
        from repro.dictionary import serialization

        dct = tmp_path / "b.dct"
        serialization.save(dict_b_engine.table, dct)
        result = repack_library(library_dir, tmp_path / "out.library", dct)
        assert result.target_identity.hash == DictionaryIdentity.of(
            dict_b_engine.table
        ).hash


class TestMismatchDetection:
    def test_swapped_shard_raises(self, library_dir, repacked, tmp_path):
        """A shard packed with B inside A's library is caught on open."""
        destination, _ = repacked
        hybrid = tmp_path / "hybrid.library"
        shutil.copytree(library_dir, hybrid)
        victim = sorted(hybrid.glob("*.zss"))[0]
        donor = sorted(destination.glob("*.zss"))[0]
        shutil.copyfile(donor, victim)
        with pytest.raises(DictionaryMismatchError):
            with CorpusLibrary.open(hybrid) as library:
                list(library.iter_all())

    def test_codec_override_bypasses_check(
        self, library_dir, repacked, tmp_path, dict_b_engine
    ):
        """An explicit codec override says 'I know better' — honoured."""
        from repro.core.codec import ZSmilesCodec
        from repro.preprocess.pipeline import PreprocessingPipeline

        destination, _ = repacked
        hybrid = tmp_path / "hybrid.library"
        shutil.copytree(destination, hybrid)
        codec = ZSmilesCodec(
            dict_b_engine.table, pipeline=PreprocessingPipeline.identity()
        )
        with CorpusLibrary.open(hybrid, codec=codec) as library:
            assert library.get(0)
