"""Tests for the optimal shortest-path parse (paper Section IV-D1)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shortest_path import (
    ESCAPE_COST,
    MATCH_COST,
    greedy_parse,
    optimal_parse,
    parse_consumes,
    parse_cost,
)
from repro.dictionary.trie import Trie


def brute_force_minimum_cost(text: str, patterns: set[str]) -> int:
    """Exponential reference: cheapest segmentation cost of *text*."""
    n = len(text)
    best = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        candidates = [ESCAPE_COST + best[i + 1]]
        for p in patterns:
            if text.startswith(p, i):
                candidates.append(MATCH_COST + best[i + len(p)])
        best[i] = min(candidates)
    return best[0]


class TestOptimalParse:
    def test_empty_string(self):
        assert optimal_parse("", Trie()) == []

    def test_no_dictionary_all_escapes(self):
        steps = optimal_parse("abc", Trie())
        assert len(steps) == 3
        assert all(step.symbol is None and step.cost == ESCAPE_COST for step in steps)

    def test_single_full_match(self):
        trie = Trie([("abc", "X")])
        steps = optimal_parse("abc", trie)
        assert len(steps) == 1
        assert steps[0].symbol == "X"
        assert steps[0].cost == MATCH_COST

    def test_prefers_fewer_symbols_over_greedy(self):
        # Greedy takes "ab" then must escape "c" twice; optimal takes "a"+"bc".
        trie = Trie([("ab", "1"), ("a", "2"), ("bc", "3")])
        text = "abc"
        optimal = optimal_parse(text, trie)
        greedy = greedy_parse(text, trie)
        assert parse_cost(optimal) == 2
        assert parse_cost(greedy) == 3

    def test_steps_cover_input_exactly(self, trained_codec):
        trie = trained_codec.table.trie
        for text in ["COc1cc(C=O)ccc1O", "CC(C)Cc1ccc(cc1)C(C)C(=O)O"]:
            steps = optimal_parse(text, trie)
            assert parse_consumes(steps) == len(text)
            rebuilt = "".join(step.pattern for step in steps)
            assert rebuilt == text

    def test_escape_pattern_is_single_character(self):
        trie = Trie([("ab", "1")])
        steps = optimal_parse("abz", trie)
        assert steps[-1].symbol is None
        assert steps[-1].pattern == "z"

    def test_optimal_never_worse_than_greedy(self, trained_codec, mixed_corpus_small):
        trie = trained_codec.table.trie
        for smiles in mixed_corpus_small[:60]:
            text = trained_codec.preprocess(smiles)
            assert parse_cost(optimal_parse(text, trie)) <= parse_cost(greedy_parse(text, trie))


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "patterns",
        [
            {"ab", "bc", "abc", "c"},
            {"aa", "aaa"},
            {"ab", "ba", "a", "b"},
            {"abcd"},
        ],
    )
    def test_matches_brute_force_on_small_alphabets(self, patterns):
        trie = Trie.from_patterns(patterns)
        for length in range(0, 7):
            for combo in itertools.product("abc", repeat=length):
                text = "".join(combo)
                assert parse_cost(optimal_parse(text, trie)) == brute_force_minimum_cost(
                    text, patterns
                )


class TestGreedyParse:
    def test_greedy_takes_longest_match(self):
        trie = Trie([("a", "1"), ("aa", "2"), ("aaa", "3")])
        steps = greedy_parse("aaaa", trie)
        assert steps[0].pattern == "aaa"
        assert steps[1].pattern == "a"

    def test_greedy_escapes_unknown(self):
        trie = Trie([("a", "1")])
        steps = greedy_parse("ax", trie)
        assert steps[1].symbol is None


@given(st.text(alphabet="abcd", max_size=24),
       st.sets(st.text(alphabet="abcd", min_size=1, max_size=4), min_size=1, max_size=8))
@settings(max_examples=80, deadline=None)
def test_optimal_parse_is_truly_optimal(text, patterns):
    """Property: the DP cost equals the brute-force minimum and covers the input."""
    trie = Trie.from_patterns(patterns)
    steps = optimal_parse(text, trie)
    assert parse_consumes(steps) == len(text)
    assert parse_cost(steps) == brute_force_minimum_cost(text, set(patterns))
