"""Tests for the high-level ZSmilesCodec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import ZSmilesCodec
from repro.core.compressor import ParseStrategy
from repro.dictionary.prepopulation import PrePopulation
from repro.smiles.validate import is_valid


class TestTraining:
    def test_training_report_available(self, trained_codec):
        assert trained_codec.training_report is not None
        assert trained_codec.training_report.selected > 0

    def test_preprocessing_pipeline_configured(self, trained_codec, plain_codec):
        assert any("ring_renumber" in name for name in trained_codec.pipeline.names)
        assert not any("ring_renumber" in name for name in plain_codec.pipeline.names)

    def test_train_with_custom_parameters(self, mixed_corpus_small):
        codec = ZSmilesCodec.train(
            mixed_corpus_small[:100],
            lmax=5,
            max_entries=20,
            prepopulation=PrePopulation.PRINTABLE,
            strategy=ParseStrategy.GREEDY,
        )
        assert codec.table.max_pattern_length <= 5
        assert len(codec.table.trained_entries) <= 20


class TestRoundTrip:
    def test_roundtrip_preprocessed(self, trained_codec, curated_smiles):
        for smiles in curated_smiles:
            compressed = trained_codec.compress(smiles)
            assert trained_codec.decompress(compressed) == trained_codec.preprocess(smiles)

    def test_roundtrip_exact_without_preprocessing(self, plain_codec, curated_smiles):
        for smiles in curated_smiles:
            assert plain_codec.decompress(plain_codec.compress(smiles)) == smiles

    def test_decompressed_output_is_valid_smiles(self, trained_codec, mediate_corpus):
        for smiles in mediate_corpus[:40]:
            out = trained_codec.decompress(trained_codec.compress(smiles))
            assert is_valid(out)

    def test_compress_many_preserves_order(self, trained_codec, gdb_corpus):
        batch = gdb_corpus[:30]
        compressed = trained_codec.compress_many(batch)
        restored = trained_codec.decompress_many(compressed)
        assert restored == [trained_codec.preprocess(s) for s in batch]

    def test_compressed_output_is_single_line(self, trained_codec, mediate_corpus):
        for smiles in mediate_corpus[:40]:
            compressed = trained_codec.compress(smiles)
            assert "\n" not in compressed and "\r" not in compressed

    def test_no_expansion_guarantee(self, trained_codec, exscalate_corpus):
        """With SMILES-alphabet pre-population a record never grows (Section IV-B)."""
        for smiles in exscalate_corpus[:60]:
            prepared = trained_codec.preprocess(smiles)
            assert len(trained_codec.compressor.compress_line(prepared)) <= len(prepared)


class TestEvaluation:
    def test_evaluate_statistics(self, trained_codec, mixed_corpus_small):
        stats = trained_codec.evaluate(mixed_corpus_small[:100])
        assert stats.lines == 100
        assert 0 < stats.compressed_bytes < stats.original_bytes
        assert 0 < stats.ratio < 1
        assert stats.matches > 0
        assert 0 <= stats.escape_fraction < 0.05

    def test_compression_ratio_in_paper_ballpark(self, trained_codec, mixed_corpus_small):
        """The MIXED self-compression ratio should land in the paper's regime (< 0.5)."""
        ratio = trained_codec.compression_ratio(mixed_corpus_small[:150])
        assert 0.2 < ratio < 0.5

    def test_preprocessing_improves_ratio(self, trained_codec, plain_codec, mixed_corpus_small):
        corpus = mixed_corpus_small[:150]
        assert trained_codec.compression_ratio(corpus) <= plain_codec.compression_ratio(corpus)

    def test_evaluate_empty_corpus(self, trained_codec):
        stats = trained_codec.evaluate([])
        assert stats.ratio == 1.0
        assert stats.escape_fraction == 0.0


class TestPersistence:
    def test_dictionary_roundtrip_through_file(self, trained_codec, tmp_path, curated_smiles):
        path = tmp_path / "shared.dct"
        trained_codec.save_dictionary(path)
        restored = ZSmilesCodec.from_dictionary(path, preprocessing=True)
        for smiles in curated_smiles:
            assert restored.decompress(trained_codec.compress(smiles)) == trained_codec.preprocess(
                smiles
            )

    def test_restored_codec_compresses_identically(self, trained_codec, tmp_path, gdb_corpus):
        path = tmp_path / "shared.dct"
        trained_codec.save_dictionary(path)
        restored = ZSmilesCodec.from_dictionary(path, preprocessing=True)
        for smiles in gdb_corpus[:25]:
            assert restored.compress(smiles) == trained_codec.compress(smiles)


@pytest.mark.slow
@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property_on_generated_molecules(seed):
    """Property: compress/decompress is lossless up to preprocessing for any generated molecule."""
    from repro.datasets.exscalate import generator

    codec = _SHARED_PROPERTY_CODEC
    smiles = generator(seed=seed).generate_smiles()
    assert codec.decompress(codec.compress(smiles)) == codec.preprocess(smiles)


# Train one module-level codec for the property test to avoid re-training per example.
from repro.datasets import mixed as _mixed  # noqa: E402

_SHARED_PROPERTY_CODEC = ZSmilesCodec.train(_mixed.generate(200, seed=99), lmax=8)
