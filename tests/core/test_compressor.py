"""Tests for the per-line compressor and decompressor."""

from __future__ import annotations

import pytest

from repro.core.compressor import (
    CompressionRecord,
    Compressor,
    ParseStrategy,
    compression_ratio,
    record_bytes,
)
from repro.core.decompressor import Decompressor
from repro.dictionary.codec_table import CodecTable
from repro.dictionary.prepopulation import PrePopulation
from repro.errors import CompressionError, DecompressionError
from repro.smiles.alphabet import ESCAPE_CHAR


@pytest.fixture()
def small_table() -> CodecTable:
    return CodecTable.from_patterns(
        ["c1ccccc1", "C(=O)", "CC"], prepopulation=PrePopulation.SMILES_ALPHABET
    )


@pytest.fixture()
def compressor(small_table) -> Compressor:
    return Compressor(small_table)


@pytest.fixture()
def decompressor(small_table) -> Decompressor:
    return Decompressor(small_table)


class TestCompressor:
    def test_known_pattern_becomes_one_symbol(self, compressor, small_table):
        out = compressor.compress_line("c1ccccc1")
        assert len(out) == 1
        assert out == small_table.symbol_for("c1ccccc1")

    def test_seeded_characters_never_escaped(self, compressor):
        record = compressor.compress_record("CNOP")
        assert record.escapes == 0
        assert len(record.compressed) <= 4

    def test_unknown_character_escaped(self):
        table = CodecTable.from_patterns([], prepopulation=PrePopulation.NONE)
        compressor = Compressor(table)
        record = compressor.compress_record("C")
        assert record.escapes == 1
        assert record.compressed == ESCAPE_CHAR + "C"

    def test_line_terminator_rejected(self, compressor):
        with pytest.raises(CompressionError):
            compressor.compress_line("CC\nCC")

    def test_empty_line(self, compressor):
        assert compressor.compress_line("") == ""

    def test_record_statistics(self, compressor):
        record = compressor.compress_record("c1ccccc1CC")
        assert record.matches == 2
        assert record.escapes == 0
        assert record.ratio < 1.0

    def test_empty_record_ratio_is_one(self):
        record = CompressionRecord(original="", compressed="", matches=0, escapes=0)
        assert record.ratio == 1.0

    def test_greedy_strategy_supported(self, small_table):
        greedy = Compressor(small_table, strategy=ParseStrategy.GREEDY)
        optimal = Compressor(small_table, strategy=ParseStrategy.OPTIMAL)
        line = "c1ccccc1C(=O)CC"
        assert len(optimal.compress_line(line)) <= len(greedy.compress_line(line))

    def test_strategy_from_name(self):
        assert ParseStrategy.from_name("optimal") is ParseStrategy.OPTIMAL
        assert ParseStrategy.from_name("GREEDY") is ParseStrategy.GREEDY
        with pytest.raises(ValueError):
            ParseStrategy.from_name("magic")

    def test_compress_lines_iterates_lazily(self, compressor):
        out = list(compressor.compress_lines(["CC", "c1ccccc1"]))
        assert len(out) == 2

    def test_no_expansion_with_prepopulation(self, compressor, curated_smiles):
        for smiles in curated_smiles:
            assert len(compressor.compress_line(smiles)) <= len(smiles)

    def test_guaranteed_no_expansion_flag(self, compressor):
        assert compressor.guaranteed_no_expansion("CCO")


class TestGuaranteedNoExpansion:
    """Regression tests for the single-char-coverage predicate.

    The guarantee must reflect *pattern-side* coverage only: a character is
    safe exactly when some single-character dictionary entry produces it.  An
    earlier revision also consulted ``pattern_for(ch)`` — a *symbol*-side
    lookup — conflating the two sides of the table.
    """

    def test_non_prepopulated_table_gives_no_guarantee(self):
        # No identity entries: every character may need the 2-char escape.
        table = CodecTable.from_patterns(
            ["CC", "CO"], prepopulation=PrePopulation.NONE
        )
        compressor = Compressor(table)
        assert not compressor.guaranteed_no_expansion("CCO")
        # ...and the expansion is real: a lone uncovered char doubles.
        assert len(compressor.compress_line("N")) == 2

    def test_trained_single_char_pattern_counts_as_coverage(self):
        # Single-char coverage need not come from pre-population: a trained
        # one-character pattern also costs exactly one output symbol.
        table = CodecTable.from_patterns(["C", "N"], prepopulation=PrePopulation.NONE)
        compressor = Compressor(table)
        assert compressor.guaranteed_no_expansion("CNC")
        assert len(compressor.compress_line("CNC")) <= 3
        assert not compressor.guaranteed_no_expansion("CNO")

    def test_symbol_side_lookup_is_not_coverage(self):
        # '!' is handed out as the first trained symbol under NONE
        # pre-population; being a *symbol* must not count as input coverage.
        table = CodecTable.from_patterns(["CC"], prepopulation=PrePopulation.NONE)
        compressor = Compressor(table)
        symbol = table.symbol_for("CC")
        assert symbol is not None
        assert not compressor.guaranteed_no_expansion(symbol)

    def test_prepopulated_table_guarantees_smiles_lines(self, compressor, curated_smiles):
        for smiles in curated_smiles:
            assert compressor.guaranteed_no_expansion(smiles)
            assert len(compressor.compress_line(smiles)) <= len(smiles)


class TestDecompressor:
    def test_roundtrip(self, compressor, decompressor, curated_smiles):
        for smiles in curated_smiles:
            assert decompressor.decompress_line(compressor.compress_line(smiles)) == smiles

    def test_escape_roundtrip(self):
        table = CodecTable.from_patterns([], prepopulation=PrePopulation.NONE)
        compressor = Compressor(table)
        decompressor = Decompressor(table)
        assert decompressor.decompress_line(compressor.compress_line("CCO")) == "CCO"

    def test_unknown_symbol_rejected(self, decompressor):
        with pytest.raises(DecompressionError):
            decompressor.decompress_line("ÿþ")

    def test_dangling_escape_rejected(self, decompressor):
        with pytest.raises(DecompressionError):
            decompressor.decompress_line("C" + ESCAPE_CHAR)

    def test_line_terminator_rejected(self, decompressor):
        with pytest.raises(DecompressionError):
            decompressor.decompress_line("C\nC")

    def test_decompress_all(self, compressor, decompressor):
        lines = ["CC", "c1ccccc1", "C(=O)O"]
        compressed = compressor.compress_all(lines)
        assert decompressor.decompress_all(compressed) == lines


class TestCompressionRatio:
    def test_record_bytes_counts_characters(self):
        assert record_bytes("abc") == 3
        assert record_bytes("abé") == 3  # extended symbols are one byte on disk

    def test_ratio_basic(self):
        assert compression_ratio(["aaaa"], ["aa"]) == pytest.approx(3 / 5)

    def test_ratio_empty_corpus(self):
        assert compression_ratio([], []) == 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(["a"], [])
