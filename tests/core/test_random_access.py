"""Tests for the random-access line index and reader."""

from __future__ import annotations

import pytest

from repro.core.random_access import INDEX_SUFFIX, LineIndex, RandomAccessReader
from repro.core.streaming import compress_file, write_lines
from repro.errors import RandomAccessError


@pytest.fixture()
def compressed_library(tmp_path, trained_codec, mixed_corpus_small):
    smi = tmp_path / "library.smi"
    zsmi = tmp_path / "library.zsmi"
    corpus = mixed_corpus_small[:100]
    write_lines(smi, corpus)
    compress_file(trained_codec, smi, zsmi)
    return zsmi, corpus


class TestLineIndex:
    def test_build_counts_lines(self, compressed_library):
        zsmi, corpus = compressed_library
        index = LineIndex.build(zsmi)
        assert index.line_count == len(corpus)

    def test_offsets_monotonic_and_end_at_file_size(self, compressed_library):
        zsmi, _ = compressed_library
        index = LineIndex.build(zsmi)
        assert index.offsets[0] == 0
        assert all(a < b for a, b in zip(index.offsets, index.offsets[1:]))
        assert index.offsets[-1] == zsmi.stat().st_size

    def test_span_out_of_range(self, compressed_library):
        zsmi, corpus = compressed_library
        index = LineIndex.build(zsmi)
        with pytest.raises(RandomAccessError):
            index.span(len(corpus))
        with pytest.raises(RandomAccessError):
            index.span(-1)

    def test_save_load_roundtrip(self, compressed_library, tmp_path):
        zsmi, _ = compressed_library
        index = LineIndex.build(zsmi)
        path = tmp_path / "library.idx"
        index.save(path)
        restored = LineIndex.load(path)
        assert restored.offsets == index.offsets

    def test_default_path_appends_suffix(self):
        assert str(LineIndex.default_path("data/lib.zsmi")).endswith(".zsmi" + INDEX_SUFFIX)

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.idx"
        bad.write_text("# header\nnot-a-number\n")
        with pytest.raises(RandomAccessError):
            LineIndex.load(bad)

    def test_load_rejects_non_monotonic(self, tmp_path):
        bad = tmp_path / "bad2.idx"
        bad.write_text("0\n10\n5\n")
        with pytest.raises(RandomAccessError):
            LineIndex.load(bad)

    def test_load_rejects_missing_zero(self, tmp_path):
        bad = tmp_path / "bad3.idx"
        bad.write_text("3\n10\n")
        with pytest.raises(RandomAccessError):
            LineIndex.load(bad)


class TestRandomAccessReader:
    def test_single_record_fetch_matches_sequential(self, compressed_library, trained_codec):
        zsmi, corpus = compressed_library
        with RandomAccessReader(zsmi, codec=trained_codec) as reader:
            for line_no in (0, 7, 42, len(corpus) - 1):
                assert reader.line(line_no) == trained_codec.preprocess(corpus[line_no])

    def test_raw_line_returns_compressed_text(self, compressed_library, trained_codec):
        zsmi, corpus = compressed_library
        with RandomAccessReader(zsmi, codec=trained_codec) as reader:
            raw = reader.raw_line(3)
            assert trained_codec.decompress(raw) == trained_codec.preprocess(corpus[3])

    def test_reader_without_codec_returns_stored_text(self, compressed_library):
        zsmi, _ = compressed_library
        with RandomAccessReader(zsmi) as reader:
            assert reader.raw_line(0) == reader.line(0)

    def test_getitem_and_len(self, compressed_library, trained_codec):
        zsmi, corpus = compressed_library
        with RandomAccessReader(zsmi, codec=trained_codec) as reader:
            assert len(reader) == len(corpus)
            assert reader[5] == trained_codec.preprocess(corpus[5])

    def test_lines_preserves_request_order(self, compressed_library, trained_codec):
        zsmi, corpus = compressed_library
        with RandomAccessReader(zsmi, codec=trained_codec) as reader:
            got = reader.lines([9, 2, 30])
            assert got == [trained_codec.preprocess(corpus[i]) for i in (9, 2, 30)]

    def test_slice(self, compressed_library, trained_codec):
        zsmi, corpus = compressed_library
        with RandomAccessReader(zsmi, codec=trained_codec) as reader:
            got = reader.slice(10, 15)
            assert got == [trained_codec.preprocess(s) for s in corpus[10:15]]

    def test_slice_clamps_to_length(self, compressed_library, trained_codec):
        zsmi, corpus = compressed_library
        with RandomAccessReader(zsmi, codec=trained_codec) as reader:
            assert len(reader.slice(len(corpus) - 2, len(corpus) + 10)) == 2

    def test_invalid_slice_rejected(self, compressed_library):
        zsmi, _ = compressed_library
        with RandomAccessReader(zsmi) as reader:
            with pytest.raises(RandomAccessError):
                reader.slice(5, 2)

    def test_iter_all_matches_corpus(self, compressed_library, trained_codec):
        zsmi, corpus = compressed_library
        with RandomAccessReader(zsmi, codec=trained_codec) as reader:
            assert list(reader.iter_all()) == [trained_codec.preprocess(s) for s in corpus]

    def test_prebuilt_index_reused(self, compressed_library, trained_codec):
        zsmi, corpus = compressed_library
        index = LineIndex.build(zsmi)
        with RandomAccessReader(zsmi, index=index, codec=trained_codec) as reader:
            assert reader.line(1) == trained_codec.preprocess(corpus[1])

    def test_close_is_idempotent(self, compressed_library):
        zsmi, _ = compressed_library
        reader = RandomAccessReader(zsmi)
        reader.open()
        reader.close()
        reader.close()


class TestLineIndexLoadEdgeCases:
    """Malformed persisted-index inputs (the flat fallback must fail loudly)."""

    def test_load_rejects_empty_file(self, tmp_path):
        empty = tmp_path / "empty.idx"
        empty.write_text("")
        with pytest.raises(RandomAccessError):
            LineIndex.load(empty)

    def test_load_rejects_comment_only_file(self, tmp_path):
        bad = tmp_path / "comments.idx"
        bad.write_text("# header\n# another comment\n")
        with pytest.raises(RandomAccessError):
            LineIndex.load(bad)

    def test_load_rejects_float_offsets(self, tmp_path):
        bad = tmp_path / "float.idx"
        bad.write_text("0\n1.5\n3\n")
        with pytest.raises(RandomAccessError):
            LineIndex.load(bad)

    def test_load_accepts_equal_consecutive_offsets(self, tmp_path):
        # Zero-length records (bare newlines) produce non-strict monotonicity.
        path = tmp_path / "flat.idx"
        path.write_text("0\n5\n5\n9\n")
        index = LineIndex.load(path)
        assert index.line_count == 3
        assert index.span(1) == (5, 5)

    def test_load_skips_blank_and_comment_lines(self, tmp_path):
        path = tmp_path / "gaps.idx"
        path.write_text("# header\n0\n\n4\n# trailing comment\n9\n")
        assert LineIndex.load(path).offsets == [0, 4, 9]

    def test_empty_file_index_has_zero_lines(self, tmp_path):
        data = tmp_path / "empty.smi"
        data.write_text("")
        index = LineIndex.build(data)
        assert index.line_count == 0
        with pytest.raises(RandomAccessError):
            index.span(0)


class TestReaderEdgeCases:
    def test_crlf_records_are_stripped(self, tmp_path):
        data = tmp_path / "crlf.smi"
        data.write_bytes(b"CCO\r\nc1ccccc1\r\nC\r\n")
        with RandomAccessReader(data) as reader:
            assert len(reader) == 3
            assert reader.line(0) == "CCO"
            assert reader.line(1) == "c1ccccc1"
            assert reader.line(2) == "C"

    def test_final_record_without_newline(self, tmp_path):
        data = tmp_path / "nonl.smi"
        data.write_bytes(b"CCO\nC")
        with RandomAccessReader(data) as reader:
            assert len(reader) == 2
            assert reader.line(1) == "C"

    def test_lines_with_out_of_order_and_duplicate_indices(self, compressed_library,
                                                           trained_codec):
        zsmi, corpus = compressed_library
        with RandomAccessReader(zsmi, codec=trained_codec) as reader:
            got = reader.lines([50, 0, 50, 99, 0])
            want = [trained_codec.preprocess(corpus[i]) for i in (50, 0, 50, 99, 0)]
            assert got == want

    def test_slice_fully_past_end_is_empty(self, compressed_library):
        zsmi, corpus = compressed_library
        with RandomAccessReader(zsmi) as reader:
            assert reader.slice(len(corpus), len(corpus) + 5) == []

    def test_empty_slice_at_zero(self, compressed_library):
        zsmi, _ = compressed_library
        with RandomAccessReader(zsmi) as reader:
            assert reader.slice(0, 0) == []

    def test_reader_reuse_after_close(self, compressed_library, trained_codec):
        zsmi, corpus = compressed_library
        reader = RandomAccessReader(zsmi, codec=trained_codec)
        first = reader.line(0)
        reader.close()
        # A closed reader transparently reopens on the next access.
        assert reader.line(0) == first
        reader.close()

    def test_get_aliases_match_line_api(self, compressed_library, trained_codec):
        zsmi, corpus = compressed_library
        with RandomAccessReader(zsmi, codec=trained_codec) as reader:
            assert reader.get(4) == reader.line(4)
            assert reader.get_many([7, 1]) == reader.lines([7, 1])
