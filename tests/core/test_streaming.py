"""Tests for file-level streaming compression (.smi ↔ .zsmi)."""

from __future__ import annotations

import pytest

from repro.core.streaming import (
    FILE_ENCODING,
    compress_file,
    decompress_file,
    read_lines,
    verify_separability,
    write_lines,
)
from repro.errors import CodecError


@pytest.fixture()
def smi_file(tmp_path, mixed_corpus_small):
    path = tmp_path / "library.smi"
    write_lines(path, mixed_corpus_small[:120])
    return path


class TestLineIO:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "x.smi"
        count = write_lines(path, ["CC", "CCO"])
        assert count == 2
        assert list(read_lines(path)) == ["CC", "CCO"]

    def test_read_strips_terminators(self, tmp_path):
        path = tmp_path / "crlf.smi"
        path.write_bytes(b"CC\r\nCCO\r\n")
        assert list(read_lines(path)) == ["CC", "CCO"]


class TestCompressFile:
    def test_compress_decompress_roundtrip(self, smi_file, trained_codec, tmp_path):
        zsmi = tmp_path / "library.zsmi"
        out = tmp_path / "restored.smi"
        comp_stats = compress_file(trained_codec, smi_file, zsmi)
        decomp_stats = decompress_file(trained_codec, zsmi, out)
        originals = list(read_lines(smi_file))
        restored = list(read_lines(out))
        assert comp_stats.lines == decomp_stats.lines == len(originals)
        assert restored == [trained_codec.preprocess(s) for s in originals]

    def test_compression_reduces_file_size(self, smi_file, trained_codec, tmp_path):
        zsmi = tmp_path / "library.zsmi"
        stats = compress_file(trained_codec, smi_file, zsmi)
        assert stats.output_bytes < stats.input_bytes
        assert 0 < stats.ratio < 1
        assert zsmi.stat().st_size == stats.output_bytes

    def test_line_separability_preserved(self, smi_file, trained_codec, tmp_path):
        """One compressed record per line, same line numbers — the random-access contract."""
        zsmi = tmp_path / "library.zsmi"
        stats = compress_file(trained_codec, smi_file, zsmi)
        assert verify_separability(zsmi, expected_lines=stats.lines)
        originals = list(read_lines(smi_file))
        compressed = list(read_lines(zsmi))
        assert len(compressed) == len(originals)
        for i in (0, 5, 50, len(originals) - 1):
            assert trained_codec.decompress(compressed[i]) == trained_codec.preprocess(
                originals[i]
            )

    def test_default_output_suffix(self, smi_file, trained_codec):
        stats = compress_file(trained_codec, smi_file)
        assert stats.output_path.suffix == ".zsmi"
        assert stats.output_path.exists()

    def test_exact_roundtrip_without_preprocessing(self, smi_file, plain_codec, tmp_path):
        zsmi = tmp_path / "plain.zsmi"
        out = tmp_path / "plain_restored.smi"
        compress_file(plain_codec, smi_file, zsmi)
        decompress_file(plain_codec, zsmi, out)
        assert list(read_lines(out)) == list(read_lines(smi_file))

    def test_progress_callback_invoked_on_large_runs(self, tmp_path, plain_codec):
        # 100k-record threshold is impractical here; just verify the callback
        # plumbing accepts a callable without being invoked for small files.
        path = tmp_path / "small.smi"
        write_lines(path, ["CC"] * 5)
        calls = []
        compress_file(plain_codec, path, tmp_path / "small.zsmi", progress=calls.append)
        assert calls == []

    def test_transform_guard_rejects_newlines(self, tmp_path, plain_codec):
        from repro.core.streaming import _transform_file

        path = tmp_path / "in.smi"
        write_lines(path, ["CC"])
        with pytest.raises(CodecError):
            _transform_file(path, tmp_path / "out", lambda s: s + "\n")

    def test_file_encoding_is_single_byte(self, smi_file, trained_codec, tmp_path):
        """Compressed files must store every symbol as one byte (Latin-1)."""
        zsmi = tmp_path / "library.zsmi"
        compress_file(trained_codec, smi_file, zsmi)
        text = zsmi.read_text(encoding=FILE_ENCODING)
        raw = zsmi.read_bytes()
        assert len(text) == len(raw)
