"""The degraded-read guarantee.

One corrupt block of an N-block shard must leave every record outside that
block readable locally, and *all* records readable through a failover
client backed by a clean replica.  Quarantine counters surface everywhere
the stats do: reader, library, the server's ``/stats`` payload, and
``zsmiles query --verbose``.
"""

from __future__ import annotations

import shutil

import pytest

from repro.cli import main as cli_main
from repro.engine import ZSmilesEngine
from repro.errors import BlockCorruptionError
from repro.library import CorpusLibrary, pack_library
from repro.server import BackgroundServer, CorpusClient, FailoverCorpusClient
from repro.store import ShardReader, pack_records
from repro.store.format import read_footer

RECORDS_PER_BLOCK = 8


@pytest.fixture(scope="module")
def corpus(mixed_corpus_small):
    return mixed_corpus_small[:120]


@pytest.fixture(scope="module")
def engine(plain_codec):
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as eng:
        yield eng


@pytest.fixture(scope="module")
def pristine_library(tmp_path_factory, corpus, engine):
    directory = tmp_path_factory.mktemp("degraded_lib") / "corpus.library"
    pack_library(directory, corpus, engine, shards=3, records_per_block=RECORDS_PER_BLOCK)
    return directory


def _corrupt_block(shard, block_number):
    """Flip a byte in the middle of one block's payload."""
    with open(shard, "rb") as handle:
        block = read_footer(handle).blocks[block_number]
    data = bytearray(shard.read_bytes())
    data[block.offset + block.length // 2] ^= 0xFF
    shard.write_bytes(bytes(data))
    return block


@pytest.fixture()
def damaged_shard(tmp_path, corpus, engine):
    """A 5-block single shard with block 2 corrupted."""
    path = tmp_path / "damaged.zss"
    pack_records(path, corpus[:40], engine, records_per_block=RECORDS_PER_BLOCK)
    _corrupt_block(path, 2)
    return path


@pytest.fixture()
def damaged_library(pristine_library, tmp_path):
    """A 3-shard library copy with block 1 of the first shard corrupted."""
    target = tmp_path / "damaged.library"
    shutil.copytree(pristine_library, target)
    _corrupt_block(sorted(target.glob("*.zss"))[0], 1)
    return target


class TestLocalDegradedReads:
    def test_every_record_outside_the_bad_block_reads(
        self, damaged_shard, corpus
    ):
        bad = range(2 * RECORDS_PER_BLOCK, 3 * RECORDS_PER_BLOCK)
        with ShardReader(damaged_shard) as reader:
            for index in range(40):
                if index in bad:
                    with pytest.raises(BlockCorruptionError) as excinfo:
                        reader.get(index)
                    assert excinfo.value.block == 2
                    assert str(damaged_shard) in str(excinfo.value.shard_path)
                else:
                    assert reader.get(index) == corpus[index]
            stats = reader.quarantine_stats()
            assert stats["quarantined_blocks"] == 1
            # 8 bad reads: the first quarantines, the rest fail fast.
            assert stats["quarantine_hits"] == RECORDS_PER_BLOCK - 1

    def test_library_facade_serves_around_the_bad_block(
        self, damaged_library, corpus
    ):
        with CorpusLibrary.open(damaged_library) as library:
            served, refused = 0, 0
            for index in range(len(corpus)):
                try:
                    assert library.get(index) == corpus[index]
                    served += 1
                except BlockCorruptionError:
                    refused += 1
            assert refused == RECORDS_PER_BLOCK
            assert served == len(corpus) - RECORDS_PER_BLOCK
            stats = library.quarantine_stats()
            assert stats["quarantined_blocks"] == 1
            assert stats["quarantine_hits"] == RECORDS_PER_BLOCK - 1
            assert list(stats["shards"].values()) == [[1]]


class TestFailoverHealsDegradedReads:
    def test_all_records_readable_via_failover_to_clean_replica(
        self, damaged_library, pristine_library, corpus
    ):
        with BackgroundServer(damaged_library, readers=2) as shaky:
            with BackgroundServer(pristine_library, readers=2) as clean:
                with FailoverCorpusClient(
                    [shaky.url, clean.url], timeout=10.0
                ) as client:
                    # Every record — including the quarantined block's —
                    # arrives byte-identical: reads of the bad range fail
                    # over to the replica holding clean bytes.
                    assert [client.get(i) for i in range(len(corpus))] == corpus
                    assert list(client.iter_range(0, len(corpus))) == corpus

    def test_direct_client_gets_typed_corruption_error(self, damaged_library):
        with BackgroundServer(damaged_library, readers=2) as server:
            with CorpusClient(server.url, timeout=10.0) as client:
                with pytest.raises(BlockCorruptionError):
                    client.get(1 * RECORDS_PER_BLOCK)  # inside the bad block

    def test_quarantine_counters_surface_in_stats_payload(
        self, damaged_library
    ):
        with BackgroundServer(damaged_library, readers=2) as server:
            with CorpusClient(server.url, timeout=10.0) as client:
                with pytest.raises(BlockCorruptionError):
                    client.get(1 * RECORDS_PER_BLOCK)
                quarantine = client.stats()["quarantine"]
                assert quarantine["quarantined_blocks"] == 1
                assert quarantine["shards"]
                # Fail-fast hits count up as the bad block keeps being asked.
                with pytest.raises(BlockCorruptionError):
                    client.get(1 * RECORDS_PER_BLOCK + 1)
                assert client.stats()["quarantine"]["quarantine_hits"] >= 1


class TestCliSurface:
    def test_query_verbose_reports_quarantine_counters(
        self, damaged_library, corpus, capsys
    ):
        # Reads outside the bad block succeed; --verbose surfaces the
        # (empty, so far) quarantine alongside the cache counters.
        exit_code = cli_main(
            ["query", str(damaged_library), "40", "41", "--verbose"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.splitlines() == [corpus[40], corpus[41]]
        assert "quarantine: 0 blocks, 0 hits" in captured.err

    def test_query_of_corrupt_block_raises_typed_error(self, damaged_library):
        with pytest.raises(BlockCorruptionError):
            cli_main(["query", str(damaged_library), str(RECORDS_PER_BLOCK)])

    def test_fsck_cli_detects_and_repairs(
        self, damaged_library, pristine_library, capsys
    ):
        assert cli_main(["fsck", str(damaged_library)]) == 1
        assert "CORRUPT" in capsys.readouterr().out
        assert (
            cli_main(
                [
                    "fsck",
                    str(damaged_library),
                    "--repair",
                    "--replica",
                    str(pristine_library),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "repaired" in captured.out
        assert "clean" in captured.out
        assert cli_main(["fsck", str(damaged_library)]) == 0
