"""Property: no single-byte flip of a packed ``.zss`` is ever *silent*.

For every byte offset and bit, flipping that bit on a tmp copy (golden
fixtures stay untouched) must yield exactly one of:

* byte-identical records on full readback (the flip hit bytes the format
  never trusts blindly — impossible for payload/footer, but the property
  does not care *where* it hit), or
* a typed :class:`~repro.errors.ReproError` (``StoreFormatError``,
  ``BlockCorruptionError``, …) at open or read time.

Silent corruption (wrong records, no error) and untyped crashes are the
two forbidden outcomes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import ZSmilesEngine
from repro.errors import ReproError
from repro.store import ShardReader, pack_records


@pytest.fixture(scope="module")
def packed(tmp_path_factory, plain_codec, mixed_corpus_small):
    """One small shard packed once; (path, corpus, raw bytes, scratch path)."""
    directory = tmp_path_factory.mktemp("flip_property")
    corpus = mixed_corpus_small[:40]
    path = directory / "pristine.zss"
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
        pack_records(path, corpus, engine, records_per_block=8)
    return corpus, path.read_bytes(), directory / "flipped.zss"


@given(data=st.data())
@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_single_byte_flip_is_detected_or_harmless(packed, data):
    corpus, pristine, scratch = packed
    offset = data.draw(st.integers(min_value=0, max_value=len(pristine) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))

    mutated = bytearray(pristine)
    mutated[offset] ^= 1 << bit
    scratch.write_bytes(bytes(mutated))

    try:
        with ShardReader(scratch) as reader:
            readback = [reader.get(i) for i in range(len(corpus))]
    except ReproError:
        return  # typed detection: the acceptable failure mode
    # No error raised: the flip must have been harmless — any divergence
    # here would be silent corruption, the one forbidden outcome.
    assert readback == corpus, (
        f"silent corruption: flip at offset {offset} bit {bit} changed "
        "records without raising a typed error"
    )


@given(data=st.data())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_truncation_is_detected_or_harmless(packed, data):
    corpus, pristine, scratch = packed
    size = data.draw(st.integers(min_value=0, max_value=len(pristine) - 1))
    scratch.write_bytes(pristine[:size])
    try:
        with ShardReader(scratch) as reader:
            readback = [reader.get(i) for i in range(len(corpus))]
    except ReproError:
        return
    assert readback == corpus, (
        f"silent corruption: truncation to {size} bytes changed records "
        "without raising a typed error"
    )
