"""Serving hardening: mmap parity, configurable cache bounds, concurrent reads.

These suites guard the serving path underneath ``repro.library``: the mmap
block reads must be byte-identical to the handle path, the LRU capacity must
honor whatever bound the constructor (and ``cli query --cache-blocks``)
configures, and one ``CorpusStore`` hammered from many threads must serve
exactly what serial reads serve — the invariant the async layer builds on.
"""

from __future__ import annotations

import io
import threading

import pytest

from repro.engine import ZSmilesEngine
from repro.errors import StoreError
from repro.store import BlockCache, CorpusStore, ShardReader, pack_records


@pytest.fixture(scope="module")
def packed(tmp_path_factory, plain_codec, mixed_corpus_small):
    """A .zss shard of 96 records, 8 per block (12 blocks)."""
    directory = tmp_path_factory.mktemp("serving")
    corpus = mixed_corpus_small[:96]
    path = directory / "serving.zss"
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
        pack_records(path, corpus, engine, records_per_block=8)
    return path, corpus


class TestMmapReads:
    def test_byte_identical_to_handle_path(self, packed):
        path, corpus = packed
        with ShardReader(path) as plain, ShardReader(path, use_mmap=True) as mapped:
            assert list(mapped.iter_all()) == list(plain.iter_all()) == corpus
            for index in (0, 7, 8, 50, 95):
                assert mapped.get(index) == plain.get(index)
                assert mapped.get_raw(index) == plain.get_raw(index)

    def test_counters_track_mmap_reads(self, packed):
        path, _ = packed
        with ShardReader(path, use_mmap=True) as reader:
            reader.get(20)
            assert reader.blocks_decoded == 1
            assert reader.bytes_read == reader.footer.blocks[2].length

    def test_mmap_reopens_after_close(self, packed):
        path, corpus = packed
        reader = ShardReader(path, use_mmap=True)
        reader.get(3)
        reader.close()
        assert reader.get(90) == corpus[90]
        reader.close()

    def test_mmap_through_corpus_store(self, packed):
        path, corpus = packed
        with CorpusStore(path, use_mmap=True) as store:
            assert store.get_many(range(len(corpus))) == corpus

    def test_mmap_requires_real_file(self, packed):
        path, _ = packed
        buffer = io.BytesIO(path.read_bytes())
        with pytest.raises(StoreError, match="real file"):
            ShardReader(buffer, use_mmap=True)


class TestConfigurableCacheBound:
    @pytest.mark.parametrize("capacity", [1, 2, 5])
    def test_eviction_honors_configured_bound(self, packed, capacity):
        """Touch every block; the cache never holds more than its capacity."""
        path, corpus = packed
        with ShardReader(path, cache_blocks=capacity) as reader:
            for index in range(len(corpus)):
                assert reader.get(index) == corpus[index]
                assert len(reader._cache) <= capacity
            assert len(reader._cache) == min(capacity, reader.block_count)
            # Every block beyond the retained window was evicted and must be
            # decoded again on revisit.
            decoded = reader.blocks_decoded
            assert reader.get(0) == corpus[0]
            assert reader.blocks_decoded == decoded + (
                0 if capacity >= reader.block_count else 1
            )

    def test_corpus_store_passes_capacity_down(self, packed):
        path, _ = packed
        with CorpusStore(path, cache_blocks=3) as store:
            assert store.shards[0]._cache.capacity == 3

    def test_block_cache_rejects_zero_capacity(self):
        from repro.errors import StoreFormatError

        with pytest.raises(StoreFormatError):
            BlockCache(0)


class TestCacheCounters:
    """Hit/miss surfacing: the numbers ``/stats`` and ``query --verbose`` report."""

    def test_block_cache_stats_snapshot(self):
        cache = BlockCache(2)
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "capacity": 2,
            "cached_blocks": 0,
            "evictions": 0,
            "hit_rate": 0.0,
        }
        assert cache.get("a") is None
        cache.put("a", ["x"])
        assert cache.get("a") == ["x"]
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "capacity": 2,
            "cached_blocks": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_cache_view_reports_shared_aggregates(self):
        from repro.store import BlockCacheView

        shared = BlockCache(4)
        view_a = BlockCacheView(shared, "a")
        view_b = BlockCacheView(shared, "b")
        view_a.put(0, ["ra"])
        assert view_a.get(0) == ["ra"]
        assert view_b.get(0) is None  # namespaced: b's block 0 is not a's
        assert view_a.stats() == view_b.stats() == shared.stats()
        assert shared.stats()["hits"] == 1 and shared.stats()["misses"] == 1

    def test_shard_reader_counts_hits_and_misses(self, packed):
        path, corpus = packed
        with ShardReader(path, cache_blocks=4) as reader:
            assert reader.cache_hits == 0 and reader.cache_misses == 0
            reader.get(0)  # cold: miss
            reader.get(1)  # same block: hit
            reader.get(8)  # next block: miss
            assert reader.cache_misses == 2
            assert reader.cache_hits == 1
            assert reader.cache_stats()["cached_blocks"] == 2

    def test_library_surfaces_shared_cache_counters(self, packed, plain_codec, tmp_path):
        from repro.library import CorpusLibrary, pack_library

        _, corpus = packed
        directory = tmp_path / "counters.library"
        with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
            pack_library(directory, corpus, engine, shards=2, records_per_block=8)
        with CorpusLibrary.open(directory) as library:
            library.get(0)   # cold block in shard 0: miss
            library.get(1)   # same block: hit
            library.get(90)  # cold block in shard 1: miss (same shared cache)
            stats = library.cache_stats()
            assert stats["misses"] == library.cache_misses == 2
            assert stats["hits"] == library.cache_hits == 1
            assert stats["cached_blocks"] == 2


class TestConcurrentReads:
    def test_threads_match_serial_reads(self, packed):
        """Hammer ONE CorpusStore from many threads; results must equal serial.

        A tiny cache forces constant eviction/refill while every thread seeks
        on the same file handle — the exact races the reader's I/O lock and
        the thread-safe BlockCache exist to prevent.
        """
        path, corpus = packed
        store = CorpusStore(path, cache_blocks=2)
        serial = [store.get(i) for i in range(len(corpus))]
        assert serial == corpus

        workers = 8
        rounds = 4
        errors: list = []
        results: list = [None] * workers

        def hammer(worker: int) -> None:
            try:
                mine = []
                for round_no in range(rounds):
                    # Offset stride per worker: all threads walk all records
                    # but in different orders, maximizing cache contention.
                    for step in range(len(corpus)):
                        index = (step * (worker + 1) + round_no) % len(corpus)
                        mine.append((index, store.get(index)))
                results[worker] = mine
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        store.close()

        assert not errors, errors
        for mine in results:
            assert mine is not None
            for index, record in mine:
                assert record == serial[index]

    def test_threads_match_serial_reads_mmap(self, packed):
        path, corpus = packed
        store = CorpusStore(path, cache_blocks=1, use_mmap=True)
        try:
            errors: list = []

            def hammer(offset: int) -> None:
                try:
                    for step in range(len(corpus)):
                        index = (step + offset * 13) % len(corpus)
                        assert store.get(index) == corpus[index]
                except Exception as exc:  # pragma: no cover - failure reporting
                    errors.append(exc)

            threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors
        finally:
            store.close()

    def test_get_many_under_concurrency(self, packed):
        path, corpus = packed
        indices = [(i * 7) % len(corpus) for i in range(256)]
        expected = [corpus[i] for i in indices]
        store = CorpusStore(path, cache_blocks=2)
        try:
            outcomes: list = [None] * 4

            def fetch(slot: int) -> None:
                outcomes[slot] = store.get_many(indices)

            threads = [threading.Thread(target=fetch, args=(s,)) for s in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(outcome == expected for outcome in outcomes)
        finally:
            store.close()
