"""``sample(n, seed)`` across every local reader tier.

The protocol contract: every :class:`~repro.store.RecordReader` draws with
``random.Random(seed).sample(range(total), min(n, total))``, sorted —
exactly the semantics of the server's ``GET /records:sample`` — so a
campaign (or any consumer) sampling through ``open_reader`` gets the same
records whether the corpus is a flat file, one shard, a sharded library or
an HTTP replica list.
"""

from __future__ import annotations

import random

import pytest

from repro.core.random_access import LineIndex, RandomAccessReader
from repro.engine import ZSmilesEngine
from repro.errors import RandomAccessError
from repro.library import CorpusLibrary, pack_library
from repro.store import CorpusStore, pack_records


def expected_draw(total: int, n: int, seed) -> list[int]:
    return sorted(random.Random(seed).sample(range(total), min(n, total)))


@pytest.fixture(scope="module")
def corpus(mixed_corpus_small):
    return mixed_corpus_small[:90]


@pytest.fixture(scope="module")
def flat_reader(tmp_path_factory, corpus):
    path = tmp_path_factory.mktemp("sample_flat") / "corpus.smi"
    path.write_text("\n".join(corpus) + "\n", encoding="utf-8")
    LineIndex.build(path).save(path.with_suffix(".zsx"))
    with RandomAccessReader(path) as reader:
        yield reader


@pytest.fixture(scope="module")
def store_reader(tmp_path_factory, corpus, plain_codec):
    path = tmp_path_factory.mktemp("sample_store") / "corpus.zss"
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
        pack_records(path, corpus, engine, records_per_block=8)
    with CorpusStore(path) as store:
        yield store


@pytest.fixture(scope="module")
def library_reader(tmp_path_factory, corpus, plain_codec):
    directory = tmp_path_factory.mktemp("sample_lib") / "corpus.library"
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
        pack_library(directory, corpus, engine, shards=3, records_per_block=8)
    with CorpusLibrary.open(directory) as library:
        yield library


READERS = ["flat_reader", "store_reader", "library_reader"]


@pytest.mark.parametrize("reader_fixture", READERS)
class TestSampleContract:
    @pytest.fixture()
    def reader(self, reader_fixture, request):
        return request.getfixturevalue(reader_fixture)

    def test_indices_follow_the_shared_semantics(self, reader, corpus):
        indices, records = reader.sample(10, seed=42)
        assert indices == expected_draw(len(corpus), 10, 42)
        assert records == [corpus[i] for i in indices]

    def test_seeded_draws_repeat(self, reader):
        assert reader.sample(7, seed=9) == reader.sample(7, seed=9)

    def test_different_seeds_differ(self, reader):
        assert reader.sample(7, seed=1) != reader.sample(7, seed=2)

    def test_n_clamped_to_total(self, reader, corpus):
        indices, records = reader.sample(10_000, seed=0)
        assert indices == list(range(len(corpus)))
        assert records == list(corpus)

    def test_zero_sample_empty(self, reader):
        assert reader.sample(0, seed=3) == ([], [])

    def test_negative_n_rejected(self, reader):
        with pytest.raises(RandomAccessError, match=">= 0"):
            reader.sample(-1, seed=0)

    def test_unseeded_draw_is_valid(self, reader, corpus):
        indices, records = reader.sample(5)
        assert len(indices) == len(records) == 5
        assert indices == sorted(indices)
        assert records == [corpus[i] for i in indices]


class TestCrossTierParity:
    def test_every_tier_draws_the_same_records(
        self, flat_reader, store_reader, library_reader
    ):
        draws = {
            name: reader.sample(12, seed=77)
            for name, reader in [
                ("flat", flat_reader),
                ("store", store_reader),
                ("library", library_reader),
            ]
        }
        assert draws["flat"] == draws["store"] == draws["library"]
