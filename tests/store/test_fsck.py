"""``zsmiles fsck``: scrubbing every layout, and both repair paths.

Each issue kind has a dedicated forgery; repairs pin their respective
guarantees — replica restoration is *byte*-identical, source re-pack is
*content*-identical with a refreshed manifest.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.engine import ZSmilesEngine
from repro.errors import StoreError
from repro.library import CorpusLibrary, pack_library
from repro.store import ShardReader, fsck_path, pack_records, repair_path
from repro.store.format import TRAILER_SIZE, read_footer


@pytest.fixture(scope="module")
def corpus(mixed_corpus_small):
    return mixed_corpus_small[:120]


@pytest.fixture(scope="module")
def engine(plain_codec):
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as eng:
        yield eng


@pytest.fixture(scope="module")
def pristine_library(tmp_path_factory, corpus, engine):
    directory = tmp_path_factory.mktemp("fsck_lib") / "corpus.library"
    pack_library(directory, corpus, engine, shards=3, records_per_block=8)
    return directory


@pytest.fixture(scope="module")
def source_smi(tmp_path_factory, corpus):
    path = tmp_path_factory.mktemp("fsck_src") / "corpus.smi"
    path.write_text("\n".join(corpus) + "\n", encoding="utf-8")
    return path


@pytest.fixture()
def library_copy(pristine_library, tmp_path):
    target = tmp_path / "scratch.library"
    shutil.copytree(pristine_library, target)
    return target


def _first_shard(library):
    return sorted(library.glob("*.zss"))[0]


def _flip_payload_byte(shard, block_number=0):
    """Corrupt one byte inside a block payload (CRC must catch it)."""
    with open(shard, "rb") as handle:
        block = read_footer(handle).blocks[block_number]
    data = bytearray(shard.read_bytes())
    data[block.offset + block.length // 2] ^= 0xFF
    shard.write_bytes(bytes(data))


class TestScrubLayouts:
    def test_golden_fixture_store_is_clean(self):
        report = fsck_path("tests/fixtures/corpus.zss")
        assert report.clean
        assert report.layout == "shard"
        assert report.shards_checked == 1
        assert report.blocks_checked > 0

    def test_pristine_library_is_clean(self, pristine_library, corpus):
        report = fsck_path(pristine_library)
        assert report.clean
        assert report.layout == "library"
        assert report.shards_checked == 3
        assert report.records_declared == len(corpus)
        assert "clean" in report.summary()

    def test_manifest_path_and_directory_are_equivalent(self, pristine_library):
        by_dir = fsck_path(pristine_library)
        by_manifest = fsck_path(pristine_library / "library.json")
        assert by_dir.as_dict()["issues"] == by_manifest.as_dict()["issues"]

    def test_unrecognized_path_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="cannot fsck"):
            fsck_path(tmp_path / "nothing.smi")

    def test_report_is_json_serializable(self, pristine_library):
        json.dumps(fsck_path(pristine_library).as_dict())


class TestIssueKinds:
    def test_payload_flip_is_block_crc(self, library_copy):
        _flip_payload_byte(_first_shard(library_copy), block_number=1)
        report = fsck_path(library_copy)
        issues = [i for i in report.issues if i.kind == "block-crc"]
        assert len(issues) == 1
        assert issues[0].block == 1
        assert issues[0].shard == _first_shard(library_copy).name

    def test_trailer_truncation_is_footer(self, library_copy):
        shard = _first_shard(library_copy)
        with open(shard, "r+b") as handle:
            handle.truncate(shard.stat().st_size - TRAILER_SIZE // 2)
        report = fsck_path(library_copy)
        kinds = {i.kind for i in report.issues if i.shard == shard.name}
        assert "footer" in kinds

    def test_missing_shard_file_is_missing(self, library_copy):
        shard = _first_shard(library_copy)
        shard.unlink()
        report = fsck_path(library_copy)
        assert any(
            i.kind == "missing" and i.shard == shard.name for i in report.issues
        )

    def test_manifest_disagreement_is_manifest(self, library_copy):
        manifest_path = library_copy / "library.json"
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        payload["shards"][0]["records"] += 1
        payload["total_records"] += 1
        manifest_path.write_text(json.dumps(payload), encoding="utf-8")
        report = fsck_path(library_copy)
        assert any(i.kind == "manifest" for i in report.issues)

    def test_unreadable_manifest_is_manifest_issue(self, library_copy):
        (library_copy / "library.json").write_text("{ torn", encoding="utf-8")
        report = fsck_path(library_copy)
        assert not report.clean
        assert report.issues[0].kind == "manifest"

    def test_damaged_shards_lists_each_shard_once(self, library_copy):
        shard = _first_shard(library_copy)
        _flip_payload_byte(shard, block_number=0)
        _flip_payload_byte(shard, block_number=1)
        report = fsck_path(library_copy)
        assert report.damaged_shards() == [shard.name]
        assert "CORRUPT" in report.summary()


class TestRepair:
    def test_replica_repair_is_byte_identical(
        self, library_copy, pristine_library
    ):
        shard = _first_shard(library_copy)
        _flip_payload_byte(shard)
        result = repair_path(library_copy, replica=pristine_library)
        assert result.clean
        assert result.repaired == [shard.name]
        assert shard.read_bytes() == _first_shard(pristine_library).read_bytes()

    def test_damaged_replica_shard_is_not_used(
        self, library_copy, pristine_library, tmp_path
    ):
        # The replica's own copy of the damaged shard is damaged too: the
        # repair must refuse it (a blind copy would "repair" rot with rot).
        bad_replica = tmp_path / "bad_replica.library"
        shutil.copytree(pristine_library, bad_replica)
        _flip_payload_byte(_first_shard(bad_replica))
        _flip_payload_byte(_first_shard(library_copy))
        result = repair_path(library_copy, replica=bad_replica)
        assert not result.clean
        assert result.failed == [_first_shard(library_copy).name]

    def test_source_repair_restores_content_and_refreshes_manifest(
        self, library_copy, source_smi, corpus
    ):
        shard = _first_shard(library_copy)
        _flip_payload_byte(shard)
        result = repair_path(library_copy, source=source_smi)
        assert result.clean
        assert result.repaired == [shard.name]
        # Content parity: every record reads back byte-for-byte; the
        # manifest was refreshed, so the re-packed layout scrubs clean.
        with CorpusLibrary.open(library_copy) as library:
            assert list(library.iter_all()) == corpus

    def test_repair_with_no_recovery_source_fails(self, library_copy):
        _flip_payload_byte(_first_shard(library_copy))
        result = repair_path(library_copy)
        assert not result.clean
        assert result.failed and not result.repaired
        assert not result.after.clean

    def test_repair_on_clean_layout_is_a_no_op(
        self, library_copy, pristine_library
    ):
        before = {
            p.name: p.read_bytes() for p in sorted(library_copy.iterdir())
        }
        result = repair_path(library_copy, replica=pristine_library)
        assert result.clean
        assert not result.repaired and not result.failed
        after = {p.name: p.read_bytes() for p in sorted(library_copy.iterdir())}
        assert after == before

    def test_bare_shard_repair_from_replica(
        self, tmp_path, corpus, engine, pristine_library
    ):
        path = tmp_path / "solo.zss"
        pack_records(path, corpus[:40], engine, records_per_block=8)
        # Replica shards match by name, so the healthy twin keeps the name
        # in its own directory — exactly how a serving replica lays out.
        (tmp_path / "replica").mkdir()
        healthy = tmp_path / "replica" / "solo.zss"
        shutil.copyfile(path, healthy)
        _flip_payload_byte(path)
        assert not fsck_path(path).clean
        # A bare shard's replica layout is the healthy twin file itself.
        result = repair_path(path, replica=healthy)
        assert result.clean
        assert path.read_bytes() == healthy.read_bytes()
        with ShardReader(path) as reader:
            assert list(reader.iter_all()) == corpus[:40]
