"""Tests for the ``.zss`` binary layout (header, footer, trailer, checksums)."""

from __future__ import annotations

import io

import pytest

from repro.errors import StoreFormatError
from repro.store.format import (
    BlockInfo,
    HEADER_SIZE,
    MAGIC,
    TRAILER_SIZE,
    decode_payload,
    encode_payload,
    payload_crc,
    read_footer,
    write_footer,
    write_header,
)


def _shard_bytes(
    payloads: list[list[str]],
    metadata: dict | None = None,
    records_per_block: int = 2,
) -> io.BytesIO:
    """Assemble a minimal shard from per-block record lists."""
    buffer = io.BytesIO()
    cursor = write_header(buffer)
    blocks = []
    for records in payloads:
        payload = encode_payload(records)
        buffer.write(payload)
        blocks.append(
            BlockInfo(offset=cursor, length=len(payload), records=len(records),
                      crc32=payload_crc(payload))
        )
        cursor += len(payload)
    total = sum(len(records) for records in payloads)
    write_footer(buffer, records_per_block=records_per_block, total_records=total,
                 blocks=blocks, metadata=metadata or {})
    buffer.seek(0)
    return buffer


class TestPayloadCodec:
    def test_roundtrip(self):
        records = ["abc", "", "x" * 50, "\xe9\xff"]
        payload = encode_payload(records)
        assert decode_payload(payload, len(records)) == records

    def test_empty_payload(self):
        assert encode_payload([]) == b""
        assert decode_payload(b"", 0) == []

    def test_record_outside_latin1_rejected(self):
        with pytest.raises(StoreFormatError):
            encode_payload(["Ā"])

    def test_record_count_mismatch_rejected(self):
        payload = encode_payload(["a", "b"])
        with pytest.raises(StoreFormatError):
            decode_payload(payload, 3)

    def test_missing_trailing_separator_rejected(self):
        with pytest.raises(StoreFormatError):
            decode_payload(b"ab", 1)


class TestFooterRoundtrip:
    def test_footer_roundtrip(self):
        metadata = {"source": "unit-test", "n": 7}
        shard = _shard_bytes([["aa", "bb"], ["cc"]], metadata=metadata)
        footer = read_footer(shard)
        assert footer.records_per_block == 2
        assert footer.total_records == 3
        assert footer.block_count == 2
        assert footer.metadata == metadata
        assert [b.records for b in footer.blocks] == [2, 1]
        assert footer.blocks[0].offset == HEADER_SIZE

    def test_empty_shard(self):
        footer = read_footer(_shard_bytes([]))
        assert footer.total_records == 0
        assert footer.block_count == 0


class TestCorruptionDetection:
    def test_bad_magic(self):
        shard = _shard_bytes([["a"]])
        data = bytearray(shard.getvalue())
        data[:4] = b"NOPE"
        with pytest.raises(StoreFormatError, match="magic"):
            read_footer(io.BytesIO(bytes(data)))

    def test_unsupported_version(self):
        data = bytearray(_shard_bytes([["a"]]).getvalue())
        data[len(MAGIC)] = 99
        with pytest.raises(StoreFormatError, match="version"):
            read_footer(io.BytesIO(bytes(data)))

    def test_truncated_file(self):
        with pytest.raises(StoreFormatError):
            read_footer(io.BytesIO(b"ZSS1"))

    def test_truncated_trailer(self):
        data = _shard_bytes([["a"]]).getvalue()
        with pytest.raises(StoreFormatError):
            read_footer(io.BytesIO(data[:-3]))

    def test_corrupt_footer_checksum(self):
        data = bytearray(_shard_bytes([["a"]]).getvalue())
        # Flip one byte inside the footer (just before the trailer).
        data[-TRAILER_SIZE - 2] ^= 0xFF
        with pytest.raises(StoreFormatError, match="checksum"):
            read_footer(io.BytesIO(bytes(data)))

    def test_underfull_non_final_block_rejected(self):
        # Readers map record -> block as index // records_per_block, so an
        # irregular shard must fail loudly rather than serve wrong records.
        shard = _shard_bytes([["aa"], ["bb", "cc"]], records_per_block=2)
        with pytest.raises(StoreFormatError, match="records_per_block"):
            read_footer(shard)

    def test_overfull_block_rejected(self):
        shard = _shard_bytes([["aa", "bb", "cc"]], records_per_block=2)
        with pytest.raises(StoreFormatError, match="records_per_block"):
            read_footer(shard)

    def test_record_count_sum_mismatch(self):
        buffer = io.BytesIO()
        cursor = write_header(buffer)
        payload = encode_payload(["a"])
        buffer.write(payload)
        blocks = [BlockInfo(cursor, len(payload), 1, payload_crc(payload))]
        write_footer(buffer, records_per_block=4, total_records=5,
                     blocks=blocks, metadata={})
        buffer.seek(0)
        with pytest.raises(StoreFormatError, match="total_records"):
            read_footer(buffer)
