"""Tests for ``.zss`` reading: block lookup, caching, protocol surface."""

from __future__ import annotations

import io

import pytest

from repro.core.random_access import RandomAccessReader
from repro.engine import ZSmilesEngine
from repro.errors import RandomAccessError, StoreFormatError
from repro.store import CorpusStore, RecordReader, ShardReader, open_reader, pack_records
from repro.store.reader import read_store_records


@pytest.fixture(scope="module")
def packed_library(tmp_path_factory, plain_codec, mixed_corpus_small):
    """A .zss shard of 100 records, 10 per block, with embedded dictionary."""
    directory = tmp_path_factory.mktemp("store")
    corpus = mixed_corpus_small[:100]
    path = directory / "library.zss"
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
        info = pack_records(path, corpus, engine, records_per_block=10)
    return path, corpus, info


class TestShardReader:
    def test_len_and_get(self, packed_library):
        path, corpus, _ = packed_library
        with ShardReader(path) as reader:
            assert len(reader) == len(corpus)
            for index in (0, 9, 10, 55, 99):
                assert reader.get(index) == corpus[index]
                assert reader[index] == corpus[index]

    def test_get_out_of_range(self, packed_library):
        path, corpus, _ = packed_library
        with ShardReader(path) as reader:
            with pytest.raises(RandomAccessError):
                reader.get(len(corpus))
            with pytest.raises(RandomAccessError):
                reader.get(-1)

    def test_single_get_touches_single_block(self, packed_library):
        """The acceptance criterion: get(i) decodes only record i's block."""
        path, corpus, info = packed_library
        reader = ShardReader(path)
        assert reader.get(55) == corpus[55]
        assert reader.blocks_decoded == 1
        # Only block 5's payload was read — not the whole file.
        block_length = reader.footer.blocks[5].length
        assert reader.bytes_read == block_length
        assert reader.bytes_read < info.payload_bytes
        reader.close()

    def test_block_cache_serves_repeat_lookups(self, packed_library):
        path, corpus, _ = packed_library
        with ShardReader(path, cache_blocks=2) as reader:
            assert reader.get(11) == corpus[11]
            decoded_once = reader.blocks_decoded
            assert reader.get(12) == corpus[12]   # same block: cache hit
            assert reader.blocks_decoded == decoded_once
            assert reader.cache_hits == 1

    def test_cache_evicts_least_recently_used(self, packed_library):
        path, corpus, _ = packed_library
        with ShardReader(path, cache_blocks=2) as reader:
            reader.get(0)    # block 0
            reader.get(10)   # block 1
            reader.get(20)   # block 2 -> evicts block 0
            assert reader.blocks_decoded == 3
            reader.get(0)    # block 0 must be decoded again
            assert reader.blocks_decoded == 4
            reader.get(20)   # block 2 still cached
            assert reader.blocks_decoded == 4

    def test_get_many_and_slice_and_iter(self, packed_library):
        path, corpus, _ = packed_library
        with ShardReader(path) as reader:
            assert reader.get_many([42, 3, 77]) == [corpus[i] for i in (42, 3, 77)]
            assert reader.slice(15, 25) == corpus[15:25]
            assert reader.slice(95, 200) == corpus[95:]      # clamped
            assert list(reader.iter_all()) == corpus
            with pytest.raises(RandomAccessError):
                reader.slice(5, 2)

    def test_embedded_dictionary_builds_codec(self, packed_library):
        path, corpus, _ = packed_library
        with ShardReader(path) as reader:   # no codec passed
            assert reader.codec is not None
            assert reader.get(7) == corpus[7]

    def test_explicit_codec_wins(self, packed_library, plain_codec):
        path, corpus, _ = packed_library
        with ShardReader(path, codec=plain_codec) as reader:
            assert reader.get(7) == corpus[7]

    def test_get_raw_returns_stored_records(self, packed_library, plain_codec):
        path, corpus, _ = packed_library
        with ShardReader(path) as reader:
            assert reader.get_raw(13) == plain_codec.compress(corpus[13])

    def test_get_raw_caches_block_payload(self, packed_library):
        path, corpus, _ = packed_library
        with ShardReader(path) as reader:
            first = reader.get_raw(13)
            read_once = reader.bytes_read
            assert reader.get_raw(14) is not None   # same block: no new read
            assert reader.get_raw(13) == first
            assert reader.bytes_read == read_once

    def test_reader_reuse_after_close(self, packed_library):
        path, corpus, _ = packed_library
        reader = ShardReader(path)
        reader.get(1)
        reader.close()
        reader.close()                       # idempotent
        assert reader.get(98) == corpus[98]  # transparently reopens
        reader.close()

    def test_corrupt_block_detected(self, packed_library, tmp_path):
        path, _, _ = packed_library
        data = bytearray(path.read_bytes())
        reader = ShardReader(path)
        offset = reader.footer.blocks[3].offset
        reader.close()
        data[offset] ^= 0xFF
        corrupt = tmp_path / "corrupt.zss"
        corrupt.write_bytes(bytes(data))
        with ShardReader(corrupt) as bad:
            bad.get(0)                       # untouched block still fine
            with pytest.raises(StoreFormatError, match="checksum"):
                bad.get(30)                  # block 3 fails its CRC

    def test_compatibility_aliases(self, packed_library):
        path, corpus, _ = packed_library
        with ShardReader(path) as reader:
            assert reader.line(4) == corpus[4]
            assert reader.lines([1, 2]) == corpus[1:3]


class TestCorpusStore:
    def test_single_shard(self, packed_library):
        path, corpus, _ = packed_library
        with CorpusStore(path) as store:
            assert len(store) == len(corpus)
            assert store.get(33) == corpus[33]
            assert store.slice(8, 12) == corpus[8:12]

    def test_multiple_shards_concatenate(self, plain_codec, mixed_corpus_small, tmp_path):
        corpus = mixed_corpus_small[:90]
        paths = []
        with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
            for i, chunk in enumerate((corpus[:40], corpus[40:70], corpus[70:])):
                path = tmp_path / f"shard{i}.zss"
                pack_records(path, chunk, engine, records_per_block=16)
                paths.append(path)
        with CorpusStore(paths) as store:
            assert len(store) == len(corpus)
            assert list(store.iter_all()) == corpus
            for index in (0, 39, 40, 69, 70, 89):   # shard boundaries
                assert store.get(index) == corpus[index]
            assert store.get_many([89, 0, 41]) == [corpus[i] for i in (89, 0, 41)]
            with pytest.raises(RandomAccessError):
                store.get(len(corpus))

    def test_empty_shard_list_rejected(self):
        with pytest.raises(StoreFormatError):
            CorpusStore([])

    def test_read_store_records_helper(self, packed_library):
        path, corpus, _ = packed_library
        assert read_store_records(path) == corpus


class TestRecordReaderProtocol:
    def test_store_satisfies_protocol(self, packed_library):
        path, _, _ = packed_library
        with CorpusStore(path) as store:
            assert isinstance(store, RecordReader)
        with ShardReader(path) as reader:
            assert isinstance(reader, RecordReader)

    def test_flat_reader_satisfies_protocol(self, tmp_path):
        from repro.core.streaming import write_lines

        flat = tmp_path / "flat.smi"
        write_lines(flat, ["CCO", "C"])
        with RandomAccessReader(flat) as reader:
            assert isinstance(reader, RecordReader)
            assert reader.get(0) == "CCO"
            assert reader.get_many([1, 0]) == ["C", "CCO"]

    def test_open_reader_dispatches_by_suffix(self, packed_library, tmp_path):
        from repro.core.streaming import write_lines

        path, corpus, _ = packed_library
        store = open_reader(path)
        assert isinstance(store, CorpusStore)
        assert store.get(0) == corpus[0]
        store.close()

        flat = tmp_path / "flat.smi"
        write_lines(flat, corpus[:5])
        reader = open_reader(flat)
        assert isinstance(reader, RandomAccessReader)
        assert reader.get(2) == corpus[2]
        reader.close()
