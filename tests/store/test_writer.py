"""Tests for ``.zss`` packing through the engine."""

from __future__ import annotations

import io

import pytest

from repro.engine import ZSmilesEngine
from repro.errors import StoreError
from repro.store import (
    CorpusStore,
    ShardWriter,
    pack_compressed_records,
    pack_file,
    pack_records,
)
from repro.store.format import read_footer


@pytest.fixture(scope="module")
def plain_engine(plain_codec) -> ZSmilesEngine:
    """A serial engine over the no-preprocessing session codec."""
    return ZSmilesEngine.from_codec(plain_codec, backend="serial")


class TestShardWriter:
    def test_roundtrip_through_store(self, plain_engine, mixed_corpus_small):
        corpus = mixed_corpus_small[:120]
        buffer = io.BytesIO()
        info = pack_records(buffer, corpus, plain_engine, records_per_block=16)
        assert info.records == len(corpus)
        assert info.blocks == (len(corpus) + 15) // 16
        buffer.seek(0)
        with CorpusStore(buffer) as store:
            assert list(store.iter_all()) == corpus

    def test_partial_final_block(self, plain_engine, mixed_corpus_small):
        corpus = mixed_corpus_small[:21]
        buffer = io.BytesIO()
        info = pack_records(buffer, corpus, plain_engine, records_per_block=8)
        assert info.blocks == 3
        footer = read_footer(buffer)
        assert [b.records for b in footer.blocks] == [8, 8, 5]

    def test_batching_does_not_change_bytes(self, plain_engine, mixed_corpus_small):
        corpus = mixed_corpus_small[:64]
        outputs = []
        for batch_blocks in (1, 3, 64):
            buffer = io.BytesIO()
            with ShardWriter(
                buffer, engine=plain_engine, records_per_block=4,
                batch_blocks=batch_blocks,
            ) as writer:
                writer.add_many(corpus)
                writer.close()
            outputs.append(buffer.getvalue())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_process_backend_matches_serial(self, plain_codec, mixed_corpus_small):
        corpus = mixed_corpus_small[:80]
        serial_buf, process_buf = io.BytesIO(), io.BytesIO()
        with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
            pack_records(serial_buf, corpus, engine, records_per_block=16)
        with ZSmilesEngine.from_codec(
            plain_codec, backend="process", jobs=2, chunk_size=16
        ) as engine:
            pack_records(
                process_buf, corpus, engine, records_per_block=16, backend="process"
            )
        assert process_buf.getvalue() == serial_buf.getvalue()

    def test_empty_store(self, plain_engine):
        buffer = io.BytesIO()
        info = pack_records(buffer, [], plain_engine)
        assert info.records == 0 and info.blocks == 0
        buffer.seek(0)
        with CorpusStore(buffer) as store:
            assert len(store) == 0
            assert list(store.iter_all()) == []

    def test_record_with_newline_rejected(self, plain_engine):
        with ShardWriter(io.BytesIO(), engine=plain_engine) as writer:
            with pytest.raises(StoreError, match="terminator"):
                writer.add("CCO\nCC")
            writer.close()

    def test_add_after_close_rejected(self, plain_engine):
        writer = ShardWriter(io.BytesIO(), engine=plain_engine)
        writer.close()
        with pytest.raises(StoreError, match="closed"):
            writer.add("CCO")

    def test_plain_add_without_engine_rejected(self):
        with ShardWriter(io.BytesIO(), engine=None) as writer:
            with pytest.raises(StoreError, match="engine"):
                writer.add("CCO")
            writer.close()

    def test_invalid_block_size_rejected(self, plain_engine):
        with pytest.raises(StoreError):
            ShardWriter(io.BytesIO(), engine=plain_engine, records_per_block=0)

    def test_mispositioned_file_object_rejected(self, plain_engine):
        # Readers locate the magic at offset 0: a shard cannot start mid-file.
        buffer = io.BytesIO(b"prefix")
        buffer.seek(0, 2)
        with pytest.raises(StoreError, match="offset 0"):
            ShardWriter(buffer, engine=plain_engine)

    def test_stats_track_compression(self, plain_engine, mixed_corpus_small):
        corpus = mixed_corpus_small[:32]
        info = pack_records(io.BytesIO(), corpus, plain_engine, records_per_block=8)
        assert info.original_bytes == sum(len(s) + 1 for s in corpus)
        assert 0 < info.payload_bytes < info.original_bytes
        assert 0 < info.ratio < 1
        assert info.file_bytes > info.payload_bytes  # framing is accounted


class TestPackCompressed:
    def test_precompressed_records_roundtrip(self, plain_codec, mixed_corpus_small):
        corpus = mixed_corpus_small[:40]
        compressed = [plain_codec.compress(s) for s in corpus]
        buffer = io.BytesIO()
        info = pack_compressed_records(buffer, compressed, records_per_block=8)
        assert info.records == len(corpus)
        buffer.seek(0)
        with CorpusStore(buffer, codec=plain_codec) as store:
            assert list(store.iter_all()) == corpus

    def test_mixed_plain_and_precompressed_order(self, plain_engine, plain_codec,
                                                 mixed_corpus_small):
        corpus = mixed_corpus_small[:30]
        buffer = io.BytesIO()
        with ShardWriter(buffer, engine=plain_engine, records_per_block=7) as writer:
            writer.add_many(corpus[:10])
            writer.add_compressed_many([plain_codec.compress(s) for s in corpus[10:20]])
            writer.add_many(corpus[20:])
            writer.close()
        buffer.seek(0)
        with CorpusStore(buffer) as store:
            assert list(store.iter_all()) == corpus


class TestPackFile:
    def test_pack_file_roundtrip(self, plain_engine, mixed_corpus_small, tmp_path):
        from repro.core.streaming import write_lines

        corpus = mixed_corpus_small[:50]
        smi = tmp_path / "lib.smi"
        write_lines(smi, corpus)
        info = pack_file(smi, engine=plain_engine, records_per_block=16)
        assert info.path == tmp_path / "lib.zss"
        with CorpusStore(info.path) as store:
            assert list(store.iter_all()) == corpus

    def test_pack_file_requires_engine(self, tmp_path):
        with pytest.raises(StoreError, match="engine"):
            pack_file(tmp_path / "lib.smi")
