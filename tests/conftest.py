"""Shared fixtures for the test suite.

Corpora and trained codecs are expensive relative to individual assertions,
so they are built once per session at a small, deterministic scale.
"""

from __future__ import annotations

import pytest

from repro.core.codec import ZSmilesCodec
from repro.datasets import exscalate, gdb17, mediate, mixed

#: Hand-picked SMILES used across tests: all valid, covering rings, branches,
#: aromatics, bracket atoms, charges, stereo markers and multi-ring numbering.
CURATED_SMILES = [
    "C",
    "CCO",
    "c1ccccc1",
    "COc1cc(C=O)ccc1O",                                # vanillin (paper Fig. 1)
    "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",             # dibenzoylmethane (paper IV-A)
    "CC(C)Cc1ccc(cc1)C(C)C(=O)O",                      # ibuprofen
    "CC(=O)Oc1ccccc1C(=O)O",                           # aspirin
    "CN1CCC[C@H]1c1cccnc1",                            # nicotine (chirality)
    "C1CC2CCC1CC2",                                    # bicyclic, nested ring ids
    "O=C(O)c1ccccc1O",
    "[O-]C(=O)c1ccccc1[N+](=O)[O-]",                   # charges
    "FC(F)(F)c1ccc(Cl)cc1Br",                          # halogens incl. two-letter
    "C/C=C/C",                                         # cis/trans bonds
    "N#Cc1ccccc1",                                     # triple bond
    "C1CC1.C1CCC1",                                    # disconnected components
    "c1ccc2ccccc2c1",                                  # fused rings
    "O=S(=O)(N)c1ccc(N)cc1",
    "[13CH4]",                                         # isotope
    "C%12CCCCC%12",                                    # two-digit ring id
]


@pytest.fixture(scope="session")
def curated_smiles() -> list[str]:
    """Curated valid SMILES covering the grammar features the codec must handle."""
    return list(CURATED_SMILES)


@pytest.fixture(scope="session")
def gdb_corpus() -> list[str]:
    """Small GDB-17-like corpus (deterministic)."""
    return gdb17.generate(150, seed=1)


@pytest.fixture(scope="session")
def mediate_corpus() -> list[str]:
    """Small MEDIATE-like corpus (deterministic)."""
    return mediate.generate(150, seed=2)


@pytest.fixture(scope="session")
def exscalate_corpus() -> list[str]:
    """Small EXSCALATE-like corpus (deterministic)."""
    return exscalate.generate(150, seed=3)


@pytest.fixture(scope="session")
def mixed_corpus_small() -> list[str]:
    """Small MIXED corpus used for training test codecs."""
    return mixed.generate(450, seed=4)


@pytest.fixture(scope="session")
def trained_codec(mixed_corpus_small: list[str]) -> ZSmilesCodec:
    """A codec trained once on the small MIXED corpus (preprocessing enabled)."""
    return ZSmilesCodec.train(mixed_corpus_small, preprocessing=True, lmax=8)


@pytest.fixture(scope="session")
def plain_codec(mixed_corpus_small: list[str]) -> ZSmilesCodec:
    """A codec trained without preprocessing (byte-exact round trips)."""
    return ZSmilesCodec.train(mixed_corpus_small, preprocessing=False, lmax=8)
