"""Shared fixtures for the GA campaign suite.

One small deterministic corpus is written once per session, both flat and as
a packed library, so the suites can open it through every tier the driver
supports.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignConfig
from repro.core.codec import ZSmilesCodec
from repro.engine import ZSmilesEngine
from repro.library import pack_library


@pytest.fixture(scope="session")
def campaign_corpus(gdb_corpus) -> list[str]:
    """The seed corpus every campaign test samples from."""
    return list(gdb_corpus)


@pytest.fixture(scope="session")
def corpus_file(tmp_path_factory, campaign_corpus):
    """The corpus as a flat ``.smi`` file (the simplest reader tier)."""
    path = tmp_path_factory.mktemp("campaign_corpus") / "corpus.smi"
    path.write_text("\n".join(campaign_corpus) + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def corpus_library(tmp_path_factory, campaign_corpus):
    """The corpus as a 2-shard packed library (the serving tier's layout)."""
    directory = tmp_path_factory.mktemp("campaign_lib") / "corpus.library"
    codec = ZSmilesCodec.train(campaign_corpus, preprocessing=True, lmax=8)
    with ZSmilesEngine.from_codec(codec, backend="kernel") as engine:
        pack_library(directory, campaign_corpus, engine, shards=2, records_per_block=16)
    return directory


def small_config(**overrides) -> CampaignConfig:
    """A campaign small enough for unit tests, big enough to breed."""
    params = dict(population_size=12, generations=2, seed=7, score_jobs=2)
    params.update(overrides)
    return CampaignConfig(**params)
