"""Hypothesis properties of the fragment operators as GA mutators.

Three invariants the campaign's correctness leans on:

* **free-valence** — every offspring's atoms still satisfy their valence
  budget (no atom is over-bonded by an attachment or a crossover bond),
* **canonicalisation fixpoint** — offspring converge under the curation
  chain's ``write(parse(x))`` in one step, so the filter never rewrites a
  record twice,
* **purity under reuse** — operators are pure functions of ``(inputs, RNG
  state)``: no hidden state accumulates across calls, and the parent
  strings are never modified.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import crossover, mutate
from repro.datasets import gdb17, mediate
from repro.datasets.fragments import free_valence
from repro.smiles import is_valid, parse, write

#: Deterministic parent pool: two dataset textures plus grammar-heavy picks.
PARENTS = tuple(
    gdb17.generate(40, seed=5)
    + mediate.generate(40, seed=6)
    + ["C", "CCO", "c1ccccc1", "CC(C)Cc1ccc(cc1)C(C)C(=O)O", "N#Cc1ccccc1"]
)

parents = st.sampled_from(PARENTS)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def canonical(smiles: str) -> str:
    return write(parse(smiles))


class TestFreeValenceInvariant:
    @given(parent=parents, seed=seeds)
    @settings(max_examples=120, deadline=None)
    def test_mutated_offspring_respects_valence(self, parent, seed):
        child = mutate(parent, random.Random(seed))
        if child is None:
            return
        graph = parse(child)
        for idx in range(graph.atom_count()):
            assert free_valence(graph, idx) >= 0, (parent, child, idx)

    @given(a=parents, b=parents, seed=seeds)
    @settings(max_examples=120, deadline=None)
    def test_crossed_offspring_respects_valence(self, a, b, seed):
        child = crossover(a, b, random.Random(seed))
        if child is None:
            return
        graph = parse(child)
        assert graph.atom_count() == parse(a).atom_count() + parse(b).atom_count()
        for idx in range(graph.atom_count()):
            assert free_valence(graph, idx) >= 0, (a, b, child, idx)


class TestCanonicalisationFixpoint:
    @given(parent=parents, seed=seeds)
    @settings(max_examples=120, deadline=None)
    def test_mutated_offspring_canonicalises_in_one_step(self, parent, seed):
        child = mutate(parent, random.Random(seed))
        if child is None:
            return
        assert is_valid(child)
        once = canonical(child)
        assert canonical(once) == once

    @given(a=parents, b=parents, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_crossed_offspring_canonicalises_in_one_step(self, a, b, seed):
        child = crossover(a, b, random.Random(seed))
        if child is None:
            return
        assert is_valid(child)
        once = canonical(child)
        assert canonical(once) == once


class TestOperatorPurity:
    @given(parent=parents, seed=seeds, churn=st.integers(0, 8))
    @settings(max_examples=80, deadline=None)
    def test_mutate_pure_under_reuse(self, parent, seed, churn):
        # Interleaved unrelated calls must not change what (parent, seed)
        # produces: the operator keeps no state of its own.
        first = mutate(parent, random.Random(seed))
        for i in range(churn):
            mutate(PARENTS[i % len(PARENTS)], random.Random(seed + i + 1))
            crossover(parent, PARENTS[i % len(PARENTS)], random.Random(i))
        assert mutate(parent, random.Random(seed)) == first

    @given(a=parents, b=parents, seed=seeds)
    @settings(max_examples=80, deadline=None)
    def test_crossover_pure_under_reuse(self, a, b, seed):
        first = crossover(a, b, random.Random(seed))
        mutate(a, random.Random(seed))
        crossover(b, a, random.Random(seed))
        assert crossover(a, b, random.Random(seed)) == first

    @given(parent=parents, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_parent_string_unchanged(self, parent, seed):
        snapshot = str(parent)
        mutate(parent, random.Random(seed))
        crossover(parent, parent, random.Random(seed))
        assert parent == snapshot

    @given(parent=parents, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_rng_consumption_is_part_of_the_contract(self, parent, seed):
        # Two RNGs with identical state stay in lockstep through an
        # operator call — the draws depend only on the inputs.
        rng_a, rng_b = random.Random(seed), random.Random(seed)
        assert mutate(parent, rng_a) == mutate(parent, rng_b)
        assert rng_a.getstate() == rng_b.getstate()
