"""``zsmiles campaign run | resume | status | top-hits``."""

from __future__ import annotations

import pytest

from repro.campaign import campaign_status
from repro.cli import main
from repro.errors import CampaignError


def run_cli(*argv) -> int:
    return main([str(arg) for arg in argv])


@pytest.fixture()
def finished_campaign(tmp_path, corpus_file):
    workdir = tmp_path / "camp"
    code = run_cli(
        "campaign", "run", corpus_file, workdir,
        "--population", 12, "--generations", 2, "--seed", 7,
    )
    assert code == 0
    return workdir


class TestRun:
    def test_run_prints_summary(self, tmp_path, corpus_file, capsys):
        assert run_cli(
            "campaign", "run", corpus_file, tmp_path / "camp",
            "--population", 12, "--generations", 2, "--seed", 7,
        ) == 0
        out = capsys.readouterr().out
        assert "generation : 2 (last completed)" in out
        assert "gen   0:" in out and "gen   2:" in out

    def test_run_writes_checkpoint(self, finished_campaign):
        assert campaign_status(finished_campaign).generation == 2

    def test_run_refuses_existing_workdir(self, finished_campaign, corpus_file):
        with pytest.raises(CampaignError, match="resume"):
            run_cli("campaign", "run", corpus_file, finished_campaign)


class TestResume:
    def test_resume_extends_the_target(self, finished_campaign, capsys):
        assert run_cli(
            "campaign", "resume", finished_campaign, "--generations", 3
        ) == 0
        assert "generation : 3" in capsys.readouterr().out
        assert campaign_status(finished_campaign).generation == 3

    def test_resume_finished_campaign_is_a_no_op(self, finished_campaign):
        before = campaign_status(finished_campaign).as_dict()
        assert run_cli("campaign", "resume", finished_campaign) == 0
        assert campaign_status(finished_campaign).as_dict() == before

    def test_resume_missing_campaign_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign checkpoint"):
            run_cli("campaign", "resume", tmp_path)


class TestStatusAndHits:
    def test_status_reports_counters(self, finished_campaign, capsys):
        assert run_cli("campaign", "status", finished_campaign) == 0
        out = capsys.readouterr().out
        assert "scored" in out and "records_written" in out

    def test_top_hits_prints_ranked_records(self, finished_campaign, capsys):
        assert run_cli("campaign", "top-hits", finished_campaign, "-n", 4) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 4
        scores = [float(line.split()[0]) for line in lines]
        assert scores == sorted(scores)
