"""The campaign driver: generation loop, determinism, checkpoint discipline."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignDriver,
    campaign_status,
    campaign_top_hits,
)
from repro.campaign.state import CHECKPOINT_NAME, DICTIONARY_NAME
from repro.errors import CampaignError
from repro.library import CorpusLibrary
from repro.library.manifest import DICTIONARY_IDENTITY_KEY, LibraryManifest

from .conftest import small_config


def run_campaign_to(workdir, source, config):
    with CampaignDriver.start(source, workdir, config) as driver:
        return driver.run()


def deterministic_stats(state):
    return [g.deterministic_dict() for g in state.generations]


def workdir_bytes(workdir, skip=(CHECKPOINT_NAME,)):
    """``{relative name: bytes}`` of every file, minus the wall-clock ones."""
    return {
        p.relative_to(workdir).as_posix(): p.read_bytes()
        for p in sorted(workdir.rglob("*"))
        if p.is_file() and p.name not in skip
    }


class TestConfigValidation:
    def test_defaults_valid(self):
        CampaignConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"generations": -1},
            {"crossover_rate": 1.5},
            {"immigrants": -1},
            {"max_heavy_atoms": 2},
            {"score_jobs": 0},
            {"throttle": -0.1},
            {"pocket": "NoSuchPocket"},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(CampaignError):
            CampaignConfig(**kwargs)

    def test_round_trips_through_dict(self):
        config = small_config(immigrants=3, throttle=0.5)
        assert CampaignConfig.from_dict(config.as_dict()) == config


class TestCampaignRun:
    @pytest.fixture(scope="class")
    def finished(self, tmp_path_factory, corpus_file):
        workdir = tmp_path_factory.mktemp("camp") / "run"
        state = run_campaign_to(workdir, corpus_file, small_config(immigrants=3))
        return workdir, state

    def test_workdir_layout(self, finished):
        workdir, state = finished
        assert (workdir / CHECKPOINT_NAME).is_file()
        assert (workdir / DICTIONARY_NAME).is_file()
        assert (workdir / state.composed_manifest).is_file()
        for generation in range(state.generation + 1):
            assert (workdir / f"gen-{generation:04d}.library").is_dir()

    def test_generation_counters(self, finished):
        _, state = finished
        assert state.generation == 2
        assert len(state.generations) == 3
        for stats in state.generations:
            assert stats.survivors == stats.records_written > 0
            assert stats.best_score <= stats.mean_score
        evolution = state.generations[1:]
        assert all(g.mutated + g.crossed > 0 for g in evolution)
        assert all(g.sampled == 3 for g in evolution), "immigrants drawn"

    def test_composed_library_serves_every_generation(self, finished):
        workdir, state = finished
        total = sum(g.records_written for g in state.generations)
        with CorpusLibrary.open(workdir / state.composed_manifest) as library:
            assert len(library) == total
            records = list(library.iter_all())
        assert all(records), "no empty records packed"

    def test_composed_manifest_pins_campaign_dictionary(self, finished):
        workdir, state = finished
        manifest = LibraryManifest.load(workdir / state.composed_manifest)
        identity = manifest.metadata[DICTIONARY_IDENTITY_KEY]
        assert identity["hash"] == state.dictionary_hash
        assert manifest.metadata["composed_from"] == [
            f"gen-{g:04d}.library" for g in range(state.generation + 1)
        ]

    def test_monotone_selection_pressure(self, finished):
        _, state = finished
        best = [g.best_score for g in state.generations]
        # Survivors carry over, so the champion can never regress.
        assert best == sorted(best, reverse=True) or best == sorted(best)
        assert min(best) == best[-1]

    def test_top_hits_sorted_and_distinct(self, finished):
        workdir, _ = finished
        hits = campaign_top_hits(workdir, 8)
        scores = [score for _, score in hits]
        assert scores == sorted(scores)
        assert len({smiles for smiles, _ in hits}) == len(hits)

    def test_status_reads_without_source(self, finished, tmp_path):
        workdir, state = finished
        status = campaign_status(workdir)
        assert status.generation == state.generation
        assert status.counters() == state.counters()


class TestDeterminism:
    def test_identical_runs_identical_bytes(self, tmp_path, corpus_file):
        config = small_config(immigrants=2)
        state_a = run_campaign_to(tmp_path / "a", corpus_file, config)
        state_b = run_campaign_to(tmp_path / "b", corpus_file, config)
        assert deterministic_stats(state_a) == deterministic_stats(state_b)
        assert workdir_bytes(tmp_path / "a") == workdir_bytes(tmp_path / "b")

    def test_score_pool_width_is_output_invariant(self, tmp_path, corpus_file):
        serial = run_campaign_to(
            tmp_path / "serial", corpus_file, small_config(score_jobs=1)
        )
        pooled = run_campaign_to(
            tmp_path / "pooled", corpus_file, small_config(score_jobs=4)
        )
        assert deterministic_stats(serial) == deterministic_stats(pooled)
        assert workdir_bytes(tmp_path / "serial") == workdir_bytes(tmp_path / "pooled")

    def test_stepwise_resume_matches_uninterrupted(self, tmp_path, corpus_file):
        config = small_config(generations=3, immigrants=2)
        straight = run_campaign_to(tmp_path / "straight", corpus_file, config)
        with CampaignDriver.start(corpus_file, tmp_path / "chopped", config) as d:
            d.step()
        with CampaignDriver.resume(tmp_path / "chopped") as d:
            d.step()
        with CampaignDriver.resume(tmp_path / "chopped") as d:
            chopped = d.run()
        assert deterministic_stats(straight) == deterministic_stats(chopped)
        assert workdir_bytes(tmp_path / "straight") == workdir_bytes(
            tmp_path / "chopped"
        )
        assert campaign_top_hits(tmp_path / "straight", 5) == campaign_top_hits(
            tmp_path / "chopped", 5
        )

    def test_different_seeds_diverge(self, tmp_path, corpus_file):
        state_a = run_campaign_to(tmp_path / "a", corpus_file, small_config(seed=1))
        state_b = run_campaign_to(tmp_path / "b", corpus_file, small_config(seed=2))
        assert deterministic_stats(state_a) != deterministic_stats(state_b)


class TestSourceTiers:
    def test_library_source_matches_flat_source(
        self, tmp_path, corpus_file, corpus_library
    ):
        # Same records behind two reader tiers -> identical campaigns.
        config = small_config()
        flat = run_campaign_to(tmp_path / "flat", corpus_file, config)
        packed = run_campaign_to(tmp_path / "packed", corpus_library, config)
        assert deterministic_stats(flat) == deterministic_stats(packed)
        assert workdir_bytes(tmp_path / "flat") == workdir_bytes(tmp_path / "packed")


class TestLifecycleErrors:
    def test_start_refuses_existing_campaign(self, tmp_path, corpus_file):
        run_campaign_to(tmp_path / "c", corpus_file, small_config(generations=0))
        with pytest.raises(CampaignError, match="resume"):
            CampaignDriver.start(corpus_file, tmp_path / "c", small_config())

    def test_resume_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign checkpoint"):
            CampaignDriver.resume(tmp_path)

    def test_resume_without_dictionary_raises(self, tmp_path, corpus_file):
        run_campaign_to(tmp_path / "c", corpus_file, small_config(generations=0))
        (tmp_path / "c" / DICTIONARY_NAME).unlink()
        with pytest.raises(CampaignError, match="dictionary"):
            CampaignDriver.resume(tmp_path / "c")

    def test_hostile_corpus_raises(self, tmp_path):
        corpus = tmp_path / "garbage.smi"
        corpus.write_text("((((\n]]]]\nzzzz\n", encoding="utf-8")
        with pytest.raises(CampaignError, match="no valid records"):
            CampaignDriver.start(corpus, tmp_path / "camp", small_config())

    def test_extend_generations_on_resume(self, tmp_path, corpus_file):
        run_campaign_to(tmp_path / "c", corpus_file, small_config(generations=1))
        with CampaignDriver.resume(tmp_path / "c") as driver:
            state = driver.run(3)
        assert state.generation == 3
        checkpoint = json.loads(
            (tmp_path / "c" / CHECKPOINT_NAME).read_text(encoding="utf-8")
        )
        assert checkpoint["config"]["generations"] == 3
