"""The ``campaign.json`` checkpoint: RNG round-trip, atomicity, validation."""

from __future__ import annotations

import json
import random

import pytest

from repro.campaign import CampaignState, GenerationStats
from repro.campaign.state import (
    CHECKPOINT_NAME,
    STATE_VERSION,
    decode_rng_state,
    encode_rng_state,
    generation_dir,
)
from repro.errors import CampaignError


def make_state(**overrides) -> CampaignState:
    rng = random.Random(3)
    params = dict(
        name="camp",
        source="corpus.smi",
        seed=3,
        config={"population_size": 8},
        generation=1,
        rng_state=encode_rng_state(rng.getstate()),
        dictionary_hash="abc123",
        generations=[
            GenerationStats(generation=0, scored=8, survivors=8, best_score=-1.5),
            GenerationStats(generation=1, scored=16, survivors=8, best_score=-2.5),
        ],
    )
    params.update(overrides)
    return CampaignState(**params)


class TestRngRoundTrip:
    def test_encode_decode_identity(self):
        rng = random.Random(99)
        rng.random(), rng.randrange(1000)  # advance past the seed state
        state = rng.getstate()
        assert decode_rng_state(encode_rng_state(state)) == state

    def test_restored_rng_continues_the_sequence(self):
        rng = random.Random(5)
        [rng.random() for _ in range(10)]
        state = make_state(rng_state=encode_rng_state(rng.getstate()))
        expected = [rng.random() for _ in range(5)]
        restored = state.restore_rng()
        assert [restored.random() for _ in range(5)] == expected

    def test_json_round_trip_preserves_rng(self):
        rng = random.Random(8)
        rng.randrange(2**63)
        encoded = encode_rng_state(rng.getstate())
        rehydrated = json.loads(json.dumps(encoded))
        assert decode_rng_state(rehydrated) == rng.getstate()

    def test_malformed_rng_state_rejected(self):
        with pytest.raises(CampaignError, match="RNG state"):
            decode_rng_state({"not": "a list"})
        with pytest.raises(CampaignError, match="RNG state"):
            decode_rng_state([1, 2])


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        state = make_state()
        state.save(tmp_path)
        loaded = CampaignState.load(tmp_path)
        assert loaded.as_dict() == state.as_dict()
        assert loaded.restore_rng().random() == state.restore_rng().random()

    def test_save_leaves_no_temp_file(self, tmp_path):
        make_state().save(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == [CHECKPOINT_NAME]

    def test_save_fsyncs_the_checkpoint_and_its_directory(
        self, tmp_path, monkeypatch
    ):
        """Crash durability: tmp → fsync → rename → directory fsync, so a
        kill at any instant leaves a complete checkpoint (old or new)."""
        import os

        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr("repro.campaign.state.os.fsync", recording_fsync)
        make_state().save(tmp_path)
        # One fsync for the tmp payload, one for the containing directory.
        assert len(synced) >= 2
        assert CampaignState.load(tmp_path).name == "camp"
        assert [p.name for p in tmp_path.iterdir()] == [CHECKPOINT_NAME]

    def test_save_is_sorted_and_stable(self, tmp_path):
        state = make_state()
        first = state.save(tmp_path).read_bytes()
        second = state.save(tmp_path).read_bytes()
        assert first == second

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign checkpoint"):
            CampaignState.load(tmp_path)

    def test_corrupt_checkpoint_raises(self, tmp_path):
        (tmp_path / CHECKPOINT_NAME).write_text("{ truncated", encoding="utf-8")
        with pytest.raises(CampaignError, match="unreadable"):
            CampaignState.load(tmp_path)

    def test_non_object_checkpoint_raises(self, tmp_path):
        (tmp_path / CHECKPOINT_NAME).write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(CampaignError, match="not a JSON object"):
            CampaignState.load(tmp_path)

    def test_wrong_version_raises(self, tmp_path):
        obj = make_state().as_dict()
        obj["version"] = STATE_VERSION + 1
        (tmp_path / CHECKPOINT_NAME).write_text(json.dumps(obj), encoding="utf-8")
        with pytest.raises(CampaignError, match="version"):
            CampaignState.load(tmp_path)

    def test_missing_field_raises(self, tmp_path):
        obj = make_state().as_dict()
        del obj["rng_state"]
        (tmp_path / CHECKPOINT_NAME).write_text(json.dumps(obj), encoding="utf-8")
        with pytest.raises(CampaignError, match="missing"):
            CampaignState.load(tmp_path)


class TestStats:
    def test_deterministic_dict_drops_wall_time(self):
        stats = GenerationStats(generation=2, scored=10, elapsed_seconds=1.25)
        assert "elapsed_seconds" in stats.as_dict()
        assert "elapsed_seconds" not in stats.deterministic_dict()

    def test_counters_aggregate_generations(self):
        state = make_state()
        counters = state.counters()
        assert counters["scored"] == 24
        assert counters["generations"] == 2

    def test_generation_dir_layout(self, tmp_path):
        assert generation_dir(tmp_path, 3).name == "gen-0003.library"
