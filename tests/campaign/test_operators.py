"""Unit tests for the GA operators: attachment rules, mutation, crossover."""

from __future__ import annotations

import random

import pytest

from repro.campaign import (
    DEFAULT_MUTATION_FRAGMENTS,
    attachment_candidates,
    crossover,
    mutate,
)
from repro.datasets.fragments import FRAGMENT_LIBRARY, free_valence
from repro.errors import CampaignError
from repro.smiles import is_valid, parse


class TestAttachmentCandidates:
    def test_methane_has_one_candidate(self):
        assert attachment_candidates(parse("C")) == [0]

    def test_halogens_excluded(self):
        graph = parse("CF")
        candidates = attachment_candidates(graph)
        assert 1 not in candidates, "terminal F must not take a substituent"
        assert 0 in candidates

    def test_saturated_atoms_excluded(self):
        # Neopentane's central carbon has no free valence.
        graph = parse("CC(C)(C)C")
        candidates = attachment_candidates(graph)
        assert 1 not in candidates

    def test_candidates_in_index_order(self):
        candidates = attachment_candidates(parse("CCCC"))
        assert candidates == sorted(candidates)

    def test_every_candidate_has_free_valence(self):
        graph = parse("CC(C)Cc1ccc(cc1)C(C)C(=O)O")
        for idx in attachment_candidates(graph):
            assert free_valence(graph, idx) >= 1


class TestMutate:
    def test_offspring_is_valid(self):
        child = mutate("CCO", random.Random(0))
        assert child is not None
        assert is_valid(child)

    def test_offspring_grows_by_one_fragment(self):
        parent = "CCO"
        rng = random.Random(3)
        child = mutate(parent, rng)
        assert child is not None
        grown = parse(child).atom_count() - parse(parent).atom_count()
        sizes = {FRAGMENT_LIBRARY[n].heavy_atoms for n in DEFAULT_MUTATION_FRAGMENTS}
        assert grown in sizes

    def test_deterministic_under_equal_rng_state(self):
        assert mutate("CCO", random.Random(42)) == mutate("CCO", random.Random(42))

    def test_unparsable_parent_rejected(self):
        assert mutate("not-smiles(((", random.Random(0)) is None

    def test_budget_rejects_growth(self):
        parent = "CCCCCCCCCC"  # 10 heavy atoms, budget leaves no room
        assert mutate(parent, random.Random(0), max_heavy_atoms=10) is None

    def test_small_budget_limits_fragment_pool(self):
        # Budget of 1 only admits single-atom fragments.
        child = mutate("CCO", random.Random(5), max_heavy_atoms=4)
        if child is not None:
            assert parse(child).atom_count() == 4

    def test_empty_fragment_pool_raises(self):
        with pytest.raises(CampaignError):
            mutate("CCO", random.Random(0), fragments=())

    def test_fully_substituted_parent_rejected(self):
        assert mutate("FC(F)(F)F", random.Random(0)) is None


class TestCrossover:
    def test_offspring_contains_both_parents(self):
        a, b = "CCO", "c1ccccc1"
        child = crossover(a, b, random.Random(0))
        assert child is not None
        assert is_valid(child)
        expected = parse(a).atom_count() + parse(b).atom_count()
        assert parse(child).atom_count() == expected

    def test_deterministic_under_equal_rng_state(self):
        pair = ("CCO", "CC(C)C")
        assert crossover(*pair, random.Random(9)) == crossover(*pair, random.Random(9))

    def test_unparsable_parent_rejected(self):
        assert crossover("CCO", "][", random.Random(0)) is None
        assert crossover("][", "CCO", random.Random(0)) is None

    def test_size_budget_rejects_fusion(self):
        assert crossover("CCCCC", "CCCCC", random.Random(0), max_heavy_atoms=9) is None

    def test_saturated_parent_rejected(self):
        # Tetrafluoromethane offers no attachment point on either side.
        assert crossover("FC(F)(F)F", "CCO", random.Random(0)) is None

    def test_parent_strings_never_mutated(self):
        a, b = "CCO", "c1ccccc1"
        a_copy, b_copy = str(a), str(b)
        crossover(a, b, random.Random(1))
        mutate(a, random.Random(1))
        assert a == a_copy and b == b_copy
