"""The acceptance criterion: kill a campaign mid-generation, resume, and get
byte-identical results — locally and over an HTTP replica list with one
replica SIGKILLed mid-campaign (zero failed reads)."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignDriver, campaign_status, campaign_top_hits
from repro.campaign.state import CHECKPOINT_NAME
from repro.server import BackgroundServer, ServerFleet

from .conftest import small_config
from .test_driver import deterministic_stats, run_campaign_to, workdir_bytes

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def spawn_campaign(source, workdir, *, generations, throttle):
    """``zsmiles campaign run`` in a real subprocess we can SIGKILL."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "campaign", "run",
            str(source), str(workdir),
            "--population", "12", "--generations", str(generations),
            "--seed", "7", "--score-jobs", "2",
            "--throttle", str(throttle),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_checkpoint(workdir, minimum_generation, timeout=60.0):
    """Block until ``campaign.json`` records *minimum_generation* complete."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if (workdir / CHECKPOINT_NAME).is_file():
            try:
                if campaign_status(workdir).generation >= minimum_generation:
                    return
            except Exception:
                pass  # torn read race is impossible, but a slow FS retry is cheap
        time.sleep(0.02)
    raise AssertionError(f"campaign never reached generation {minimum_generation}")


class TestLocalKillResume:
    def test_sigkill_mid_generation_resumes_byte_identical(
        self, tmp_path, corpus_file
    ):
        config = small_config(generations=3, throttle=0.0)
        straight = run_campaign_to(tmp_path / "straight", corpus_file, config)

        # The throttled twin sleeps inside every generation (after scoring,
        # before packing), so a SIGKILL after the gen-1 checkpoint reliably
        # lands mid-generation-2 with partial or absent gen-2 output.
        killed_dir = tmp_path / "killed"
        proc = spawn_campaign(
            corpus_file, killed_dir, generations=3, throttle=0.75
        )
        try:
            wait_for_checkpoint(killed_dir, minimum_generation=1)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        interrupted = campaign_status(killed_dir)
        assert interrupted.generation < 3, "kill landed before the finish line"

        with CampaignDriver.resume(killed_dir) as driver:
            resumed = driver.run()

        assert resumed.generation == 3
        assert deterministic_stats(resumed) == deterministic_stats(straight)
        assert workdir_bytes(killed_dir) == workdir_bytes(tmp_path / "straight")
        assert campaign_top_hits(killed_dir, 8) == campaign_top_hits(
            tmp_path / "straight", 8
        )


class TestHttpReplicaKillResume:
    def test_replica_sigkilled_mid_campaign_matches_local(
        self, tmp_path, corpus_library
    ):
        # The oracle: the same campaign straight over the local library.
        config = small_config(generations=3, immigrants=4)
        local = run_campaign_to(tmp_path / "local", corpus_library, config)

        # Replica A: SIGKILL-able worker process.  Replica B: stable
        # in-thread server.  The failover client must keep every read and
        # sample flowing across the kill.
        with BackgroundServer(corpus_library, readers=2) as stable:
            fleet = ServerFleet(corpus_library, workers=1)
            fleet.start()
            try:
                replicas = f"{fleet.url},{stable.url}"
                with CampaignDriver.start(
                    replicas, tmp_path / "http", config
                ) as driver:
                    driver.step()  # generation 1 over both replicas
                    fleet.kill_worker(0)  # SIGKILL mid-campaign
                    over_http = driver.run()  # finishes on the survivor
            finally:
                fleet.stop()

        assert over_http.generation == 3
        assert deterministic_stats(over_http) == deterministic_stats(local)
        assert workdir_bytes(tmp_path / "http") == workdir_bytes(tmp_path / "local")
        assert campaign_top_hits(tmp_path / "http", 8) == campaign_top_hits(
            tmp_path / "local", 8
        )

    def test_campaign_checkpoint_survives_replica_list_change(
        self, tmp_path, corpus_library
    ):
        config = small_config(generations=2)
        with BackgroundServer(corpus_library, readers=2) as first:
            with CampaignDriver.start(
                first.url, tmp_path / "camp", config
            ) as driver:
                driver.step()
        # The first server is gone; resume with a replacement replica list.
        with BackgroundServer(corpus_library, readers=2) as second:
            with CampaignDriver.resume(
                tmp_path / "camp", source=second.url
            ) as driver:
                state = driver.run()
        assert state.generation == 2
        assert state.source == second.url
