"""Tests for the fragment-based molecule generator and dataset profiles."""

from __future__ import annotations

import pytest

from repro.datasets import dataset_statistics, exscalate, gdb17, mediate, mixed
from repro.datasets.generator import GenerationProfile, MoleculeGenerator
from repro.errors import DatasetError
from repro.smiles.parser import parse
from repro.smiles.validate import is_valid


class TestProfileValidation:
    def test_empty_fragment_weights_rejected(self):
        with pytest.raises(DatasetError):
            GenerationProfile(name="x", fragment_weights={})

    def test_unknown_fragment_rejected(self):
        with pytest.raises(DatasetError):
            GenerationProfile(name="x", fragment_weights={"unobtainium": 1.0})

    def test_bad_size_bounds_rejected(self):
        with pytest.raises(DatasetError):
            GenerationProfile(
                name="x", min_heavy_atoms=10, max_heavy_atoms=5,
                fragment_weights={"benzene": 1.0},
            )

    def test_fragments_filtered_by_category(self):
        profile = gdb17.profile()
        rings = profile.fragments("ring")
        assert rings and all(spec.category == "ring" for spec, _ in rings)


class TestGeneration:
    def test_determinism_per_seed(self):
        a = MoleculeGenerator(gdb17.profile(), seed=7).generate(10)
        b = MoleculeGenerator(gdb17.profile(), seed=7).generate(10)
        assert a == b

    def test_different_seeds_differ(self):
        a = MoleculeGenerator(gdb17.profile(), seed=1).generate(10)
        b = MoleculeGenerator(gdb17.profile(), seed=2).generate(10)
        assert a != b

    def test_all_outputs_valid(self, gdb_corpus, mediate_corpus, exscalate_corpus):
        for corpus in (gdb_corpus, mediate_corpus, exscalate_corpus):
            assert all(is_valid(s) for s in corpus)

    def test_gdb_molecules_are_small(self, gdb_corpus):
        sizes = [parse(s).atom_count() for s in gdb_corpus[:60]]
        assert max(sizes) <= 17 + 3  # small slack for decoration overshoot
        assert min(sizes) >= 3

    def test_mediate_molecules_are_larger_on_average(self, gdb_corpus, mediate_corpus):
        gdb_mean = sum(len(s) for s in gdb_corpus) / len(gdb_corpus)
        mediate_mean = sum(len(s) for s in mediate_corpus) / len(mediate_corpus)
        assert mediate_mean > gdb_mean

    def test_gdb_is_more_homogeneous_than_mediate(self, gdb_corpus, mediate_corpus):
        """GDB-17-like text uses a narrower vocabulary of character trigrams."""

        def distinct_trigrams(corpus: list[str]) -> int:
            grams = set()
            for s in corpus:
                for i in range(len(s) - 2):
                    grams.add(s[i : i + 3])
            return len(grams)

        assert distinct_trigrams(gdb_corpus) < distinct_trigrams(mediate_corpus)

    def test_iter_generate_counts(self):
        gen = MoleculeGenerator(gdb17.profile(), seed=0)
        assert len(list(gen.iter_generate(5))) == 5

    def test_series_mode_reuses_scaffolds(self):
        gen = MoleculeGenerator(mediate.profile(), seed=3)
        gen.generate(5)
        assert gen._scaffold_library() is gen._scaffold_library()
        assert len(gen._scaffold_library()) == mediate.profile().scaffold_count


class TestDatasetModules:
    def test_module_level_generate(self):
        assert len(gdb17.generate(5, seed=0)) == 5
        assert len(mediate.generate(5, seed=0)) == 5
        assert len(exscalate.generate(5, seed=0)) == 5

    def test_exscalate_scored_generation(self):
        scored = exscalate.generate_scored(20, seed=0)
        assert len(scored) == 20
        assert all(isinstance(score, float) and score < 0 for _, score in scored)
        assert all(is_valid(smiles) for smiles, _ in scored)

    def test_mixed_interleaves_sources(self):
        corpus = mixed.generate(30, seed=0)
        assert len(corpus) == 30
        assert len(set(corpus)) > 20

    def test_mixed_components(self):
        components = mixed.generate_components(20, seed=0)
        assert set(components) == {"GDB-17", "MEDIATE", "EXSCALATE", "MIXED"}
        assert all(len(v) == 20 for v in components.values())

    def test_interleave_round_robin(self):
        assert mixed.interleave([["a", "b"], ["x"]]) == ["a", "x", "b"]

    def test_dataset_statistics(self, gdb_corpus):
        stats = dataset_statistics(gdb_corpus)
        assert stats["count"] == len(gdb_corpus)
        assert stats["min_length"] <= stats["mean_length"] <= stats["max_length"]
        assert 0 < stats["distinct_fraction"] <= 1

    def test_dataset_statistics_empty(self):
        assert dataset_statistics([])["count"] == 0
