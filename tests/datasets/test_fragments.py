"""Tests for the molecular fragment library."""

from __future__ import annotations

import pytest

from repro.datasets.fragments import (
    FRAGMENT_LIBRARY,
    benzene,
    carboxylic_acid,
    free_valence,
    fragment_names,
    get_fragment,
    nitro,
    pyrrole,
)
from repro.smiles.graph import Atom, MolecularGraph
from repro.smiles.parser import parse
from repro.smiles.validate import is_valid
from repro.smiles.writer import write


class TestLibrary:
    def test_every_fragment_builds_a_valid_standalone_molecule(self):
        for name, spec in FRAGMENT_LIBRARY.items():
            graph = MolecularGraph()
            added = spec.builder(graph, None)
            assert len(added) == spec.heavy_atoms, name
            smiles = write(graph)
            assert is_valid(smiles), f"{name} -> {smiles}"

    def test_every_fragment_attaches_to_a_carbon(self):
        for name, spec in FRAGMENT_LIBRARY.items():
            graph = MolecularGraph()
            root = graph.add_atom(Atom(element="C"))
            spec.builder(graph, root)
            assert graph.degree(root) == 1, name
            assert is_valid(write(graph)), name

    def test_declared_sizes_match(self):
        graph = MolecularGraph()
        assert len(benzene(graph, None)) == 6
        graph2 = MolecularGraph()
        assert len(carboxylic_acid(graph2, None)) == 3

    def test_fragment_names_by_category(self):
        rings = fragment_names("ring")
        decorations = fragment_names("decoration")
        assert "benzene" in rings
        assert "amide" in decorations
        assert set(rings).isdisjoint(decorations)
        assert set(fragment_names()) == set(FRAGMENT_LIBRARY)

    def test_get_fragment(self):
        assert get_fragment("benzene").heavy_atoms == 6
        with pytest.raises(KeyError):
            get_fragment("nonexistent")


class TestSpecificFragments:
    def test_benzene_is_aromatic_ring(self):
        graph = MolecularGraph()
        benzene(graph, None)
        assert write(graph) == "c1ccccc1"

    def test_pyrrole_has_bracket_nh(self):
        graph = MolecularGraph()
        pyrrole(graph, None)
        assert "[nH]" in write(graph)

    def test_nitro_charges(self):
        graph = MolecularGraph()
        nitro(graph, None)
        charges = sorted(a.charge for a in graph.atoms)
        assert charges == [-1, 0, 1]

    def test_kekulized_benzene_roundtrip(self):
        graph = MolecularGraph()
        get_fragment("kekulized_benzene").builder(graph, None)
        smiles = write(graph)
        assert "=" in smiles
        assert parse(smiles).ring_bond_count() == 1


class TestFreeValence:
    def test_saturated_carbon_has_no_free_valence(self):
        graph = parse("C(C)(C)(C)C")
        assert free_valence(graph, 0) == 0

    def test_terminal_carbon_has_free_valence(self):
        graph = parse("CC")
        assert free_valence(graph, 0) == 3

    def test_halogen_has_no_free_valence(self):
        graph = parse("CF")
        assert free_valence(graph, 1) == 0
