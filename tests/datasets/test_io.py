"""Tests for .smi file I/O and sampling utilities."""

from __future__ import annotations

import pytest

from repro.datasets.io import (
    SmiRecord,
    file_size_bytes,
    iter_smi,
    parse_smi_line,
    read_smi,
    read_smiles,
    write_smi,
)
from repro.datasets.sampling import chunked, random_sample, reservoir_sample, train_test_split
from repro.errors import DatasetError


class TestSmiParsing:
    def test_smiles_only(self):
        record = parse_smi_line("CCO")
        assert record == SmiRecord(smiles="CCO")

    def test_smiles_and_name(self):
        record = parse_smi_line("CCO ethanol")
        assert record.name == "ethanol"
        assert record.score is None

    def test_smiles_and_score(self):
        record = parse_smi_line("CCO -7.25")
        assert record.score == pytest.approx(-7.25)

    def test_smiles_name_and_score(self):
        record = parse_smi_line("CCO ethanol -7.25")
        assert record.name == "ethanol"
        assert record.score == pytest.approx(-7.25)

    def test_multi_word_name(self):
        record = parse_smi_line("CCO ethyl alcohol -1.0")
        assert record.name == "ethyl alcohol"

    def test_empty_line_rejected(self):
        with pytest.raises(DatasetError):
            parse_smi_line("   ")

    def test_to_line_roundtrip(self):
        record = SmiRecord(smiles="CCO", name="ethanol", score=-7.25)
        assert parse_smi_line(record.to_line()) == record


class TestSmiFiles:
    def test_write_read_plain_smiles(self, tmp_path, gdb_corpus):
        path = tmp_path / "lib.smi"
        count = write_smi(path, gdb_corpus[:50])
        assert count == 50
        assert read_smiles(path) == gdb_corpus[:50]

    def test_write_read_scored_records(self, tmp_path):
        path = tmp_path / "scores.smi"
        write_smi(path, [("CCO", -5.0), ("CCN", -6.5)])
        records = read_smi(path)
        assert [r.score for r in records] == [-5.0, -6.5]

    def test_write_record_objects(self, tmp_path):
        path = tmp_path / "named.smi"
        write_smi(path, [SmiRecord(smiles="CCO", name="mol1")])
        assert read_smi(path)[0].name == "mol1"

    def test_blank_lines_skipped_on_read(self, tmp_path):
        path = tmp_path / "gaps.smi"
        path.write_text("CCO\n\nCCN\n")
        assert [r.smiles for r in iter_smi(path)] == ["CCO", "CCN"]

    def test_newline_in_record_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            write_smi(tmp_path / "bad.smi", ["CC\nO"])

    def test_smiles_only_read_ignores_columns(self, tmp_path):
        path = tmp_path / "cols.smi"
        path.write_text("CCO mol1 -3.5\n")
        assert read_smiles(path) == ["CCO"]

    def test_file_size_bytes(self, tmp_path):
        path = tmp_path / "size.smi"
        write_smi(path, ["CCO"])
        assert file_size_bytes(path) == 4


class TestPackedCorpora:
    @pytest.fixture(scope="class")
    def packed_corpus(self, tmp_path_factory, plain_codec, mixed_corpus_small):
        from repro.engine import ZSmilesEngine
        from repro.store import pack_records

        corpus = mixed_corpus_small[:60]
        path = tmp_path_factory.mktemp("io_store") / "corpus.zss"
        with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
            pack_records(path, corpus, engine, records_per_block=16)
        return path, corpus

    def test_read_smiles_from_store(self, packed_corpus):
        path, corpus = packed_corpus
        assert read_smiles(path) == [line.split()[0] for line in corpus]

    def test_iter_smi_parses_store_records(self, packed_corpus):
        path, corpus = packed_corpus
        records = list(iter_smi(path))
        assert [r.smiles for r in records] == [line.split()[0] for line in corpus]

    def test_read_smiles_from_sharded_library(self, tmp_path_factory, plain_codec,
                                              mixed_corpus_small):
        from repro.engine import ZSmilesEngine
        from repro.library import pack_library

        corpus = mixed_corpus_small[:60]
        directory = tmp_path_factory.mktemp("io_library") / "corpus.library"
        with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
            pack_library(directory, corpus, engine, shards=3, records_per_block=8)
        expected = [line.split()[0] for line in corpus]
        assert read_smiles(directory) == expected                      # directory
        assert read_smiles(directory / "library.json") == expected     # manifest

    def test_library_without_dictionary_fails_loudly(self, tmp_path_factory,
                                                     plain_codec, mixed_corpus_small):
        from repro.engine import ZSmilesEngine
        from repro.library import pack_library

        corpus = mixed_corpus_small[:20]
        directory = tmp_path_factory.mktemp("io_bare_lib") / "bare.library"
        with ZSmilesEngine.from_codec(plain_codec, backend="serial") as engine:
            pack_library(directory, corpus, engine, shards=2,
                         records_per_block=4, embed_dictionary=False)
        with pytest.raises(DatasetError, match="dictionary"):
            read_smiles(directory)
        assert read_smiles(directory, codec=plain_codec) == [
            line.split()[0] for line in corpus
        ]

    def test_directory_without_manifest_not_hijacked(self, tmp_path):
        # A plain directory is not silently treated as a library; it fails
        # the way a flat open always has.
        with pytest.raises(OSError):
            read_smiles(tmp_path)

    def test_suffix_constant_matches_store_format(self):
        from repro.datasets.io import STORE_SUFFIX as io_suffix
        from repro.store.format import STORE_SUFFIX as store_suffix

        assert io_suffix == store_suffix

    def test_explicit_codec_overrides_embedded(self, packed_corpus, plain_codec):
        path, corpus = packed_corpus
        assert read_smiles(path, codec=plain_codec) == [
            line.split()[0] for line in corpus
        ]

    def test_store_without_dictionary_fails_loudly(self, tmp_path, plain_codec,
                                                   mixed_corpus_small):
        from repro.store.writer import pack_compressed_records

        corpus = mixed_corpus_small[:10]
        path = tmp_path / "bare.zss"
        pack_compressed_records(
            path, [plain_codec.compress(s) for s in corpus], records_per_block=4
        )
        with pytest.raises(DatasetError, match="dictionary"):
            read_smiles(path)
        # Supplying the codec explicitly makes the same store readable.
        assert read_smiles(path, codec=plain_codec) == [
            line.split()[0] for line in corpus
        ]


class TestSampling:
    def test_random_sample_without_replacement(self):
        items = list(range(100))
        sample = random_sample(items, 10, seed=1)
        assert len(sample) == len(set(sample)) == 10

    def test_random_sample_deterministic(self):
        items = list(range(100))
        assert random_sample(items, 10, seed=5) == random_sample(items, 10, seed=5)

    def test_random_sample_larger_than_population(self):
        assert random_sample([1, 2, 3], 10) == [1, 2, 3]

    def test_random_sample_negative_rejected(self):
        with pytest.raises(DatasetError):
            random_sample([1], -1)

    def test_reservoir_sample_size_and_membership(self):
        stream = (str(i) for i in range(1000))
        sample = reservoir_sample(stream, 25, seed=3)
        assert len(sample) == 25
        assert all(0 <= int(x) < 1000 for x in sample)

    def test_reservoir_sample_short_stream(self):
        assert sorted(reservoir_sample(iter([1, 2, 3]), 10)) == [1, 2, 3]

    def test_train_test_split_partitions(self):
        items = list(range(50))
        train, test = train_test_split(items, train_fraction=0.6, seed=0)
        assert len(train) == 30 and len(test) == 20
        assert sorted(train + test) == items

    def test_train_test_split_bad_fraction(self):
        with pytest.raises(DatasetError):
            train_test_split([1], train_fraction=1.5)

    def test_chunked(self):
        chunks = list(chunked(list(range(7)), 3))
        assert chunks == [[0, 1, 2], [3, 4, 5], [6]]

    def test_chunked_bad_size(self):
        with pytest.raises(DatasetError):
            list(chunked([1], 0))
