"""Tests for the process-pool parallel backend."""

from __future__ import annotations

import pytest

from repro.errors import ParallelExecutionError
from repro.parallel.executor import ParallelCodec, default_worker_count


class TestConfiguration:
    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_invalid_workers_rejected(self, trained_codec):
        with pytest.raises(ParallelExecutionError):
            ParallelCodec(trained_codec, workers=0)

    def test_invalid_chunk_size_rejected(self, trained_codec):
        with pytest.raises(ParallelExecutionError):
            ParallelCodec(trained_codec, chunk_size=0)


class TestSerialFallback:
    def test_small_batches_run_serially(self, trained_codec, gdb_corpus):
        parallel = ParallelCodec(trained_codec, workers=4, serial_threshold=10_000)
        batch = gdb_corpus[:40]
        result = parallel.compress_many(batch)
        assert result == trained_codec.compress_many(batch)
        assert parallel.last_stats.workers == 1

    def test_single_worker_runs_serially(self, trained_codec, gdb_corpus):
        parallel = ParallelCodec(trained_codec, workers=1, serial_threshold=0)
        batch = gdb_corpus[:20]
        assert parallel.decompress_many(trained_codec.compress_many(batch)) == [
            trained_codec.preprocess(s) for s in batch
        ]


class TestParallelExecution:
    def test_parallel_matches_serial_output(self, plain_codec, mixed_corpus_small):
        """Spawned workers must reproduce the serial results in order."""
        batch = mixed_corpus_small[:120]
        parallel = ParallelCodec(plain_codec, workers=2, chunk_size=30, serial_threshold=0)
        compressed = parallel.compress_many(batch)
        assert compressed == plain_codec.compress_many(batch)
        assert parallel.last_stats.workers == 2
        assert parallel.last_stats.chunks == 4

        restored = parallel.decompress_many(compressed)
        assert restored == batch

    def test_codec_is_picklable(self, trained_codec):
        """The spawn-based pool requires the codec (pipeline included) to pickle."""
        import pickle

        clone = pickle.loads(pickle.dumps(trained_codec))
        assert clone.compress("COc1cc(C=O)ccc1O") == trained_codec.compress("COc1cc(C=O)ccc1O")
