"""Tests for the simulated CUDA kernels and device model."""

from __future__ import annotations

import pytest

from repro.errors import DecompressionError
from repro.parallel.gpu_model import (
    CPU_PROFILE,
    GPU_PROFILE,
    DeviceProfile,
    KernelCounters,
    SimulatedDevice,
)
from repro.parallel.kernels import compression_kernel, decompression_kernel


class TestKernelEquivalence:
    def test_compression_kernel_matches_serial_codec(self, trained_codec, mixed_corpus_small):
        """The simulated block kernel must produce byte-identical output."""
        for smiles in mixed_corpus_small[:50]:
            prepared = trained_codec.preprocess(smiles)
            kernel_out, _ = compression_kernel(prepared, trained_codec.table)
            assert kernel_out == trained_codec.compressor.compress_line(prepared)

    def test_decompression_kernel_matches_serial_codec(self, trained_codec, mixed_corpus_small):
        for smiles in mixed_corpus_small[:50]:
            compressed = trained_codec.compress(smiles)
            kernel_out, _ = decompression_kernel(compressed, trained_codec.table)
            assert kernel_out == trained_codec.decompress(compressed)

    def test_decompression_kernel_rejects_unknown_symbol(self, trained_codec):
        # U+0100 is outside the Latin-1 symbol space, so it can never be a symbol.
        with pytest.raises(DecompressionError):
            decompression_kernel("Ā", trained_codec.table)

    def test_empty_record(self, trained_codec):
        out, counters = compression_kernel("", trained_codec.table)
        assert out == ""
        assert counters.blocks == 1


class TestCounters:
    def test_compression_counters_scale_with_input(self, trained_codec):
        short, c_short = compression_kernel("CCO", trained_codec.table)
        long, c_long = compression_kernel("CCO" * 30, trained_codec.table)
        assert c_long.instructions > c_short.instructions
        assert c_long.storage_read_bytes > c_short.storage_read_bytes
        assert c_long.memory_bytes > c_short.memory_bytes

    def test_storage_bytes_match_record_sizes(self, trained_codec):
        prepared = trained_codec.preprocess("CC(C)Cc1ccc(cc1)C(C)C(=O)O")
        out, counters = compression_kernel(prepared, trained_codec.table)
        assert counters.storage_read_bytes == len(prepared) + 1
        assert counters.storage_write_bytes == len(out) + 1

    def test_counters_accumulate_across_records(self, trained_codec):
        counters = KernelCounters()
        _, counters = compression_kernel("CCO", trained_codec.table, counters)
        _, counters = compression_kernel("CCN", trained_codec.table, counters)
        assert counters.blocks == 2

    def test_merge(self):
        a = KernelCounters(instructions=5, memory_bytes=2, blocks=1)
        b = KernelCounters(instructions=3, storage_read_bytes=7, blocks=2)
        a.merge(b)
        assert a.instructions == 8
        assert a.storage_read_bytes == 7
        assert a.blocks == 3

    def test_as_dict_keys(self):
        keys = set(KernelCounters().as_dict())
        assert keys == {
            "instructions", "memory_bytes", "storage_read_bytes",
            "storage_write_bytes", "blocks",
        }


class TestDeviceModel:
    def test_gpu_faster_than_cpu_on_compute_heavy_work(self):
        counters = KernelCounters(
            instructions=10_000_000, memory_bytes=1_000_000,
            storage_read_bytes=100_000, storage_write_bytes=40_000, blocks=1000,
        )
        assert GPU_PROFILE.execution_time(counters) < CPU_PROFILE.execution_time(counters)

    def test_storage_traffic_bounds_both_devices(self):
        """With zero compute both devices take the same storage-bound time."""
        counters = KernelCounters(storage_read_bytes=1_000_000, storage_write_bytes=500_000)
        cpu = CPU_PROFILE.execution_time(counters)
        gpu = GPU_PROFILE.execution_time(counters)
        assert cpu == pytest.approx(gpu - GPU_PROFILE.launch_overhead, rel=1e-6)

    def test_execution_time_monotonic_in_instructions(self):
        light = KernelCounters(instructions=1000)
        heavy = KernelCounters(instructions=10_000_000)
        assert CPU_PROFILE.execution_time(heavy) > CPU_PROFILE.execution_time(light)

    def test_simulated_device_accumulates(self, trained_codec):
        device = SimulatedDevice(CPU_PROFILE)
        _, counters = compression_kernel("CCO", trained_codec.table)
        device.record(counters)
        first = device.elapsed_seconds()
        _, counters2 = compression_kernel("CCCCCC", trained_codec.table)
        device.record(counters2)
        assert device.elapsed_seconds() > first
        device.reset()
        assert device.elapsed_seconds() == 0.0
        assert device.launches == 0

    def test_profile_is_frozen(self):
        with pytest.raises(Exception):
            CPU_PROFILE.name = "other"  # type: ignore[misc]

    def test_custom_profile(self):
        profile = DeviceProfile(
            name="test", compute_throughput=1e9, memory_bandwidth=1e10,
            storage_bandwidth=1e8, launch_overhead=0.0,
        )
        counters = KernelCounters(instructions=1_000_000, storage_read_bytes=100)
        assert profile.execution_time(counters) > 0
