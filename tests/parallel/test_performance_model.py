"""Tests for the Figure 5 performance sweep."""

from __future__ import annotations

import pytest

from repro.parallel.gpu_model import CPU_PROFILE, GPU_PROFILE
from repro.parallel.performance_model import run_performance_sweep


@pytest.fixture(scope="module")
def sweep(request):
    from repro.datasets import mixed

    corpus = mixed.generate(240, seed=11)
    return run_performance_sweep(corpus[:120], corpus[120:], lmax_values=(5, 8))


class TestSweepStructure:
    def test_point_count(self, sweep):
        # 2 lmax values x 2 devices x 2 operations
        assert len(sweep.points) == 8

    def test_series_ordered_by_lmax(self, sweep):
        series = sweep.series(CPU_PROFILE.name, "compression")
        assert [p.lmax for p in series] == [5, 8]

    def test_normalization_reference_is_one(self, sweep):
        for operation in ("compression", "decompression"):
            reference = sweep.series(CPU_PROFILE.name, operation)[-1]
            assert reference.normalized == pytest.approx(1.0)

    def test_counters_recorded(self, sweep):
        assert all(p.counters["blocks"] > 0 for p in sweep.points)

    def test_unknown_operation_rejected(self, sweep):
        with pytest.raises(ValueError):
            sweep.speedup("transmogrification")


class TestPaperShape:
    def test_gpu_faster_than_cpu(self, sweep):
        for operation in ("compression", "decompression"):
            assert sweep.speedup(operation) > 1.0

    def test_compression_speedup_larger_than_decompression(self, sweep):
        assert sweep.speedup("compression") > sweep.speedup("decompression")

    def test_compression_speedup_in_paper_range(self, sweep):
        assert 4.0 < sweep.speedup("compression") < 11.0

    def test_decompression_speedup_in_paper_range(self, sweep):
        assert 1.3 < sweep.speedup("decompression") < 3.5

    def test_times_roughly_flat_in_lmax(self, sweep):
        for device in (CPU_PROFILE.name, GPU_PROFILE.name):
            for operation in ("compression", "decompression"):
                values = [p.normalized for p in sweep.series(device, operation)]
                assert max(values) - min(values) < 0.25
