"""Integration tests for the paper-experiment drivers (smoke scale).

These are the same drivers the benchmark harness runs at larger scale; here
they execute on tiny corpora so the whole suite stays fast, and the
assertions check the *qualitative shape* of the paper's results.
"""

from __future__ import annotations

import pytest

from repro.dictionary.prepopulation import PrePopulation
from repro.experiments import (
    ExperimentScale,
    run_figure4,
    run_figure5,
    run_table1,
    run_table2,
)
from repro.experiments.table2 import DATASET_ORDER

# The experiment drivers retrain dictionaries and recompress corpora for every
# table/figure — the heaviest non-benchmark suite; keep it out of the fast loop.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def scale() -> ExperimentScale:
    return ExperimentScale.smoke()


@pytest.fixture(scope="module")
def table1_result(scale):
    return run_table1(scale=scale)


@pytest.fixture(scope="module")
def table2_result(scale):
    return run_table2(scale=scale)


@pytest.fixture(scope="module")
def figure4_result(scale):
    return run_figure4(scale=scale)


@pytest.fixture(scope="module")
def figure5_result(scale):
    return run_figure5(scale=scale, lmax_values=(5, 8))


class TestScales:
    def test_scale_presets(self):
        assert ExperimentScale.smoke().training_size < ExperimentScale.benchmark().training_size
        assert ExperimentScale.benchmark().training_size < ExperimentScale.paper().training_size


class TestTable1:
    def test_all_six_configurations_measured(self, table1_result):
        assert len(table1_result.ratios) == 6

    def test_ratios_are_sane(self, table1_result):
        assert all(0.2 < ratio < 0.7 for ratio in table1_result.ratios.values())

    def test_preprocessing_always_helps(self, table1_result):
        """Paper Table I: every preprocessed row beats its unprocessed twin."""
        assert table1_result.preprocessing_always_helps()

    def test_smiles_prepopulation_is_best(self, table1_result):
        """Paper Table I: the best configuration uses the SMILES alphabet seeding."""
        (preprocessing, policy), _ = table1_result.best()
        assert preprocessing is True
        assert policy is PrePopulation.SMILES_ALPHABET

    def test_table_rendering(self, table1_result):
        text = table1_result.to_table().to_text()
        assert "SMILES alphabet" in text and "Pre-processing" in text


class TestTable2:
    def test_full_matrix_measured(self, table2_result):
        assert len(table2_result.ratios) == 16

    def test_diagonal_among_best_per_test_set(self, table2_result):
        """Paper Table II: the matching training set is (near-)optimal per test set."""
        assert table2_result.diagonal_is_best_per_test()

    def test_gdb_dictionary_generalizes_worst(self, table2_result):
        """Paper Table II: the GDB-17-trained dictionary has the worst cross average."""
        averages = {
            train: table2_result.row_average(train, exclude_self=True)
            for train in DATASET_ORDER
        }
        assert max(averages, key=averages.get) == "GDB-17"

    def test_mixed_dictionary_has_best_overall_average(self, table2_result):
        """Paper Table II: the MIXED dictionary is the best shared dictionary."""
        assert table2_result.best_training_set() == "MIXED"

    def test_table_rendering(self, table2_result):
        assert "Train \\ Test" in table2_result.to_table().to_text()


class TestFigure4:
    def test_all_tools_measured(self, figure4_result):
        assert set(figure4_result.ratios) == {
            "ZSMILES", "SHOCO", "FSST", "Bzip2", "ZSMILES + Bzip2",
        }

    def test_zsmiles_beats_shoco(self, figure4_result):
        assert figure4_result.ratios["ZSMILES"] < figure4_result.ratios["SHOCO"]

    def test_file_bzip2_beats_short_string_tools(self, figure4_result):
        """Paper Figure 4: the stateful file compressor wins on raw ratio."""
        assert figure4_result.ratios["Bzip2"] < figure4_result.ratios["ZSMILES"]
        assert figure4_result.ratios["Bzip2"] < figure4_result.ratios["FSST"]

    def test_zsmiles_close_to_or_better_than_fsst(self, figure4_result):
        """Paper: ZSMILES is x1.13 better than FSST; on the synthetic corpus the
        two are close — assert ZSMILES is at least within 20% of FSST."""
        assert figure4_result.zsmiles_vs_fsst_factor() > 0.8

    def test_readability_and_random_access_flags(self, figure4_result):
        props = figure4_result.properties
        assert props["ZSMILES"].readable_output
        assert not props["Bzip2"].random_access
        assert figure4_result.best_random_access_tool() in {"ZSMILES", "FSST"}

    def test_table_rendering(self, figure4_result):
        assert "Compression Ratio" in figure4_result.to_table().to_text()


class TestFigure5:
    def test_speedups_match_paper_shape(self, figure5_result):
        speedups = figure5_result.speedups()
        assert speedups["compression"] > speedups["decompression"] > 1.0
        assert 4.0 < speedups["compression"] < 11.0
        assert 1.3 < speedups["decompression"] < 3.5

    def test_flat_in_lmax(self, figure5_result):
        assert figure5_result.flat_in_lmax("compression")
        assert figure5_result.flat_in_lmax("decompression")

    def test_two_tables_rendered(self, figure5_result):
        tables = figure5_result.to_tables()
        assert len(tables) == 2
        assert "Figure 5a" in tables[0].title and "Figure 5b" in tables[1].title
