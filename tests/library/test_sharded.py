"""Sharded serving: parity with the single-shard store, lazy opens, caching.

The acceptance criterion lives here: records read through
``ShardedCorpusStore`` — any shard count, mmap on or off — and through the
``CorpusLibrary`` facade are byte-identical to a single-shard ``CorpusStore``
over the same corpus.
"""

from __future__ import annotations

import pytest

from repro.errors import LibraryError, ManifestError, RandomAccessError
from repro.library import CorpusLibrary, LibraryManifest, ShardedCorpusStore, pack_library
from repro.store import CorpusStore, RecordReader, open_reader


@pytest.fixture(scope="module")
def reference(single_shard_path, corpus):
    """Every record as served by the reference single-shard CorpusStore."""
    with CorpusStore(single_shard_path) as store:
        records = list(store.iter_all())
    assert len(records) == len(corpus)
    return records


class TestCrossShardParity:
    @pytest.mark.parametrize("shards", [1, 3, 5, 120])
    @pytest.mark.parametrize("use_mmap", [False, True])
    def test_byte_identical_to_single_shard(
        self, tmp_path_factory, corpus, engine, reference, shards, use_mmap
    ):
        directory = tmp_path_factory.mktemp("parity") / f"lib-{shards}-{use_mmap}"
        info = pack_library(directory, corpus, engine, shards=shards, records_per_block=8)
        assert info.shard_count == min(shards, len(corpus))
        with ShardedCorpusStore.open(directory, use_mmap=use_mmap) as store:
            assert len(store) == len(reference)
            assert list(store.iter_all()) == reference
            assert store.get_many(range(len(reference))) == reference
            assert [store.get(i) for i in (0, 7, 8, 59, 119)] == [
                reference[i] for i in (0, 7, 8, 59, 119)
            ]
            assert store.slice(37, 51) == reference[37:51]

    def test_raw_records_match_single_shard(self, library_dir, single_shard_path):
        with ShardedCorpusStore.open(library_dir) as store, CorpusStore(
            single_shard_path
        ) as ref:
            for index in (0, 39, 40, 80, 119):
                assert store.get_raw(index) == ref.get_raw(index)

    def test_facade_parity(self, library_dir, reference):
        with CorpusLibrary.open(library_dir) as lib:
            assert len(lib) == len(reference)
            assert lib.get_many(range(len(reference))) == reference
            assert lib[64] == reference[64]
            assert lib.line(64) == reference[64]
            assert lib.lines([3, 99]) == [reference[3], reference[99]]

    def test_facade_over_bare_zss(self, single_shard_path, reference):
        """A lone .zss opens as a synthetic one-shard library."""
        with CorpusLibrary.open(single_shard_path) as lib:
            assert lib.shard_count == 1
            assert list(lib.iter_all()) == reference


class TestServingBehavior:
    def test_out_of_range(self, library_dir):
        with ShardedCorpusStore.open(library_dir) as store:
            with pytest.raises(RandomAccessError):
                store.get(len(store))
            with pytest.raises(RandomAccessError):
                store.get(-1)
            with pytest.raises(RandomAccessError):
                store.slice(-1, 4)

    def test_lazy_shard_open(self, library_dir, reference):
        store = ShardedCorpusStore.open(library_dir)
        try:
            assert len(store) == len(reference)      # routing needs no file I/O
            assert store.open_shard_count == 0
            assert store.get(100) == reference[100]  # lives in shard 2
            assert store.open_shard_count == 1
            assert store.get(0) == reference[0]      # opens shard 0
            assert store.open_shard_count == 2
        finally:
            store.close()

    def test_shared_lru_budget_across_shards(self, library_dir, reference):
        """N shards share ONE cache budget instead of hoarding one each."""
        with ShardedCorpusStore.open(library_dir, cache_blocks=2) as store:
            assert store.cache_capacity == 2
            # Touch one block in every shard, then some more blocks.
            for index in (0, 40, 80, 8, 48, 88):
                assert store.get(index) == reference[index]
            assert store.open_shard_count == 3
            assert store.cached_blocks <= 2

    def test_cache_hits_counted_across_shards(self, library_dir, reference):
        with ShardedCorpusStore.open(library_dir) as store:
            assert store.get(0) == reference[0]
            assert store.get(1) == reference[1]  # same block -> shared-cache hit
            assert store.cache_hits >= 1

    def test_manifest_record_count_mismatch_detected(self, library_dir, tmp_path):
        manifest = LibraryManifest.load(library_dir)
        lying = LibraryManifest(
            shards=tuple(
                type(shard)(
                    name=shard.name,
                    start=shard.start * 2,
                    records=shard.records * 2,
                    blocks=shard.blocks,
                    records_per_block=shard.records_per_block,
                    file_bytes=shard.file_bytes,
                )
                for shard in manifest.shards
            ),
            metadata=manifest.metadata,
        )
        store = ShardedCorpusStore(lying, library_dir)
        with pytest.raises(ManifestError, match="promises"):
            store.get(0)

    def test_close_is_idempotent_and_reopens(self, library_dir, reference):
        store = ShardedCorpusStore.open(library_dir)
        assert store.get(5) == reference[5]
        store.close()
        store.close()
        assert store.get(5) == reference[5]  # path-backed shards reopen on demand
        store.close()


class TestProtocolIntegration:
    def test_satisfies_record_reader(self, library_dir):
        with ShardedCorpusStore.open(library_dir) as store:
            assert isinstance(store, RecordReader)
        with CorpusLibrary.open(library_dir) as lib:
            assert isinstance(lib, RecordReader)

    def test_open_reader_dispatches_manifests(self, library_dir, reference):
        for source in (library_dir, library_dir / "library.json"):
            with open_reader(source) as reader:
                assert isinstance(reader, CorpusLibrary)
                assert reader.get(77) == reference[77]

    def test_open_errors(self, tmp_path):
        with pytest.raises(LibraryError):
            CorpusLibrary.open(tmp_path / "missing.zss")
        with pytest.raises(ManifestError):
            ShardedCorpusStore.open(tmp_path)
