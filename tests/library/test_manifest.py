"""Tests for ``library.json``: round trips, routing, validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import LibraryError, ManifestError, RandomAccessError
from repro.library import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    LibraryManifest,
    ShardEntry,
    resolve_manifest_path,
    split_counts,
)


def entry(name: str, start: int, records: int) -> ShardEntry:
    return ShardEntry(
        name=name, start=start, records=records,
        blocks=max(1, records // 8), records_per_block=8, file_bytes=100,
    )


@pytest.fixture()
def manifest() -> LibraryManifest:
    return LibraryManifest(
        shards=(
            entry("shard-0000.zss", 0, 40),
            entry("shard-0001.zss", 40, 40),
            entry("shard-0002.zss", 80, 33),
        ),
        metadata={"dictionary_embedded": True},
    )


class TestRoundTrip:
    def test_json_round_trip(self, manifest):
        assert LibraryManifest.from_json(manifest.to_json()) == manifest

    def test_json_is_deterministic(self, manifest):
        assert manifest.to_json() == manifest.to_json()
        obj = json.loads(manifest.to_json())
        assert obj["format"] == MANIFEST_FORMAT
        assert obj["total_records"] == 113

    def test_save_load_file_and_directory(self, manifest, tmp_path):
        path = manifest.save(tmp_path)           # directory -> library.json
        assert path == tmp_path / MANIFEST_NAME
        assert LibraryManifest.load(path) == manifest
        assert LibraryManifest.load(tmp_path) == manifest  # directory load

    def test_from_shards_matches_written_manifest(self, library_dir):
        written = LibraryManifest.load(library_dir)
        rebuilt = LibraryManifest.from_shards(
            [library_dir / shard.name for shard in written.shards],
            metadata=written.metadata,
            root=library_dir,
        )
        assert rebuilt == written

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(ManifestError):
            LibraryManifest.load(tmp_path / "nope.json")


class TestRouting:
    def test_totals(self, manifest):
        assert manifest.total_records == 113
        assert manifest.shard_count == 3

    @pytest.mark.parametrize(
        "index,expected",
        [(0, (0, 0)), (39, (0, 39)), (40, (1, 0)), (79, (1, 39)), (80, (2, 0)), (112, (2, 32))],
    )
    def test_locate(self, manifest, index, expected):
        assert manifest.locate(index) == expected

    @pytest.mark.parametrize("index", [-1, 113, 10_000])
    def test_locate_out_of_range(self, manifest, index):
        with pytest.raises(RandomAccessError):
            manifest.locate(index)


class TestValidation:
    def test_needs_shards(self):
        with pytest.raises(ManifestError):
            LibraryManifest(shards=())

    def test_rejects_gap_in_ranges(self):
        with pytest.raises(ManifestError, match="contiguous"):
            LibraryManifest(shards=(entry("a.zss", 0, 10), entry("b.zss", 11, 5)))

    def test_rejects_overlap(self):
        with pytest.raises(ManifestError, match="contiguous"):
            LibraryManifest(shards=(entry("a.zss", 0, 10), entry("b.zss", 9, 5)))

    def test_rejects_nonzero_first_start(self):
        with pytest.raises(ManifestError, match="contiguous"):
            LibraryManifest(shards=(entry("a.zss", 5, 10),))

    def test_rejects_duplicate_names(self):
        with pytest.raises(ManifestError, match="duplicate"):
            LibraryManifest(shards=(entry("a.zss", 0, 10), entry("a.zss", 10, 5)))

    def test_rejects_escaping_names(self):
        with pytest.raises(ManifestError, match="relative"):
            LibraryManifest(shards=(entry("../a.zss", 0, 10),))
        with pytest.raises(ManifestError, match="relative"):
            LibraryManifest(shards=(entry("/abs/a.zss", 0, 10),))

    def test_rejects_wrong_version(self, manifest):
        with pytest.raises(ManifestError, match="version"):
            LibraryManifest(shards=manifest.shards, version=99)

    def test_rejects_wrong_format_marker(self, manifest):
        obj = json.loads(manifest.to_json())
        obj["format"] = "something-else"
        with pytest.raises(ManifestError, match="format"):
            LibraryManifest.from_json(json.dumps(obj))

    def test_rejects_total_mismatch(self, manifest):
        obj = json.loads(manifest.to_json())
        obj["total_records"] = 7
        with pytest.raises(ManifestError, match="claims"):
            LibraryManifest.from_json(json.dumps(obj))

    def test_rejects_non_json(self):
        with pytest.raises(ManifestError):
            LibraryManifest.from_json("{not json")

    def test_rejects_non_string_shard_name(self, manifest):
        obj = json.loads(manifest.to_json())
        obj["shards"][0]["name"] = 5
        with pytest.raises(ManifestError, match="string"):
            LibraryManifest.from_json(json.dumps(obj))


class TestHelpers:
    def test_resolve_manifest_path(self, library_dir, tmp_path):
        manifest_file = library_dir / MANIFEST_NAME
        assert resolve_manifest_path(library_dir) == manifest_file
        assert resolve_manifest_path(manifest_file) == manifest_file
        assert resolve_manifest_path(tmp_path) is None            # dir, no manifest
        assert resolve_manifest_path(tmp_path / "x.zss") is None  # not a manifest

    def test_split_counts_balanced(self):
        assert split_counts(10, 3) == [4, 3, 3]
        assert split_counts(9, 3) == [3, 3, 3]
        assert split_counts(2, 5) == [1, 1]   # clamped: no empty shards
        assert split_counts(0, 3) == [0]
        with pytest.raises(LibraryError):
            split_counts(10, 0)

    def test_pack_library_writes_shard_metadata(self, library_dir):
        manifest = LibraryManifest.load(library_dir)
        assert manifest.metadata["dictionary_embedded"] is True
        assert sum(shard.records for shard in manifest.shards) == 120
        assert [shard.start for shard in manifest.shards] == [0, 40, 80]
