"""Async serving surface: async results must equal the sync ones, byte for byte."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import LibraryError, RandomAccessError
from repro.library import AsyncCorpusLibrary, CorpusLibrary


@pytest.fixture(scope="module")
def reference(library_dir):
    with CorpusLibrary.open(library_dir) as lib:
        return list(lib.iter_all())


def run(coro):
    return asyncio.run(coro)


class TestAsyncParity:
    def test_get_matches_sync(self, library_dir, reference):
        async def main():
            async with AsyncCorpusLibrary.open(library_dir, pool_size=2) as lib:
                assert len(lib) == len(reference)
                for index in (0, 39, 40, 80, 119):
                    assert await lib.get(index) == reference[index]

        run(main())

    @pytest.mark.parametrize("use_mmap", [False, True])
    def test_get_many_matches_sync(self, library_dir, reference, use_mmap):
        async def main():
            async with AsyncCorpusLibrary.open(
                library_dir, pool_size=3, use_mmap=use_mmap
            ) as lib:
                everything = await lib.get_many(range(len(reference)))
                assert everything == reference
                shuffled = [7, 119, 0, 80, 41, 3, 90]
                assert await lib.get_many(shuffled) == [reference[i] for i in shuffled]
                assert await lib.get_many([]) == []

        run(main())

    def test_stream_matches_sync(self, library_dir, reference):
        async def main():
            async with AsyncCorpusLibrary.open(library_dir, pool_size=2) as lib:
                assert [r async for r in lib.stream()] == reference
                assert [r async for r in lib.stream(10, 57, batch_size=7)] == reference[10:57]
                assert [r async for r in lib.stream(100, 10_000)] == reference[100:]

        run(main())

    def test_concurrent_requests_interleave_correctly(self, library_dir, reference):
        """Many in-flight awaits over a small pool still return the right bytes."""

        async def main():
            async with AsyncCorpusLibrary.open(library_dir, pool_size=2) as lib:
                results = await asyncio.gather(
                    *(lib.get(i % len(reference)) for i in range(64))
                )
                assert results == [reference[i % len(reference)] for i in range(64)]

        run(main())


class TestAsyncLifecycle:
    def test_pool_shares_one_cache_budget(self, library_dir, reference):
        """A block decoded by any pooled reader is a cache hit for all."""

        async def main():
            async with AsyncCorpusLibrary.open(
                library_dir, pool_size=3, cache_blocks=2
            ) as lib:
                for _ in range(6):  # same record through rotating readers
                    assert await lib.get(0) == reference[0]
                caches = {id(reader.store._cache) for reader in lib._readers}
                assert len(caches) == 1          # one shared BlockCache
                shared = lib._readers[0].store._cache
                assert shared.capacity == 2
                assert len(shared) <= 2
                assert shared.hits >= 5          # only the first get decoded

        run(main())

    def test_pool_size_and_validation(self, library_dir):
        async def main():
            async with AsyncCorpusLibrary.open(library_dir, pool_size=3) as lib:
                assert lib.pool_size == 3

        run(main())
        with pytest.raises(LibraryError):
            AsyncCorpusLibrary.open(library_dir, pool_size=0)

    def test_closed_library_rejects_requests(self, library_dir):
        async def main():
            lib = AsyncCorpusLibrary.open(library_dir, pool_size=1)
            await lib.aclose()
            with pytest.raises(LibraryError, match="closed"):
                await lib.get(0)

        run(main())

    def test_stream_rejects_bad_ranges(self, library_dir):
        async def main():
            async with AsyncCorpusLibrary.open(library_dir, pool_size=1) as lib:
                with pytest.raises(RandomAccessError):
                    async for _ in lib.stream(-1):
                        pass
                with pytest.raises(LibraryError):
                    async for _ in lib.stream(0, 10, batch_size=0):
                        pass

        run(main())
