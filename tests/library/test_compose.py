"""Manifest-level composition: concatenating libraries without repacking."""

from __future__ import annotations

import pytest

from repro.errors import ManifestError
from repro.library import (
    CorpusLibrary,
    LibraryManifest,
    compose_libraries,
    compose_manifests,
    pack_library,
)
from repro.store import pack_records


@pytest.fixture(scope="module")
def composed_root(tmp_path_factory, corpus, engine):
    """Two libraries + one bare shard packed side by side under one root."""
    root = tmp_path_factory.mktemp("compose") / "corpora"
    root.mkdir()
    pack_library(root / "a.library", corpus[:50], engine, shards=2, records_per_block=8)
    pack_library(root / "b.library", corpus[50:100], engine, shards=3, records_per_block=8)
    pack_records(root / "tail.zss", corpus[100:], engine, records_per_block=8)
    return root


class TestComposeLibraries:
    def test_composed_library_serves_the_concatenation(self, composed_root, corpus):
        manifest_path = compose_libraries(
            composed_root, [composed_root / "a.library", composed_root / "b.library",
                            composed_root / "tail.zss"]
        )
        with CorpusLibrary.open(manifest_path) as library:
            assert len(library) == len(corpus)
            assert library.shard_count == 6  # 2 + 3 + 1
            assert list(library.iter_all()) == corpus
            # Spot-check routing across source boundaries.
            for index in (0, 49, 50, 99, 100, len(corpus) - 1):
                assert library.get(index) == corpus[index]

    def test_shard_files_untouched(self, composed_root):
        """Composition is a JSON write: no shard is modified or copied."""
        before = {
            path: (path.stat().st_mtime_ns, path.read_bytes())
            for path in sorted(composed_root.rglob("*.zss"))
        }
        compose_libraries(
            composed_root / "again.json",
            [composed_root / "a.library", composed_root / "b.library"],
        )
        after = {
            path: (path.stat().st_mtime_ns, path.read_bytes())
            for path in sorted(composed_root.rglob("*.zss"))
        }
        assert before == after

    def test_entries_copied_from_source_manifests(self, composed_root):
        manifest = compose_manifests(
            [composed_root / "a.library", composed_root / "b.library"], composed_root
        )
        source_a = LibraryManifest.load(composed_root / "a.library")
        assert manifest.shards[0].records == source_a.shards[0].records
        assert manifest.shards[0].blocks == source_a.shards[0].blocks
        assert manifest.shards[0].name == "a.library/shard-0000.zss"
        # Ranges re-based: b's first shard starts where a ends.
        assert manifest.shards[2].start == source_a.total_records

    def test_metadata_records_sources_by_default(self, composed_root):
        manifest = compose_manifests([composed_root / "a.library"], composed_root)
        assert "composed_from" in manifest.metadata

    def test_explicit_json_output_path(self, composed_root, corpus):
        manifest_path = compose_libraries(
            composed_root / "subset.json", [composed_root / "b.library"]
        )
        assert manifest_path.name == "subset.json"
        with CorpusLibrary.open(manifest_path) as library:
            assert list(library.iter_all()) == corpus[50:100]

    def test_order_is_concatenation_order(self, composed_root, corpus):
        manifest_path = compose_libraries(
            composed_root / "reversed.json",
            [composed_root / "b.library", composed_root / "a.library"],
        )
        with CorpusLibrary.open(manifest_path) as library:
            assert list(library.iter_all()) == corpus[50:100] + corpus[:50]


class TestComposeValidation:
    def test_shard_outside_root_rejected(self, composed_root, tmp_path):
        with pytest.raises(ManifestError, match="common ancestor"):
            compose_libraries(tmp_path / "elsewhere", [composed_root / "a.library"])

    def test_empty_sources_rejected(self, composed_root):
        with pytest.raises(ManifestError, match="at least one"):
            compose_libraries(composed_root / "empty.json", [])

    def test_same_library_twice_rejected(self, composed_root):
        # compose routes files; listing one twice would alias shard names.
        with pytest.raises(ManifestError, match="duplicate"):
            compose_libraries(
                composed_root / "dup.json",
                [composed_root / "a.library", composed_root / "a.library"],
            )

    def test_non_library_source_rejected(self, composed_root, tmp_path):
        bogus = composed_root / "bogus.txt"
        bogus.write_text("hi", encoding="utf-8")
        with pytest.raises(ManifestError, match="cannot compose"):
            compose_libraries(composed_root / "x.json", [bogus])
