"""Shared fixtures for the library-serving test suites."""

from __future__ import annotations

import pytest

from repro.engine import ZSmilesEngine
from repro.library import pack_library
from repro.store import pack_records


@pytest.fixture(scope="module")
def corpus(mixed_corpus_small):
    """120 records: small enough to be fast, enough for multi-shard splits."""
    return mixed_corpus_small[:120]


@pytest.fixture(scope="module")
def engine(plain_codec):
    """Serial engine over the no-preprocessing codec (byte-exact round trips)."""
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as eng:
        yield eng


@pytest.fixture(scope="module")
def single_shard_path(tmp_path_factory, corpus, engine):
    """The reference layout: the whole corpus in one .zss shard."""
    path = tmp_path_factory.mktemp("single") / "corpus.zss"
    pack_records(path, corpus, engine, records_per_block=8)
    return path


@pytest.fixture(scope="module")
def library_dir(tmp_path_factory, corpus, engine):
    """A 3-shard library over the same corpus (blocks of 8)."""
    directory = tmp_path_factory.mktemp("lib") / "corpus.library"
    pack_library(directory, corpus, engine, shards=3, records_per_block=8)
    return directory
