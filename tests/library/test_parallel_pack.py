"""Per-shard parallel packing: ``shard_jobs`` is byte-identical to sequential."""

from __future__ import annotations

import pytest

from repro.errors import LibraryError
from repro.library import CorpusLibrary, LibraryWriter, pack_library


def _shard_bytes(directory):
    return {
        path.name: path.read_bytes() for path in sorted(directory.glob("*.zss"))
    }


class TestParallelPackingParity:
    @pytest.fixture(scope="class")
    def packed_pair(self, tmp_path_factory, corpus, engine):
        """The same corpus packed sequentially and with shard_jobs=3."""
        base = tmp_path_factory.mktemp("shard_jobs")
        sequential = base / "sequential.library"
        parallel = base / "parallel.library"
        info_seq = pack_library(
            sequential, corpus, engine, shards=4, records_per_block=8
        )
        info_par = pack_library(
            parallel, corpus, engine, shards=4, records_per_block=8, shard_jobs=3
        )
        return sequential, parallel, info_seq, info_par

    def test_every_shard_byte_identical(self, packed_pair):
        sequential, parallel, _, _ = packed_pair
        seq_bytes = _shard_bytes(sequential)
        par_bytes = _shard_bytes(parallel)
        assert list(seq_bytes) == list(par_bytes) == [
            f"shard-{i:04d}.zss" for i in range(4)
        ]
        for name in seq_bytes:
            assert par_bytes[name] == seq_bytes[name], f"{name} differs"

    def test_manifest_byte_identical(self, packed_pair):
        sequential, parallel, _, _ = packed_pair
        assert (parallel / "library.json").read_bytes() == (
            sequential / "library.json"
        ).read_bytes()

    def test_pack_summaries_agree(self, packed_pair):
        _, _, info_seq, info_par = packed_pair
        assert info_par.records == info_seq.records
        assert info_par.payload_bytes == info_seq.payload_bytes
        assert info_par.file_bytes == info_seq.file_bytes
        assert info_par.original_bytes == info_seq.original_bytes

    def test_parallel_pack_serves_correctly(self, packed_pair, corpus):
        _, parallel, _, _ = packed_pair
        with CorpusLibrary.open(parallel) as library:
            assert list(library.iter_all()) == corpus


class TestShardJobsKnob:
    def test_more_jobs_than_shards_is_clamped(self, tmp_path, corpus, engine):
        directory = tmp_path / "clamped.library"
        info = pack_library(
            directory, corpus[:24], engine, shards=2, records_per_block=8,
            shard_jobs=16,
        )
        assert info.shard_count == 2
        with CorpusLibrary.open(directory) as library:
            assert list(library.iter_all()) == corpus[:24]

    def test_single_job_stays_in_process(self, tmp_path, corpus, engine):
        directory = tmp_path / "single.library"
        info = pack_library(
            directory, corpus[:16], engine, shards=2, records_per_block=8,
            shard_jobs=1,
        )
        assert info.shard_count == 2

    def test_invalid_shard_jobs_rejected(self, tmp_path, engine):
        with pytest.raises(LibraryError, match="shard_jobs"):
            LibraryWriter(tmp_path / "x.library", engine, shards=2, shard_jobs=0)
