"""Shared fixtures for the fault-injection suites.

One pristine multi-shard library is packed per module; tests that corrupt
bytes always work on their own tmp copies (the golden-fixture invariant:
pinned bytes are never touched).

The fault-schedule seed is pinned — ``ZSMILES_FAULT_SEED`` overrides it, and
CI exports the same value — so every run replays the identical fault plan.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.engine import ZSmilesEngine
from repro.library import pack_library

#: The one seed every chaos plan in the suite derives from.
FAULT_SEED = int(os.environ.get("ZSMILES_FAULT_SEED", "20240917"))


@pytest.fixture(scope="module")
def corpus(mixed_corpus_small):
    """120 records across 3 shards: small, fast, multi-shard."""
    return mixed_corpus_small[:120]


@pytest.fixture(scope="module")
def engine(plain_codec):
    """Serial engine over the no-preprocessing codec (byte-exact round trips)."""
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as eng:
        yield eng


@pytest.fixture(scope="module")
def pristine_library(tmp_path_factory, corpus, engine):
    """A 3-shard library over the corpus (blocks of 8).  Never corrupted."""
    directory = tmp_path_factory.mktemp("faults_lib") / "corpus.library"
    pack_library(directory, corpus, engine, shards=3, records_per_block=8)
    return directory


@pytest.fixture(scope="module")
def pristine_shard(tmp_path_factory, corpus, engine):
    """A single 5-block ``.zss`` shard of 40 records.  Never corrupted."""
    from repro.store import pack_records

    path = tmp_path_factory.mktemp("faults_shard") / "corpus.zss"
    pack_records(path, corpus[:40], engine, records_per_block=8)
    return path


@pytest.fixture()
def library_copy(pristine_library, tmp_path):
    """A per-test scratch copy of the library, safe to corrupt."""
    target = tmp_path / "scratch.library"
    shutil.copytree(pristine_library, target)
    return target


@pytest.fixture()
def shard_copy(pristine_shard, tmp_path):
    """A per-test scratch copy of the shard, safe to corrupt."""
    target = tmp_path / "scratch.zss"
    shutil.copyfile(pristine_shard, target)
    return target
