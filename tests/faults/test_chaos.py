"""The chaos acceptance suite.

Seeded bit flips and truncations land on *copies* of a packed library's
shards; one serving replica is SIGKILLed mid-campaign; a fault-injecting
proxy resets and drops connections on another.  The pinned outcomes:

* ``fsck`` detects 100% of the injected corruptions (every faulted shard is
  flagged, no clean shard is),
* ``fsck --repair`` restores the damaged shards byte-identically from a
  healthy replica,
* a GA campaign over the faulty replica set completes with byte-identical
  composed manifests, stats and top-hits versus the fault-free run.

The fault-schedule seed is pinned (``ZSMILES_FAULT_SEED``), so CI replays
the identical corruption plan every run.
"""

from __future__ import annotations

import random
import shutil
from pathlib import Path

import pytest

from repro.core.codec import ZSmilesCodec
from repro.engine import ZSmilesEngine
from repro.faults import (
    BitFlip,
    FaultSchedule,
    FaultyProxy,
    apply_corruptions,
)
from repro.library import pack_library
from repro.server import BackgroundServer, ServerFleet
from repro.store import fsck_path, read_footer, repair_path

from ..campaign.conftest import small_config
from ..campaign.test_driver import (
    deterministic_stats,
    run_campaign_to,
    workdir_bytes,
)
from .conftest import FAULT_SEED


@pytest.fixture(scope="module")
def chaos_corpus(gdb_corpus):
    """Valid SMILES (the GA operators breed over them)."""
    return list(gdb_corpus)


@pytest.fixture(scope="module")
def chaos_library(tmp_path_factory, chaos_corpus):
    """The pristine 3-shard library every chaos scenario copies from."""
    directory = tmp_path_factory.mktemp("chaos_lib") / "corpus.library"
    codec = ZSmilesCodec.train(chaos_corpus, preprocessing=True, lmax=8)
    with ZSmilesEngine.from_codec(codec, backend="kernel") as engine:
        pack_library(directory, chaos_corpus, engine, shards=3, records_per_block=16)
    return directory


class TestSeededCorruptionDetectionAndRepair:
    def test_fsck_detects_every_injected_fault_and_repairs_byte_identical(
        self, chaos_library, tmp_path
    ):
        faulty = tmp_path / "faulty.library"
        replica = tmp_path / "replica.library"
        shutil.copytree(chaos_library, faulty)
        shutil.copytree(chaos_library, replica)

        schedule = FaultSchedule(FAULT_SEED)
        plan = schedule.plan_corruptions(
            sorted(faulty.glob("*.zss")), flips=3, truncations=1
        )
        applied = apply_corruptions(plan)
        assert len(applied) == 4
        faulted_shards = {Path(fault.path).name for fault in plan}

        # Detection: exactly the faulted shards are flagged — every injected
        # corruption found, no healthy shard accused.
        report = fsck_path(faulty)
        assert not report.clean
        assert set(report.damaged_shards()) == faulted_shards

        # Repair from the healthy replica: byte-identical restoration.
        result = repair_path(faulty, replica=replica)
        assert result.clean
        assert not result.failed
        assert set(result.repaired) == faulted_shards
        for shard in sorted(chaos_library.glob("*.zss")):
            assert (faulty / shard.name).read_bytes() == shard.read_bytes()
        assert (
            (faulty / "library.json").read_bytes()
            == (chaos_library / "library.json").read_bytes()
        )

    def test_repair_without_any_source_reports_failure(
        self, chaos_library, tmp_path
    ):
        faulty = tmp_path / "faulty.library"
        shutil.copytree(chaos_library, faulty)
        plan = FaultSchedule(FAULT_SEED).plan_corruptions(
            sorted(faulty.glob("*.zss")), flips=1
        )
        apply_corruptions(plan)
        result = repair_path(faulty)  # nothing to restore from
        assert not result.clean
        assert result.failed and not result.repaired


class TestCampaignOverFaultyReplicas:
    def test_campaign_completes_byte_identical_despite_chaos(
        self, chaos_library, tmp_path
    ):
        # The oracle: the same campaign straight over the local library.
        config = small_config(generations=3, immigrants=4)
        local = run_campaign_to(tmp_path / "local", chaos_library, config)

        # Replica 1: a library copy with a corrupted shard, behind a proxy
        # scripted to reset and drop connections (stream cuts + quarantined
        # blocks force failovers).  Replica 2: a SIGKILL-able fleet worker.
        # Replica 3: a stable in-thread server over clean bytes.
        damaged = tmp_path / "damaged.library"
        shutil.copytree(chaos_library, damaged)
        schedule = FaultSchedule(FAULT_SEED)
        # Corrupt *block payloads* specifically (seeded choice of block and
        # offset): payload rot is the replica-local, retryable failure mode
        # — the campaign's reads of the bad block must fail over, while a
        # torn footer would be a fatal open error, a different scenario
        # (covered by the fsck detection test above).
        rng = random.Random(FAULT_SEED)
        for shard in sorted(damaged.glob("*.zss"))[:2]:
            with open(shard, "rb") as handle:
                block = rng.choice(read_footer(handle).blocks)
            apply_corruptions(
                [
                    BitFlip(
                        path=str(shard),
                        offset=block.offset + rng.randrange(block.length),
                        bit=rng.randrange(8),
                    )
                ]
            )
        connection_faults = schedule.connection_plan(
            connections=12, resets=2, drops=2, stalls=1, stall_seconds=0.1
        )

        with BackgroundServer(damaged, readers=2) as shaky, BackgroundServer(
            chaos_library, readers=2
        ) as stable:
            fleet = ServerFleet(chaos_library, workers=1)
            fleet.start()
            try:
                with FaultyProxy(shaky.url, connection_faults) as proxy:
                    replicas = f"{proxy.url},{fleet.url},{stable.url}"
                    from repro.campaign import CampaignDriver

                    with CampaignDriver.start(
                        replicas, tmp_path / "chaos", config
                    ) as driver:
                        driver.step()  # generation 1 across all replicas
                        fleet.kill_worker(0)  # SIGKILL one replica
                        chaotic = driver.run()  # finishes on the survivors
            finally:
                fleet.stop()

        assert chaotic.generation == 3
        assert deterministic_stats(chaotic) == deterministic_stats(local)
        assert workdir_bytes(tmp_path / "chaos") == workdir_bytes(tmp_path / "local")
        from repro.campaign import campaign_top_hits

        assert campaign_top_hits(tmp_path / "chaos", 8) == campaign_top_hits(
            tmp_path / "local", 8
        )
