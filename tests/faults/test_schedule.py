"""The seeded fault planner: same seed → same plan, and plans stay in bounds."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.faults import (
    BitFlip,
    FaultSchedule,
    Truncation,
    apply_corruptions,
)
from repro.faults.schedule import HEADER_GUARD

from .conftest import FAULT_SEED


class TestDeterminism:
    def test_same_seed_same_corruption_plan(self, library_copy):
        shards = sorted(library_copy.glob("*.zss"))
        first = FaultSchedule(FAULT_SEED).plan_corruptions(
            shards, flips=4, truncations=2
        )
        second = FaultSchedule(FAULT_SEED).plan_corruptions(
            shards, flips=4, truncations=2
        )
        assert first == second

    def test_different_seed_different_plan(self, library_copy):
        shards = sorted(library_copy.glob("*.zss"))
        plans = {
            tuple(FaultSchedule(seed).plan_corruptions(shards, flips=6))
            for seed in range(5)
        }
        assert len(plans) > 1, "five seeds produced one identical plan"

    def test_same_seed_same_read_plan(self):
        first = FaultSchedule(FAULT_SEED).read_plan(calls=50, flips=2, shorts=1)
        second = FaultSchedule(FAULT_SEED).read_plan(calls=50, flips=2, shorts=1)
        assert len(first) == len(second) == 3
        for call in range(50):
            assert first.fault_for(call) == second.fault_for(call)

    def test_same_seed_same_connection_plan(self):
        first = FaultSchedule(FAULT_SEED).connection_plan(
            connections=10, resets=2, stalls=1, drops=1
        )
        second = FaultSchedule(FAULT_SEED).connection_plan(
            connections=10, resets=2, stalls=1, drops=1
        )
        assert len(first) == len(second) == 4
        for connection in range(10):
            assert first.fault_for(connection) == second.fault_for(connection)


class TestPlanBounds:
    def test_flips_respect_header_guard_and_file_size(self, library_copy):
        shards = sorted(library_copy.glob("*.zss"))
        sizes = {str(p): p.stat().st_size for p in shards}
        plan = FaultSchedule(FAULT_SEED).plan_corruptions(shards, flips=32)
        for fault in plan:
            assert isinstance(fault, BitFlip)
            assert HEADER_GUARD <= fault.offset < sizes[fault.path]
            assert 0 <= fault.bit < 8

    def test_truncations_shrink_but_keep_the_header(self, library_copy):
        shards = sorted(library_copy.glob("*.zss"))
        sizes = {str(p): p.stat().st_size for p in shards}
        plan = FaultSchedule(FAULT_SEED).plan_corruptions(
            shards, flips=0, truncations=3
        )
        for fault in plan:
            assert isinstance(fault, Truncation)
            assert HEADER_GUARD < fault.size < sizes[fault.path]

    def test_empty_path_list_rejected(self):
        with pytest.raises(ReproError, match="at least one path"):
            FaultSchedule(FAULT_SEED).plan_corruptions([])

    def test_read_plan_rejects_more_faults_than_calls(self):
        with pytest.raises(ReproError, match="cannot place"):
            FaultSchedule(FAULT_SEED).read_plan(calls=2, flips=2, shorts=1)

    def test_connection_plan_rejects_more_faults_than_connections(self):
        with pytest.raises(ReproError, match="cannot place"):
            FaultSchedule(FAULT_SEED).connection_plan(connections=1, resets=2)


class TestApplyCorruptions:
    def test_bit_flip_changes_exactly_one_byte(self, shard_copy):
        original = shard_copy.read_bytes()
        flip = BitFlip(path=str(shard_copy), offset=100, bit=3)
        labels = apply_corruptions([flip])
        assert labels == [flip.describe()]
        mutated = shard_copy.read_bytes()
        assert len(mutated) == len(original)
        diff = [i for i in range(len(original)) if original[i] != mutated[i]]
        assert diff == [100]
        assert mutated[100] == original[100] ^ (1 << 3)

    def test_flip_is_its_own_inverse(self, shard_copy):
        original = shard_copy.read_bytes()
        flip = BitFlip(path=str(shard_copy), offset=64, bit=0)
        apply_corruptions([flip, flip])
        assert shard_copy.read_bytes() == original

    def test_truncation_cuts_the_file(self, shard_copy):
        apply_corruptions([Truncation(path=str(shard_copy), size=128)])
        assert shard_copy.stat().st_size == 128

    def test_flip_offset_out_of_bounds_rejected(self, shard_copy):
        size = shard_copy.stat().st_size
        with pytest.raises(ReproError, match="outside"):
            apply_corruptions([BitFlip(path=str(shard_copy), offset=size, bit=0)])

    def test_truncation_must_shrink(self, shard_copy):
        size = shard_copy.stat().st_size
        with pytest.raises(ReproError, match="does not shrink"):
            apply_corruptions([Truncation(path=str(shard_copy), size=size)])
