"""Injected-vs-observed: chaos faults show up in the ``faults_*`` metrics.

Each injection layer double-books its faults — the per-object counters the
chaos suites already assert, plus the global ``faults_injected_total``
counter — so a chaos run can reconcile what it injected against what the
telemetry observed.
"""

from __future__ import annotations

import pytest

from repro.errors import BlockCorruptionError, ServerConnectionError
from repro.faults import (
    ConnectionFault,
    ConnectionFaultPlan,
    FaultyProxy,
    ReadFault,
    ReadFaultPlan,
    open_faulty,
)
from repro.server import BackgroundServer, CorpusClient, RetryPolicy
from repro.store import ShardReader
from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import set_registry


@pytest.fixture()
def fresh_registry():
    """Swap in an isolated global registry so counts start at zero."""
    registry = MetricsRegistry(enabled=True)
    set_registry(registry)
    yield registry
    set_registry(None)


def _injected(registry, layer, kind):
    snapshot = registry.snapshot()
    for item in snapshot["metrics"]:
        if item["name"] != "faults_injected_total":
            continue
        for series in item["series"]:
            if series["values"] == [layer, kind]:
                return series["value"]
    return 0.0


class TestFileFaultMetrics:
    def test_injected_read_faults_are_counted(self, pristine_shard, fresh_registry):
        # Learn the setup cost, then plan one flip on the first data read.
        probe = open_faulty(pristine_shard)
        with ShardReader(probe) as reader:
            assert len(reader) > 0
        setup = probe.read_calls
        plan = ReadFaultPlan([ReadFault(call=setup, kind="flip")])
        faulty = open_faulty(pristine_shard, plan)
        with ShardReader(faulty) as reader:
            with pytest.raises(BlockCorruptionError):
                reader.get(0)
        assert faulty.faults_injected == 1
        assert _injected(fresh_registry, "file", "flip") == faulty.faults_injected


class TestProxyFaultMetrics:
    def test_injected_connection_faults_are_counted(
        self, pristine_library, fresh_registry
    ):
        plan = ConnectionFaultPlan(
            [ConnectionFault(connection=0, kind="reset")]
        )
        with BackgroundServer(pristine_library, readers=2) as server:
            with FaultyProxy(server.url, plan) as proxy:
                with CorpusClient(
                    proxy.url, timeout=10.0, retry=RetryPolicy(max_attempts=1)
                ) as client:
                    with pytest.raises(ServerConnectionError):
                        client.get(0)
                    assert client.get(1)  # connection 1: pass-through
                assert proxy.faults_injected == 1
                assert (
                    _injected(fresh_registry, "proxy", "reset")
                    == proxy.faults_injected
                )
                # Connections (faulted or not) are tallied too.
                snapshot = fresh_registry.snapshot()
                by_name = {i["name"]: i for i in snapshot["metrics"]}
                (conns,) = by_name["faults_connections_total"]["series"]
                assert conns["value"] == proxy.connections_seen >= 2
