"""The injectable file-I/O layer: faulty reads surface as typed errors.

A :class:`FaultyFile` is handed straight to :class:`ShardReader` (the store
accepts any seekable binary), so these tests pin the *store's* reaction to
disk-level faults: corruption → :class:`BlockCorruptionError` + quarantine,
truncation → typed error, never silent wrong records.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import BlockCorruptionError, ReproError
from repro.faults import FaultSchedule, ReadFault, ReadFaultPlan, open_faulty
from repro.store import ShardReader

from .conftest import FAULT_SEED


def _setup_read_calls(path) -> int:
    """How many ``read()`` calls opening a reader costs (footer parsing)."""
    faulty = open_faulty(path)
    with ShardReader(faulty) as reader:
        assert len(reader) > 0
        return faulty.read_calls


class TestTransparency:
    def test_no_plan_is_fully_transparent(self, pristine_shard, corpus):
        with ShardReader(open_faulty(pristine_shard)) as reader:
            assert list(reader.iter_all()) == corpus[:40]

    def test_counters_track_calls_and_faults(self, pristine_shard):
        faulty = open_faulty(pristine_shard)
        with ShardReader(faulty) as reader:
            reader.get(0)
        assert faulty.read_calls > 0
        assert faulty.faults_injected == 0

    def test_fileno_is_blocked(self, pristine_shard):
        # An mmap over the real descriptor would bypass the fault layer and
        # silently test nothing — the wrapper refuses to expose it.
        with pytest.raises(OSError, match="no file descriptor"):
            open_faulty(pristine_shard).fileno()


class TestInjectedFaults:
    def test_flipped_block_read_raises_and_quarantines(
        self, pristine_shard, corpus
    ):
        setup = _setup_read_calls(pristine_shard)
        # The first post-setup read call is record 0's block payload.
        plan = ReadFaultPlan([ReadFault(call=setup, kind="flip")])
        faulty = open_faulty(pristine_shard, plan)
        with ShardReader(faulty) as reader:
            with pytest.raises(BlockCorruptionError) as excinfo:
                reader.get(0)
            assert excinfo.value.block == 0
            assert faulty.faults_injected == 1
            # Degraded, not dead: every other block still serves, and the
            # bad block fails fast without another disk touch.
            assert reader.get(25) == corpus[25]
            calls_before = faulty.read_calls
            with pytest.raises(BlockCorruptionError):
                reader.get(1)  # same block (8 records per block)
            assert faulty.read_calls == calls_before
            stats = reader.quarantine_stats()
            assert stats["quarantined_blocks"] == 1
            assert stats["quarantine_hits"] == 1

    def test_truncated_read_raises_typed_error(self, pristine_shard):
        setup = _setup_read_calls(pristine_shard)
        plan = ReadFaultPlan([ReadFault(call=setup, kind="truncate")])
        with ShardReader(open_faulty(pristine_shard, plan)) as reader:
            with pytest.raises(BlockCorruptionError, match="short read"):
                reader.get(0)

    def test_short_read_raises_typed_error(self, pristine_shard):
        setup = _setup_read_calls(pristine_shard)
        plan = ReadFaultPlan([ReadFault(call=setup, kind="short", arg=1.0)])
        with ShardReader(open_faulty(pristine_shard, plan)) as reader:
            with pytest.raises(BlockCorruptionError, match="short read"):
                reader.get(0)

    def test_delay_slows_but_does_not_corrupt(self, pristine_shard, corpus):
        setup = _setup_read_calls(pristine_shard)
        plan = ReadFaultPlan([ReadFault(call=setup, kind="delay", arg=0.05)])
        with ShardReader(open_faulty(pristine_shard, plan)) as reader:
            began = time.monotonic()
            assert reader.get(0) == corpus[0]
            assert time.monotonic() - began >= 0.05

    def test_seeded_plan_replays_on_the_same_access_pattern(self, pristine_shard):
        setup = _setup_read_calls(pristine_shard)

        def run() -> list:
            plan = FaultSchedule(FAULT_SEED).read_plan(
                calls=setup + 5, flips=1, truncates=1
            )
            outcomes = []
            try:
                # A fault may equally land on a footer-parsing read, in
                # which case the open itself fails — typed, and replayable.
                with ShardReader(open_faulty(pristine_shard, plan)) as reader:
                    for index in (0, 10, 20, 30):
                        try:
                            outcomes.append(reader.get(index))
                        except BlockCorruptionError as exc:
                            outcomes.append(("corrupt", exc.block))
            except ReproError as exc:
                outcomes.append(("unopenable", str(exc)))
            return outcomes

        assert run() == run()
