"""The fault-injecting TCP proxy: transport faults produce typed client errors.

A :class:`FaultyProxy` sits between a real :class:`BackgroundServer` and the
clients; the plans script resets, stalls and mid-stream drops per accepted
connection.  What these pin: typed :class:`ServerConnectionError` outcomes
(with ``delivered`` on streams), and the failover client healing every
injected fault against a clean replica.
"""

from __future__ import annotations

import pytest

from repro.errors import ServerConnectionError
from repro.faults import (
    ConnectionFault,
    ConnectionFaultPlan,
    FaultyProxy,
)
from repro.server import (
    BackgroundServer,
    CorpusClient,
    FailoverCorpusClient,
    RetryPolicy,
)


@pytest.fixture(scope="module")
def server(pristine_library):
    with BackgroundServer(pristine_library, readers=2, stream_batch=16) as srv:
        yield srv


class TestPassThrough:
    def test_unplanned_connections_relay_untouched(self, server, corpus):
        with FaultyProxy(server.url) as proxy:
            with CorpusClient(proxy.url, timeout=10.0) as client:
                assert client.get(0) == corpus[0]
                assert client.get_many([5, 50, 119]) == [
                    corpus[5], corpus[50], corpus[119]
                ]
                assert list(client.iter_range(0, 30)) == corpus[:30]
            assert proxy.connections_seen >= 1
            assert proxy.faults_injected == 0

    def test_pass_fault_kind_relays_untouched(self, server, corpus):
        plan = ConnectionFaultPlan([ConnectionFault(connection=0, kind="pass")])
        with FaultyProxy(server.url, plan) as proxy:
            with CorpusClient(proxy.url, timeout=10.0) as client:
                assert client.get(7) == corpus[7]
            assert proxy.faults_injected == 0


class TestInjectedFaults:
    def test_reset_connection_raises_typed_error(self, server, corpus):
        # max_attempts=1 disables the transparent connect-phase retry: the
        # reset must surface as a typed error no matter which phase of the
        # request it lands in (send vs response is a kernel-timing race).
        plan = ConnectionFaultPlan([ConnectionFault(connection=0, kind="reset")])
        with FaultyProxy(server.url, plan) as proxy:
            with CorpusClient(
                proxy.url, timeout=5.0, retry=RetryPolicy(max_attempts=1)
            ) as client:
                with pytest.raises(ServerConnectionError):
                    client.get(0)
                # The next connection is unplanned and sails through.
                assert client.get(0) == corpus[0]
            assert proxy.faults_injected == 1

    def test_default_policy_rides_out_a_reset(self, server, corpus):
        """With the stock policy the reset is healed by the built-in retry
        when it lands in the connect/send phase — and either way the caller
        ends up with the record or a typed error, never an untyped crash."""
        plan = ConnectionFaultPlan([ConnectionFault(connection=0, kind="reset")])
        with FaultyProxy(server.url, plan) as proxy:
            with CorpusClient(proxy.url, timeout=5.0) as client:
                try:
                    assert client.get(0) == corpus[0]
                except ServerConnectionError:
                    pass  # reset landed post-send: typed, not retried
                assert client.get(0) == corpus[0]

    def test_stall_beyond_timeout_raises_typed_error(self, server):
        plan = ConnectionFaultPlan(
            [ConnectionFault(connection=0, kind="stall", arg=2.0)]
        )
        with FaultyProxy(server.url, plan) as proxy:
            with CorpusClient(proxy.url, timeout=0.3) as client:
                with pytest.raises(ServerConnectionError):
                    client.get(0)

    def test_drop_mid_stream_carries_delivered_count(self, server, corpus):
        # Cut the response after ~enough bytes for headers + some records:
        # the stream dies mid-flight and the typed error reports how many
        # records were already yielded (the failover resume arithmetic).
        plan = ConnectionFaultPlan(
            [ConnectionFault(connection=0, kind="drop", arg=400.0)]
        )
        with FaultyProxy(server.url, plan) as proxy:
            with CorpusClient(proxy.url, timeout=5.0, compress=False) as client:
                delivered = 0
                with pytest.raises(ServerConnectionError) as excinfo:
                    for record in client.iter_range(0, 120):
                        assert record == corpus[delivered]
                        delivered += 1
                assert excinfo.value.delivered == delivered
                assert delivered < 120

    def test_failover_client_heals_every_injected_fault(self, server, corpus):
        # One replica behind a proxy scripted to reset, stall and drop; the
        # other replica clean.  The failover client must deliver every
        # record byte-identically regardless of which faults fire.
        plan = ConnectionFaultPlan(
            [
                ConnectionFault(connection=0, kind="reset"),
                ConnectionFault(connection=1, kind="drop", arg=300.0),
                ConnectionFault(connection=2, kind="reset"),
            ]
        )
        with FaultyProxy(server.url, plan) as proxy:
            with FailoverCorpusClient(
                [proxy.url, server.url], timeout=5.0
            ) as client:
                assert client.get(3) == corpus[3]
                assert client.get_many([1, 60, 110]) == [
                    corpus[1], corpus[60], corpus[110]
                ]
                assert list(client.iter_range(0, 120)) == corpus
