"""Tests for the exception hierarchy and the top-level public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError), name

    def test_smiles_error_branch(self):
        assert issubclass(errors.TokenizationError, errors.SmilesError)
        assert issubclass(errors.ParseError, errors.SmilesError)
        assert issubclass(errors.RingNumberingError, errors.SmilesError)

    def test_codec_error_branch(self):
        assert issubclass(errors.CompressionError, errors.CodecError)
        assert issubclass(errors.DecompressionError, errors.CodecError)
        assert issubclass(errors.RandomAccessError, errors.CodecError)

    def test_dictionary_error_branch(self):
        assert issubclass(errors.SymbolSpaceExhaustedError, errors.DictionaryError)
        assert issubclass(errors.DictionaryFormatError, errors.DictionaryError)

    def test_tokenization_error_payload(self):
        exc = errors.TokenizationError("boom", smiles="C!", position=1)
        assert exc.smiles == "C!"
        assert exc.position == 1

    def test_catching_base_class_covers_subsystems(self):
        with pytest.raises(errors.ReproError):
            raise errors.DatasetError("x")


class TestPublicApi:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_workflow_through_top_level_names(self, tmp_path, mixed_corpus_small):
        codec = repro.ZSmilesCodec.train(mixed_corpus_small[:100], lmax=6)
        path = tmp_path / "dict.dct"
        repro.save_dictionary(codec.table, path)
        table = repro.load_dictionary(path)
        assert table.patterns() == codec.table.patterns()

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.datasets
        import repro.experiments
        import repro.metrics
        import repro.parallel
        import repro.screening
        import repro.smiles

        assert repro.smiles.parse("CCO").atom_count() == 3
