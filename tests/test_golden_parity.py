"""Golden-parity tests: the on-disk formats are pinned byte for byte.

``tests/fixtures/`` commits a small corpus together with the exact bytes the
pipeline must produce for it — the per-line codec output (``corpus.zsmi``),
the trained dictionary (``golden.dct``) and the packed block store
(``corpus.zss``).  These tests fail when any refactor changes the compressed
representation, which is a format break for every already-written library.

If a break is intentional (e.g. a versioned layout change), regenerate the
fixtures with ``tests/fixtures/regenerate.py`` and say so in the PR.
"""

from __future__ import annotations

import io

import pytest

from repro.core.codec import ZSmilesCodec
from repro.core.streaming import read_lines
from repro.engine import ZSmilesEngine, available_backends
from repro.store import CorpusStore, DICTIONARY_META_KEY, pack_records
from repro.store.writer import ShardWriter

from .fixtures.regenerate import CORPUS, RECORDS_PER_BLOCK, TRAIN_KWARGS, FIXTURES


@pytest.fixture(scope="module")
def golden_codec() -> ZSmilesCodec:
    """The pinned codec: golden dictionary, no preprocessing."""
    return ZSmilesCodec.from_dictionary(FIXTURES / "golden.dct", preprocessing=False)


@pytest.fixture(scope="module")
def golden_compressed() -> list[str]:
    """The pinned per-line compressed records."""
    return list(read_lines(FIXTURES / "corpus.zsmi"))


class TestFixtureIntegrity:
    def test_corpus_file_matches_pinned_list(self):
        assert list(read_lines(FIXTURES / "corpus.smi")) == CORPUS

    def test_training_reproduces_golden_dictionary(self, golden_codec):
        from repro.dictionary import serialization

        retrained = ZSmilesCodec.train(CORPUS, **TRAIN_KWARGS)
        assert serialization.dumps(retrained.table) == (
            FIXTURES / "golden.dct"
        ).read_text(encoding="utf-8")


class TestCodecParity:
    def test_per_line_codec_reproduces_golden_bytes(self, golden_codec, golden_compressed):
        assert [golden_codec.compress(s) for s in CORPUS] == golden_compressed

    def test_decompression_inverts_golden_bytes(self, golden_codec, golden_compressed):
        assert [golden_codec.decompress(z) for z in golden_compressed] == CORPUS


class TestEngineBackendParity:
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_backend_reproduces_golden_bytes(self, backend, golden_codec, golden_compressed):
        with ZSmilesEngine.from_codec(golden_codec, backend=backend, jobs=2) as engine:
            result = engine.compress_batch(CORPUS, backend=backend)
        assert result.records == golden_compressed

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_backend_inverts_golden_bytes(self, backend, golden_codec, golden_compressed):
        with ZSmilesEngine.from_codec(golden_codec, backend=backend, jobs=2) as engine:
            result = engine.decompress_batch(golden_compressed, backend=backend)
        assert result.records == CORPUS


class TestStoreParity:
    def test_packing_reproduces_golden_store_bytes(self, golden_codec):
        buffer = io.BytesIO()
        with ZSmilesEngine.from_codec(golden_codec, backend="serial") as engine:
            pack_records(
                buffer, CORPUS, engine,
                records_per_block=RECORDS_PER_BLOCK, embed_dictionary=True,
            )
        assert buffer.getvalue() == (FIXTURES / "corpus.zss").read_bytes()

    def test_parallel_packing_reproduces_golden_store_bytes(self, golden_codec):
        buffer = io.BytesIO()
        with ZSmilesEngine.from_codec(golden_codec, backend="process", jobs=2) as engine:
            # chunk well below the corpus size so several workers really run
            engine.config = engine.config.replace(chunk_size=8)
            with ShardWriter(
                buffer, engine=engine, records_per_block=RECORDS_PER_BLOCK,
                backend="process", batch_blocks=2, embed_dictionary=True,
            ) as writer:
                writer.add_many(CORPUS)
                writer.close()
        assert buffer.getvalue() == (FIXTURES / "corpus.zss").read_bytes()

    def test_golden_store_serves_original_records(self):
        with CorpusStore(FIXTURES / "corpus.zss") as store:
            assert len(store) == len(CORPUS)
            assert list(store.iter_all()) == CORPUS
            for index in (0, 7, 8, len(CORPUS) - 1):
                assert store.get(index) == CORPUS[index]

    def test_golden_store_payload_is_per_line_codec_output(self, golden_compressed):
        with CorpusStore(FIXTURES / "corpus.zss") as store:
            stored = [store.get_raw(i) for i in range(len(store))]
        assert stored == golden_compressed

    def test_golden_store_embeds_golden_dictionary(self):
        with CorpusStore(FIXTURES / "corpus.zss") as store:
            embedded = store.shards[0].metadata[DICTIONARY_META_KEY]
        assert embedded == (FIXTURES / "golden.dct").read_text(encoding="utf-8")
