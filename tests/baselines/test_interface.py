"""Tests for the baseline codec interface and the ZSMILES adapter."""

from __future__ import annotations

import pytest

from repro.baselines.interface import BaselineCodec, CodecProperties
from repro.baselines.zsmiles_adapter import ZSmilesBaseline


class _UpperCodec(BaselineCodec):
    """Minimal concrete codec used to exercise the shared helpers."""

    properties = CodecProperties(
        name="upper", readable_output=True, random_access=True, shared_dictionary=True
    )

    def fit(self, corpus):
        return self

    def compress_record(self, record: str) -> bytes:
        return record.encode("ascii")

    def decompress_record(self, payload: bytes) -> str:
        return payload.decode("ascii")


class TestInterfaceHelpers:
    def test_compress_corpus_order(self):
        codec = _UpperCodec().fit([])
        assert codec.compress_corpus(["a", "bb"]) == [b"a", b"bb"]

    def test_compressed_size_includes_overhead(self):
        codec = _UpperCodec().fit([])
        assert codec.compressed_size(["ab", "c"]) == 3 + 2 * codec.record_overhead

    def test_compression_ratio_identity_codec(self):
        codec = _UpperCodec().fit([])
        assert codec.compression_ratio(["abc", "de"]) == pytest.approx(1.0)

    def test_ratio_empty_corpus(self):
        assert _UpperCodec().fit([]).compression_ratio([]) == 1.0

    def test_roundtrip_ok(self):
        assert _UpperCodec().fit([]).roundtrip_ok(["abc", "CCO"])

    def test_explicit_overhead_override(self):
        codec = _UpperCodec().fit([])
        assert codec.compressed_size(["ab"], per_record_overhead=4) == 6


class TestZSmilesAdapter:
    def test_fit_required(self):
        with pytest.raises(RuntimeError):
            ZSmilesBaseline().compress_record("CC")

    def test_roundtrip_modulo_preprocessing(self, mixed_corpus_small):
        baseline = ZSmilesBaseline(preprocessing=False).fit(mixed_corpus_small[:150])
        assert baseline.roundtrip_ok(mixed_corpus_small[:50])

    def test_ratio_matches_underlying_codec(self, mixed_corpus_small):
        corpus = mixed_corpus_small[:150]
        baseline = ZSmilesBaseline().fit(corpus)
        direct = baseline.codec.compression_ratio(corpus)
        assert baseline.compression_ratio(corpus) == pytest.approx(direct, abs=1e-9)

    def test_zsmiles_plus_bzip2_improves_ratio(self, mixed_corpus_small):
        corpus = mixed_corpus_small[:200]
        baseline = ZSmilesBaseline().fit(corpus)
        assert baseline.zsmiles_plus_bzip2_ratio(corpus) < baseline.compression_ratio(corpus)

    def test_properties_flags(self):
        props = ZSmilesBaseline.properties
        assert props.readable_output and props.random_access and props.shared_dictionary
