"""Tests for the reversible-transform + bzip2 baseline."""

from __future__ import annotations

from repro.baselines.transform import (
    TRANSFORM_TABLE,
    TransformBzip2Codec,
    forward_transform,
    inverse_transform,
)
from repro.smiles.alphabet import SMILES_ALPHABET


class TestTransform:
    def test_replacement_characters_are_not_smiles(self):
        assert all(ch not in SMILES_ALPHABET for ch in TRANSFORM_TABLE.values())

    def test_forward_shortens_common_motifs(self):
        assert len(forward_transform("CC(=O)Oc1ccccc1C(=O)O")) < len("CC(=O)Oc1ccccc1C(=O)O")

    def test_inverse_restores_exactly(self, mixed_corpus_small, curated_smiles):
        for smiles in curated_smiles + mixed_corpus_small[:80]:
            assert inverse_transform(forward_transform(smiles)) == smiles

    def test_untouched_string_passes_through(self):
        assert forward_transform("CCN") == "CCN"


class TestTransformBzip2Codec:
    def test_record_roundtrip(self, curated_smiles):
        codec = TransformBzip2Codec().fit([])
        for smiles in curated_smiles:
            assert codec.decompress_record(codec.compress_record(smiles)) == smiles

    def test_corpus_blob_roundtrip(self, mixed_corpus_small):
        codec = TransformBzip2Codec().fit([])
        corpus = mixed_corpus_small[:60]
        assert codec.decompress_corpus_blob(codec.compress_corpus_blob(corpus)) == corpus

    def test_transform_improves_on_plain_bzip2(self, mixed_corpus_small):
        from repro.baselines.bzip2_codec import Bzip2FileCodec

        corpus = mixed_corpus_small[:200]
        plain = Bzip2FileCodec().fit([]).compression_ratio(corpus)
        transformed = TransformBzip2Codec().fit([]).compression_ratio(corpus)
        # The reversible transform should help (or at worst be a small wash).
        assert transformed <= plain * 1.05

    def test_no_random_access(self):
        assert TransformBzip2Codec.properties.random_access is False
