"""Tests for the bzip2 baselines."""

from __future__ import annotations

import pytest

from repro.baselines.bzip2_codec import Bzip2FileCodec, Bzip2LineCodec, bzip2_over_lines


class TestBzip2LineCodec:
    def test_roundtrip(self, mixed_corpus_small):
        codec = Bzip2LineCodec().fit([])
        assert codec.roundtrip_ok(mixed_corpus_small[:30])

    def test_per_line_bzip2_is_inefficient(self, mixed_corpus_small):
        """The paper's point: per-record bzip2 pays huge header overhead."""
        codec = Bzip2LineCodec().fit([])
        ratio = codec.compression_ratio(mixed_corpus_small[:60])
        assert ratio > 1.0

    def test_properties(self):
        props = Bzip2LineCodec.properties
        assert props.random_access is True
        assert props.readable_output is False

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            Bzip2LineCodec(compresslevel=0)


class TestBzip2FileCodec:
    def test_blob_roundtrip(self, mixed_corpus_small):
        codec = Bzip2FileCodec().fit([])
        corpus = mixed_corpus_small[:80]
        blob = codec.compress_corpus_blob(corpus)
        assert codec.decompress_corpus_blob(blob) == corpus

    def test_file_based_ratio_is_strong(self, mixed_corpus_small):
        codec = Bzip2FileCodec().fit([])
        ratio = codec.compression_ratio(mixed_corpus_small[:150])
        assert ratio < 0.5

    def test_file_beats_per_line(self, mixed_corpus_small):
        corpus = mixed_corpus_small[:80]
        assert (
            Bzip2FileCodec().fit([]).compression_ratio(corpus)
            < Bzip2LineCodec().fit([]).compression_ratio(corpus)
        )

    def test_no_random_access_property(self):
        assert Bzip2FileCodec.properties.random_access is False

    def test_record_roundtrip_still_works(self):
        codec = Bzip2FileCodec()
        assert codec.decompress_record(codec.compress_record("c1ccccc1")) == "c1ccccc1"

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            Bzip2FileCodec(compresslevel=10)


class TestBzip2OverLines:
    def test_ratio_of_empty_input_is_one(self):
        assert bzip2_over_lines([]) == 1.0

    def test_compresses_redundant_lines(self):
        ratio = bzip2_over_lines(["c1ccccc1CCN"] * 200)
        assert ratio < 0.1
