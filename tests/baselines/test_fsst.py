"""Tests for the FSST reimplementation."""

from __future__ import annotations

import pytest

from repro.baselines.fsst import (
    ESCAPE_CODE,
    MAX_SYMBOL_LENGTH,
    MAX_SYMBOLS,
    FsstCodec,
    FsstSymbolTable,
    build_symbol_table,
)


class TestSymbolTable:
    def test_rejects_oversized_tables(self):
        with pytest.raises(ValueError):
            FsstSymbolTable([bytes([i % 250, i // 250]) for i in range(300)])

    def test_longest_match_prefers_longer_symbol(self):
        table = FsstSymbolTable([b"ab", b"abcd"])
        sym, code = table.longest_match(b"abcdef", 0)
        assert sym == b"abcd"
        assert table.symbol_for_code(code) == b"abcd"

    def test_longest_match_none_when_absent(self):
        table = FsstSymbolTable([b"xy"])
        assert table.longest_match(b"ab", 0) is None

    def test_built_table_respects_limits(self, mixed_corpus_small):
        table = build_symbol_table(mixed_corpus_small[:200])
        assert len(table) <= MAX_SYMBOLS
        assert all(1 <= len(sym) <= MAX_SYMBOL_LENGTH for sym in table.symbols)

    def test_built_table_contains_multibyte_symbols(self, mixed_corpus_small):
        table = build_symbol_table(mixed_corpus_small[:200])
        assert any(len(sym) > 1 for sym in table.symbols)


class TestFsstCodec:
    def test_fit_required_before_use(self):
        with pytest.raises(RuntimeError):
            FsstCodec().compress_record("CC")

    def test_roundtrip(self, mixed_corpus_small):
        codec = FsstCodec().fit(mixed_corpus_small[:150])
        assert codec.roundtrip_ok(mixed_corpus_small[:60])

    def test_roundtrip_on_unseen_characters(self, mixed_corpus_small):
        codec = FsstCodec().fit(mixed_corpus_small[:150])
        weird = "C@@H/\\%99"
        assert codec.decompress_record(codec.compress_record(weird)) == weird

    def test_escape_code_never_used_as_symbol_code(self, mixed_corpus_small):
        codec = FsstCodec().fit(mixed_corpus_small[:150])
        assert len(codec.table) <= ESCAPE_CODE

    def test_compression_is_effective(self, mixed_corpus_small):
        codec = FsstCodec().fit(mixed_corpus_small[:300])
        ratio = codec.compression_ratio(mixed_corpus_small[:300])
        assert ratio < 0.7

    def test_input_dependent_table(self, gdb_corpus, mediate_corpus):
        gdb_table = build_symbol_table(gdb_corpus)
        mediate_table = build_symbol_table(mediate_corpus)
        assert set(gdb_table.symbols) != set(mediate_table.symbols)

    def test_record_overhead_accounts_for_length_prefix(self):
        assert FsstCodec.record_overhead == 2

    def test_dangling_escape_rejected(self, mixed_corpus_small):
        codec = FsstCodec().fit(mixed_corpus_small[:50])
        with pytest.raises(ValueError):
            codec.decompress_record(bytes([ESCAPE_CODE]))
