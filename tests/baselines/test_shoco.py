"""Tests for the SHOCO-style short-string packer."""

from __future__ import annotations

import pytest

from repro.baselines.shoco import PACK_MARKER, ShocoCodec, ShocoModel


class TestModel:
    def test_training_extracts_frequent_leads(self, mixed_corpus_small):
        model = ShocoModel.train(mixed_corpus_small[:200])
        assert 1 <= len(model.leads) <= 8
        assert "C" in model.leads or "c" in model.leads

    def test_pack_unpack_inverse(self, mixed_corpus_small):
        model = ShocoModel.train(mixed_corpus_small[:200])
        lead = model.leads[0]
        successor = model.successors[lead][0]
        packed = model.pack_indices(lead, successor)
        assert packed is not None
        assert packed & PACK_MARKER
        assert model.unpack(packed) == lead + successor

    def test_unpackable_pair_returns_none(self, mixed_corpus_small):
        model = ShocoModel.train(mixed_corpus_small[:200])
        assert model.pack_indices("@", "@") is None or "@" in model.leads


class TestCodec:
    def test_fit_required(self):
        with pytest.raises(RuntimeError):
            ShocoCodec().compress_record("CC")

    def test_roundtrip(self, mixed_corpus_small):
        codec = ShocoCodec().fit(mixed_corpus_small[:200])
        assert codec.roundtrip_ok(mixed_corpus_small[:80])

    def test_compression_is_modest(self, mixed_corpus_small):
        """SHOCO compresses, but clearly less than the dictionary approaches."""
        codec = ShocoCodec().fit(mixed_corpus_small[:300])
        ratio = codec.compression_ratio(mixed_corpus_small[:300])
        assert 0.4 < ratio < 0.9

    def test_non_ascii_input_rejected(self, mixed_corpus_small):
        codec = ShocoCodec().fit(mixed_corpus_small[:50])
        with pytest.raises(ValueError):
            codec.compress_record("Cé")

    def test_model_is_shared_across_inputs(self, mixed_corpus_small, gdb_corpus):
        codec = ShocoCodec().fit(mixed_corpus_small[:200])
        # Trained once, applied to a different dataset: still round-trips.
        assert codec.roundtrip_ok(gdb_corpus[:40])
