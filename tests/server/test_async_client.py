"""The asyncio clients: parity with the blocking client, typed errors,
failover, and the ``open_async_reader`` dispatch."""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

from repro.errors import (
    ProtocolError,
    RandomAccessError,
    ServerConnectionError,
    ServerError,
)
from repro.library import AsyncCorpusLibrary, open_async_reader
from repro.server import (
    AsyncCorpusClient,
    AsyncFailoverCorpusClient,
    protocol,
)


def _run(coro):
    return asyncio.run(coro)


def _dead_url() -> str:
    probe = socket.create_server(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


class TestAsyncClientParity:
    def test_get_and_total(self, server, corpus):
        async def run():
            async with AsyncCorpusClient(server.url, timeout=10.0) as client:
                assert await client.total() == len(corpus)
                assert await client.get(0) == corpus[0]
                assert await client.get(len(corpus) - 1) == corpus[-1]

        _run(run())

    def test_get_many_parity(self, server, corpus):
        async def run():
            async with AsyncCorpusClient(server.url, timeout=10.0) as client:
                indices = list(range(0, len(corpus), 7))
                assert await client.get_many(indices) == [corpus[i] for i in indices]
                assert await client.get_many([]) == []

        _run(run())

    def test_healthz_and_stats(self, server, corpus):
        async def run():
            async with AsyncCorpusClient(server.url, timeout=10.0) as client:
                health = await client.healthz()
                assert health["status"] == "ok"
                stats = await client.stats()
                assert stats["records"] == len(corpus)
                assert stats["uptime_seconds"] >= 0.0

        _run(run())

    def test_sample_seed_determinism(self, server, corpus):
        async def run():
            async with AsyncCorpusClient(server.url, timeout=10.0) as client:
                first = await client.sample(5, seed=3)
                second = await client.sample(5, seed=3)
                assert first == second
                indices, records = first
                assert records == [corpus[i] for i in indices]

        _run(run())

    @pytest.mark.parametrize("compress", [True, False])
    def test_stream_parity_compressed_and_identity(self, server, corpus, compress):
        async def run():
            async with AsyncCorpusClient(
                server.url, timeout=10.0, compress=compress
            ) as client:
                records = [r async for r in client.iter_range(3, 77)]
                assert records == list(corpus[3:77])
                everything = [r async for r in client.iter_range(0, None)]
                assert everything == list(corpus)

        _run(run())

    def test_slice_matches_blocking_client(self, server, client, corpus):
        async def run():
            async with AsyncCorpusClient(server.url, timeout=10.0) as aclient:
                return await aclient.slice(10, 40)

        assert _run(run()) == client.slice(10, 40) == list(corpus[10:40])

    def test_concurrent_requests_interleave(self, server, corpus):
        async def run():
            async with AsyncCorpusClient(server.url, timeout=10.0) as client:
                # The connection lock serializes safely under gather.
                results = await asyncio.gather(
                    *(client.get(i) for i in range(10))
                )
                assert list(results) == list(corpus[:10])

        _run(run())


class TestAsyncClientErrors:
    def test_out_of_range_raises_typed_404(self, server, corpus):
        async def run():
            async with AsyncCorpusClient(server.url, timeout=10.0) as client:
                with pytest.raises(RandomAccessError):
                    await client.get(len(corpus) + 1)

        _run(run())

    def test_malformed_batch_raises_typed_400(self, server):
        async def run():
            async with AsyncCorpusClient(server.url, timeout=10.0) as client:
                with pytest.raises(ProtocolError):
                    await client.get_many([0, "x"])  # type: ignore[list-item]

        _run(run())

    def test_connection_refused_raises_server_connection_error(self):
        url = _dead_url()

        async def run():
            async with AsyncCorpusClient(url, timeout=2.0) as client:
                with pytest.raises(ServerConnectionError):
                    await client.get(0)

        _run(run())

    def test_mid_stream_death_delivers_prefix_then_raises(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def serve_one_truncated() -> None:
            conn, _ = listener.accept()
            conn.recv(65536)
            payload = b"REC0\nREC1\n"
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; charset=utf-8\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                + f"{len(payload):x}\r\n".encode() + payload + b"\r\n"
            )
            conn.close()
            listener.close()

        thread = threading.Thread(target=serve_one_truncated, daemon=True)
        thread.start()

        async def run():
            received = []
            async with AsyncCorpusClient(
                f"http://127.0.0.1:{port}", timeout=5.0
            ) as client:
                with pytest.raises(ServerConnectionError):
                    async for record in client.iter_range(0, 100):
                        received.append(record)
            assert received == ["REC0", "REC1"]

        try:
            _run(run())
        finally:
            thread.join()

    def test_https_is_rejected(self):
        with pytest.raises(ServerError, match="plain http"):
            AsyncCorpusClient("https://host:1")


class TestAsyncFailover:
    def test_dead_replica_fails_over(self, server, corpus):
        async def run():
            async with AsyncFailoverCorpusClient(
                [_dead_url(), server.url], timeout=2.0
            ) as client:
                for i in range(4):  # both cursor positions
                    assert await client.get(i) == corpus[i]
                assert await client.total() == len(corpus)

        _run(run())

    def test_exhaustion_raises_typed_error(self):
        urls = [_dead_url(), _dead_url()]

        async def run():
            async with AsyncFailoverCorpusClient(urls, timeout=1.0) as client:
                with pytest.raises(ServerConnectionError, match="all 2 replicas"):
                    await client.get(0)

        _run(run())

    def test_fatal_error_propagates_without_failover(self, server, corpus):
        async def run():
            async with AsyncFailoverCorpusClient(
                [server.url, _dead_url()], timeout=2.0
            ) as client:
                for _ in range(2):
                    with pytest.raises(RandomAccessError):
                        await client.get(len(corpus) + 2)

        _run(run())

    def test_stream_resumes_across_replica_death(self, server, corpus):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def serve_prefix_then_die() -> None:
            conn, _ = listener.accept()
            conn.recv(65536)
            payload = protocol.encode_records_body(list(corpus[:5]))
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; charset=utf-8\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                + f"{len(payload):x}\r\n".encode() + payload + b"\r\n"
            )
            conn.close()
            listener.close()

        thread = threading.Thread(target=serve_prefix_then_die, daemon=True)
        thread.start()

        async def run():
            async with AsyncFailoverCorpusClient(
                [f"http://127.0.0.1:{port}", server.url], timeout=5.0
            ) as client:
                received = [r async for r in client.iter_range(0, 30)]
            assert received == list(corpus[:30])

        try:
            _run(run())
        finally:
            thread.join()


class TestOpenAsyncReader:
    def test_url_opens_async_client(self, server, corpus):
        async def run():
            reader = open_async_reader(server.url)
            assert isinstance(reader, AsyncCorpusClient)
            async with reader:
                assert await reader.get(0) == corpus[0]

        _run(run())

    def test_multi_url_opens_async_failover_client(self, server, corpus):
        async def run():
            reader = open_async_reader(f"{server.url},{server.url}")
            assert isinstance(reader, AsyncFailoverCorpusClient)
            async with reader:
                assert await reader.get(1) == corpus[1]

        _run(run())

    def test_local_path_opens_async_library(self, library_dir, corpus):
        async def run():
            reader = open_async_reader(library_dir, pool_size=2)
            assert isinstance(reader, AsyncCorpusLibrary)
            async with reader:
                assert await reader.get(2) == corpus[2]

        _run(run())
