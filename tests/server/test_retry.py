"""The unified retry discipline: policy math, and the clients honouring it.

Scripted servers (raw sockets, no real corpus) pin the transport contract:
how many requests actually hit the wire under a policy, and that read-phase
stalls surface as typed :class:`ServerConnectionError` carrying the
``delivered`` count streams need for exactly-once resume.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.errors import ReproError, ServerConnectionError
from repro.server import CorpusClient, FailoverCorpusClient, RetryPolicy


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"max_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
            {"deadline": 0.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ReproError, match="RetryPolicy"):
            RetryPolicy(**kwargs)

    def test_defaults_are_the_historical_single_retry(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 2


class TestBackoffMath:
    def test_delays_grow_exponentially_and_clamp(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert [policy.delay_for(n) for n in range(5)] == [
            0.1, 0.2, 0.4, 0.5, 0.5
        ]

    def test_state_consumes_attempts_then_stops(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        state = policy.start()
        assert state.next_delay() == 0.0
        assert state.next_delay() == 0.0
        assert state.next_delay() is None  # 3 attempts = 2 retries
        assert state.exhausted

    def test_jitter_stays_within_the_declared_fraction(self):
        policy = RetryPolicy(max_attempts=50, base_delay=0.1, multiplier=1.0, jitter=0.5)
        state = policy.start()
        delays = [state.next_delay() for _ in range(49)]
        assert all(0.1 <= d <= 0.15 for d in delays)

    def test_deadline_budget_refuses_unaffordable_sleeps(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=5.0, jitter=0.0, deadline=1.0
        )
        state = policy.start()
        assert state.next_delay() is None  # 5s sleep > 1s budget

    def test_reset_progress_refills_attempts(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        state = policy.start()
        assert state.next_delay() == 0.0
        assert state.next_delay() is None
        state.reset_progress()
        assert state.next_delay() == 0.0

    def test_wait_returns_false_when_spent(self):
        state = RetryPolicy(max_attempts=1).start()
        assert state.wait() is False


def _scripted_server(handler):
    """Accept connections until stopped; one request per connection."""
    listener = socket.create_server(("127.0.0.1", 0))
    listener.settimeout(0.25)
    port = listener.getsockname()[1]
    request_count = [0]
    stop = threading.Event()

    def serve() -> None:
        try:
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                with conn:
                    conn.settimeout(5.0)
                    try:
                        data = conn.recv(65536)
                    except OSError:
                        continue
                    if not data:
                        continue
                    request_count[0] += 1
                    handler(conn, request_count[0])
        finally:
            listener.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return port, request_count, stop, thread


def _busy_response() -> bytes:
    envelope = json.dumps(
        {"error": {"type": "ServerBusyError", "message": "replica saturated"}}
    ).encode("utf-8")
    return (
        b"HTTP/1.1 503 Service Unavailable\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(len(envelope)).encode() + b"\r\n"
        b"Connection: close\r\n\r\n" + envelope
    )


class TestPolicyGovernsTheWire:
    def test_failover_rotations_match_max_attempts(self):
        """A policy of N attempts puts exactly N requests on a busy replica."""

        def always_busy(conn, _n):
            conn.sendall(_busy_response())

        port, count, stop, thread = _scripted_server(always_busy)
        try:
            policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
            with FailoverCorpusClient(
                [f"http://127.0.0.1:{port}"], timeout=5.0, retry=policy
            ) as client:
                with pytest.raises(ServerConnectionError, match="all 1 replicas"):
                    client.get(0)
            stop.set()
            thread.join()
            assert count[0] == 3
        finally:
            stop.set()
            thread.join()

    def test_single_attempt_policy_disables_retries(self):
        def always_busy(conn, _n):
            conn.sendall(_busy_response())

        port, count, stop, thread = _scripted_server(always_busy)
        try:
            policy = RetryPolicy(max_attempts=1)
            with FailoverCorpusClient(
                [f"http://127.0.0.1:{port}"], timeout=5.0, retry=policy
            ) as client:
                with pytest.raises(ServerConnectionError):
                    client.get(0)
            stop.set()
            thread.join()
            assert count[0] == 1
        finally:
            stop.set()
            thread.join()

    def test_connect_phase_retries_ride_out_a_refused_replica(self):
        """A server that comes up between attempts is reached by the retry."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()  # now refused — until the delayed server binds it

        body = b"hello-record"
        response = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/plain; charset=utf-8\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n" + body
        )
        ready = threading.Event()

        def come_up_late() -> None:
            time.sleep(0.25)
            late = socket.create_server(("127.0.0.1", port))
            ready.set()
            late.settimeout(5.0)
            try:
                conn, _ = late.accept()
                with conn:
                    conn.recv(65536)
                    conn.sendall(response)
            except socket.timeout:
                pass
            finally:
                late.close()

        thread = threading.Thread(target=come_up_late, daemon=True)
        thread.start()
        policy = RetryPolicy(max_attempts=8, base_delay=0.1, multiplier=1.0, jitter=0.0)
        with CorpusClient(f"http://127.0.0.1:{port}", timeout=5.0, retry=policy) as client:
            assert client.get(0) == "hello-record"
        thread.join()


class TestReadPhaseStalls:
    def test_stream_stall_raises_typed_error_with_delivered(self):
        """Records before the stall are delivered; the error counts them."""

        def stall_mid_stream(conn, _n):
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; charset=utf-8\r\n"
                b"Content-Length: 1000\r\n\r\n"
                b"alpha\nbravo\ncharlie\n"
            )
            time.sleep(2.0)  # stall with the connection open

        port, _count, stop, thread = _scripted_server(stall_mid_stream)
        try:
            with CorpusClient(
                f"http://127.0.0.1:{port}", timeout=0.4, compress=False
            ) as client:
                received = []
                with pytest.raises(
                    ServerConnectionError, match="stalled mid-stream"
                ) as excinfo:
                    for record in client.iter_range(0, 100):
                        received.append(record)
                assert received == ["alpha", "bravo", "charlie"]
                assert excinfo.value.delivered == 3
        finally:
            stop.set()
            thread.join()

    def test_get_stall_raises_typed_error(self):
        def stall_before_answering(conn, _n):
            time.sleep(2.0)

        port, _count, stop, thread = _scripted_server(stall_before_answering)
        try:
            with CorpusClient(f"http://127.0.0.1:{port}", timeout=0.3) as client:
                with pytest.raises(ServerConnectionError):
                    client.get(0)
        finally:
            stop.set()
            thread.join()
