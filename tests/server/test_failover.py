"""The replica-aware client: round-robin, retry classification, stream resume.

The policy under test (one policy, shared with the async twin through
:func:`repro.server.protocol.is_retryable`):

* retryable outcomes — connection refused/lost, HTTP 503 — rotate to the
  next replica,
* fatal typed outcomes — 404 out-of-range, 400 malformed — propagate
  immediately (every replica would answer identically),
* exhausting every replica with no progress raises a typed
  :class:`ServerConnectionError` naming the fleet,
* a replica SIGKILLed mid-load costs zero failed reads (the acceptance
  criterion's replica-death integration test lives here).
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import (
    ProtocolError,
    RandomAccessError,
    ServerBusyError,
    ServerConnectionError,
    ServerError,
)
from repro.server import (
    BackgroundServer,
    CorpusClient,
    FailoverCorpusClient,
    ServerFleet,
    protocol,
)
from repro.store import open_reader


def _dead_url() -> str:
    """A URL nothing listens on (bind-then-close reserves the port)."""
    probe = socket.create_server(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


class TestRouting:
    def test_single_live_replica_serves(self, server, corpus):
        with FailoverCorpusClient([server.url], timeout=5.0) as client:
            assert client.get(3) == corpus[3]
            assert len(client) == len(corpus)

    def test_dead_replica_fails_over_to_live_one(self, server, corpus):
        with FailoverCorpusClient([_dead_url(), server.url], timeout=2.0) as client:
            # Several calls so the rotating cursor passes through the dead
            # replica in first position too.
            for i in range(4):
                assert client.get(i) == corpus[i]
            assert client.get_many([0, 5, 9]) == [corpus[0], corpus[5], corpus[9]]
            assert list(client.iter_range(10, 30)) == list(corpus[10:30])

    def test_comma_spelling_constructs_the_same_client(self, server, corpus):
        with FailoverCorpusClient(
            f"{_dead_url()},{server.url}", timeout=2.0
        ) as client:
            assert len(client.urls) == 2
            assert client.get(0) == corpus[0]

    def test_sample_fails_over_and_stays_deterministic(self, server, corpus):
        with FailoverCorpusClient([_dead_url(), server.url], timeout=2.0) as client:
            indices_a, records_a = client.sample(5, seed=7)
            indices_b, records_b = client.sample(5, seed=7)
        assert indices_a == indices_b
        assert records_a == records_b == [corpus[i] for i in indices_a]

    def test_no_urls_raises(self):
        with pytest.raises(ServerError, match="no replica URLs"):
            FailoverCorpusClient([])


class TestRetryClassification:
    def test_all_replicas_dead_raises_typed_exhaustion(self):
        urls = [_dead_url(), _dead_url(), _dead_url()]
        with FailoverCorpusClient(urls, timeout=1.0) as client:
            with pytest.raises(ServerConnectionError, match="all 3 replicas"):
                client.get(0)

    def test_fatal_404_propagates_without_failover(self, server, corpus):
        """An out-of-range index must NOT burn the rotation: the error is
        the request's fault and every replica would repeat it."""
        with FailoverCorpusClient([server.url, _dead_url()], timeout=2.0) as client:
            for _ in range(2):  # both cursor positions
                with pytest.raises(RandomAccessError):
                    client.get(len(corpus) + 5)

    def test_fatal_400_propagates_without_failover(self, server):
        with FailoverCorpusClient([server.url], timeout=2.0) as client:
            with pytest.raises(ProtocolError):
                client.get_many([0, "x"])  # type: ignore[list-item]

    def test_503_fails_over_to_live_replica(self, server, corpus):
        """A replica answering 503 envelopes is busy, not broken: the call
        must rotate onward and succeed."""
        status, body = protocol.encode_error(ServerBusyError("draining"))
        head = (
            f"HTTP/1.1 {status} {protocol.STATUS_REASONS[status]}\r\n"
            f"Content-Type: {protocol.CONTENT_TYPE_JSON}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(0.25)
        busy_port = listener.getsockname()[1]
        stop = threading.Event()

        def always_busy() -> None:
            try:
                while not stop.is_set():
                    try:
                        conn, _ = listener.accept()
                    except socket.timeout:
                        continue
                    with conn:
                        if conn.recv(65536):
                            conn.sendall(head + body)
            finally:
                listener.close()

        thread = threading.Thread(target=always_busy, daemon=True)
        thread.start()
        try:
            with FailoverCorpusClient(
                [f"http://127.0.0.1:{busy_port}", server.url], timeout=5.0
            ) as client:
                for i in range(4):  # both cursor positions hit the busy one
                    assert client.get(i) == corpus[i]
        finally:
            stop.set()
            thread.join()

    def test_busy_fleet_front_exhausts_as_typed_error(self):
        """All replicas 503 → the exhaustion error chains the busy signal."""
        status, body = protocol.encode_error(ServerBusyError("no live workers"))
        head = (
            f"HTTP/1.1 503 {protocol.STATUS_REASONS[503]}\r\n"
            f"Content-Type: {protocol.CONTENT_TYPE_JSON}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(0.25)
        port = listener.getsockname()[1]
        stop = threading.Event()

        def busy() -> None:
            try:
                while not stop.is_set():
                    try:
                        conn, _ = listener.accept()
                    except socket.timeout:
                        continue
                    with conn:
                        if conn.recv(65536):
                            conn.sendall(head + body)
            finally:
                listener.close()

        thread = threading.Thread(target=busy, daemon=True)
        thread.start()
        try:
            with FailoverCorpusClient(
                [f"http://127.0.0.1:{port}"], timeout=5.0
            ) as client:
                with pytest.raises(ServerConnectionError, match="all 1 replicas"):
                    client.get(0)
        finally:
            stop.set()
            thread.join()


class TestStreamResume:
    def test_stream_resumes_on_next_replica_mid_record_cut(self, server, corpus):
        """Replica 0 streams a prefix then dies; the stream must continue on
        replica 1 at the first undelivered record — no gaps, no duplicates."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def serve_prefix_then_die() -> None:
            conn, _ = listener.accept()
            conn.recv(65536)
            payload = protocol.encode_records_body(list(corpus[:7]))
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; charset=utf-8\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                + f"{len(payload):x}\r\n".encode() + payload + b"\r\n"
            )
            conn.close()  # no terminating chunk: mid-stream death
            listener.close()

        thread = threading.Thread(target=serve_prefix_then_die, daemon=True)
        thread.start()
        try:
            client = FailoverCorpusClient(
                [f"http://127.0.0.1:{port}", server.url], timeout=5.0
            )
            received = list(client.iter_range(0, 40))
            assert received == list(corpus[:40])  # exactly once, in order
            client.close()
        finally:
            thread.join()

    def test_stream_exhaustion_with_no_progress_raises(self):
        with FailoverCorpusClient([_dead_url(), _dead_url()], timeout=1.0) as client:
            with pytest.raises(ServerConnectionError, match="failed streaming"):
                list(client.iter_range(0, 10))


class TestOpenReaderDispatch:
    def test_multi_url_string_opens_failover_client(self, server):
        reader = open_reader(f"{server.url},{server.url}")
        try:
            assert isinstance(reader, FailoverCorpusClient)
            assert reader.get(0)
        finally:
            reader.close()

    def test_url_list_opens_failover_client(self, server):
        reader = open_reader([server.url, server.url])
        try:
            assert isinstance(reader, FailoverCorpusClient)
        finally:
            reader.close()

    def test_single_url_still_opens_plain_client(self, server):
        reader = open_reader(server.url)
        try:
            assert isinstance(reader, CorpusClient)
            assert not isinstance(reader, FailoverCorpusClient)
        finally:
            reader.close()

    def test_mixed_spec_raises(self):
        with pytest.raises(ServerError, match="mixes"):
            open_reader("http://a:1,corpus.library")


class TestReplicaDeathIntegration:
    """The acceptance criterion: one replica SIGKILLed mid-load, zero
    failed reads."""

    def test_replica_sigkilled_mid_load_zero_failed_reads(
        self, library_dir, corpus
    ):
        # Replica A: in-process background server (stable).  Replica B: a
        # real worker process behind a single-worker fleet — SIGKILL-able.
        with BackgroundServer(library_dir, readers=2) as stable:
            fleet = ServerFleet(library_dir, workers=1)
            fleet.start()
            try:
                client = FailoverCorpusClient(
                    [fleet.url, stable.url], timeout=5.0
                )
                total = len(corpus)
                failed = 0
                for step in range(60):
                    if step == 20:
                        fleet.kill_worker(0)  # SIGKILL mid-load
                    index = step % total
                    try:
                        assert client.get(index) == corpus[index]
                        batch = client.get_many([index, (index + 3) % total])
                        assert batch == [corpus[index], corpus[(index + 3) % total]]
                    except ServerConnectionError:
                        failed += 1
                assert failed == 0, f"{failed} reads failed across the kill"
                # Streams keep working after the kill too.
                assert list(client.iter_range(0, total)) == list(corpus)
                client.close()
            finally:
                fleet.stop()
