"""Loopback round-trip parity: the server serves exactly what the library holds.

The acceptance bar of the serving front: every record fetched through
:class:`CorpusClient` — single, batch, and streamed range — is byte-identical
to a direct :meth:`CorpusLibrary.get` over both a multi-shard generated
corpus and the pinned golden fixtures.
"""

from __future__ import annotations

import pytest

from repro.library import CorpusLibrary
from repro.server import BackgroundServer, CorpusClient
from repro.store import open_reader


class TestHealthAndStats:
    def test_healthz(self, client, corpus):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["records"] == len(corpus)

    def test_stats_shape(self, client, corpus):
        stats = client.stats()
        assert stats["records"] == len(corpus)
        assert stats["shards"] == 3
        assert stats["pool_size"] == 3
        assert set(stats["cache"]) == {
            "hits",
            "misses",
            "capacity",
            "cached_blocks",
            "evictions",
            "hit_rate",
        }
        assert stats["manifest"]["total_records"] == len(corpus)
        assert stats["counters"]["requests"] >= 1

    def test_len_comes_from_stats(self, client, corpus):
        assert len(client) == len(corpus)

    def test_stats_counts_requests_and_cache_traffic(self, library_dir):
        """A fresh server starts at zero and tallies what it serves."""
        with BackgroundServer(library_dir, readers=2) as server:
            with CorpusClient(server.url) as client:
                before = client.stats()["counters"]
                assert before["single"] == 0 and before["batch"] == 0
                client.get(0)
                client.get(1)
                client.get_many([2, 3, 4])
                after = client.stats()["counters"]
                assert after["single"] == 2
                assert after["batch"] == 1
                assert after["records_served"] == 5
                cache = client.stats()["cache"]
                # Five records out of blocks of 8: some block was re-used.
                assert cache["hits"] + cache["misses"] >= 2


class TestRoundTripParity:
    def test_single_get_parity_every_record(self, client, library_dir, corpus):
        with CorpusLibrary.open(library_dir) as direct:
            for index in range(len(corpus)):
                assert client.get(index) == direct.get(index)

    def test_batch_parity(self, client, library_dir, corpus):
        indices = [0, 119, 7, 63, 64, 1, 40, 40]  # cross-shard, duplicates, ends
        with CorpusLibrary.open(library_dir) as direct:
            assert client.get_many(indices) == direct.get_many(indices)

    def test_empty_batch(self, client):
        assert client.get_many([]) == []

    def test_stream_full_range_parity(self, client, library_dir, corpus):
        with CorpusLibrary.open(library_dir) as direct:
            assert list(client.iter_all()) == list(direct.iter_all())

    def test_stream_sub_range_crosses_shards(self, client, library_dir):
        # 3 shards x 40 records: [35, 85) spans all three.
        with CorpusLibrary.open(library_dir) as direct:
            assert client.slice(35, 85) == direct.slice(35, 85)

    def test_stream_unterminated_stop_clamped(self, client, corpus):
        assert client.slice(110, 10_000) == client.slice(110, len(corpus))

    def test_record_reader_aliases(self, client):
        assert client.line(5) == client.get(5)
        assert client.lines([1, 2]) == client.get_many([1, 2])
        assert client[9] == client.get(9)


class TestGoldenFixtureParity:
    """The pinned `.zss` bytes served over the wire, byte for byte."""

    @pytest.fixture(scope="class")
    def golden_server(self):
        from tests.fixtures.regenerate import FIXTURES

        with BackgroundServer(FIXTURES / "corpus.zss", readers=2) as server:
            yield server

    def test_every_golden_record_round_trips(self, golden_server):
        from tests.fixtures.regenerate import FIXTURES

        with CorpusLibrary.open(FIXTURES / "corpus.zss") as direct:
            with CorpusClient(golden_server.url) as client:
                assert len(client) == len(direct)
                for index in range(len(direct)):
                    assert client.get(index) == direct.get(index)
                assert list(client.iter_all()) == list(direct.iter_all())


class TestOpenReaderDispatch:
    def test_open_reader_serves_urls(self, server, library_dir):
        with CorpusLibrary.open(library_dir) as direct:
            with open_reader(server.url) as reader:
                assert isinstance(reader, CorpusClient)
                assert len(reader) == len(direct)
                assert reader.get(42) == direct.get(42)
                assert reader.get_many([3, 99]) == direct.get_many([3, 99])
                assert reader.slice(10, 20) == direct.slice(10, 20)

    def test_screening_campaign_over_url(self, server, library_dir, plain_codec):
        from repro.screening.pipeline import ScreeningCampaign

        campaign = ScreeningCampaign(plain_codec, top_k=5)
        remote = campaign.run(server.url, sample=20, seed=3)
        local = campaign.run(library_dir, sample=20, seed=3)
        assert remote.sampled_indices == local.sampled_indices
        assert remote.pocket_results == local.pocket_results

    def test_screening_fetch_hit_over_url(self, server, library_dir, plain_codec):
        from repro.screening.pipeline import ScreeningCampaign

        campaign = ScreeningCampaign(plain_codec, top_k=5)
        assert campaign.fetch_hit(server.url, 17) == campaign.fetch_hit(library_dir, 17)

    def test_datasets_io_reads_url(self, server, corpus):
        from repro.datasets.io import read_smiles

        # The server decodes with the embedded dictionary; plain_codec did
        # no preprocessing, so the wire records are the corpus itself.
        assert read_smiles(server.url) == [s.split()[0] for s in corpus]


class TestConnectionBehaviour:
    def test_keep_alive_reuses_one_connection(self, client):
        client.get(0)
        conn = client._conn
        client.get(1)
        client.get_many([2, 3])
        assert client._conn is conn  # same socket across calls

    def test_client_survives_reconnect_after_close(self, client):
        client.get(0)
        client.close()
        assert client.get(1)  # transparently reopened

    def test_one_client_shared_across_threads(self, server, library_dir):
        """One CorpusClient hammered from many threads serves correct bytes.

        Unit requests serialize over the shared keep-alive socket behind the
        client's lock (the remote analogue of ShardReader's I/O lock), and a
        concurrent stream rides its own dedicated connection.
        """
        import threading

        with CorpusLibrary.open(library_dir) as direct:
            expected = list(direct.iter_all())
        with CorpusClient(server.url) as shared:
            errors: list = []

            def hammer(offset: int) -> None:
                try:
                    for step in range(30):
                        index = (step * 7 + offset) % len(expected)
                        assert shared.get(index) == expected[index]
                    assert shared.get_many([offset, offset + 1]) == expected[
                        offset : offset + 2
                    ]
                    assert shared.slice(offset, offset + 20) == expected[
                        offset : offset + 20
                    ]
                except Exception as exc:  # pragma: no cover - failure reporting
                    errors.append(exc)

            threads = [threading.Thread(target=hammer, args=(n,)) for n in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors

    def test_abandoned_stream_does_not_poison_unit_requests(self, client, corpus):
        stream = client.iter_range(0, len(corpus))
        assert next(stream)  # consume one record, then abandon the generator
        assert client.get(3)  # shared keep-alive socket unaffected
        stream.close()
        assert client.get(4)

    def test_concurrent_clients_see_identical_bytes(self, server, library_dir):
        import threading

        with CorpusLibrary.open(library_dir) as direct:
            expected = [direct.get(i) for i in range(40)]
        results: dict = {}

        def worker(slot: int) -> None:
            with CorpusClient(server.url) as cli:
                results[slot] = [cli.get(i) for i in range(40)]

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(results[slot] == expected for slot in range(8))
