"""``zsmiles serve``: argument surface and a real subprocess round trip."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.datasets.io import write_smi
from repro.server import CorpusClient
from repro.server.app import DEFAULT_HOST, DEFAULT_PORT

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve", "corpus.library"])
        assert args.host == DEFAULT_HOST
        assert args.port == DEFAULT_PORT
        assert args.readers >= 1
        assert args.mmap is False

    def test_all_flags(self):
        args = build_parser().parse_args([
            "serve", "c.library", "--host", "0.0.0.0", "--port", "0",
            "--readers", "8", "--cache-blocks", "4", "--mmap",
        ])
        assert (args.host, args.port, args.readers, args.cache_blocks, args.mmap) == (
            "0.0.0.0", 0, 8, 4, True
        )

    def test_rejects_bad_counts(self, tmp_path):
        target = tmp_path / "x.library"
        assert main(["serve", str(target), "--readers", "0"]) == 2
        assert main(["serve", str(target), "--cache-blocks", "0"]) == 2
        assert main(["serve", str(target), "--port", "-1"]) == 2

    def test_access_log_flag(self):
        assert build_parser().parse_args(["serve", "c.library"]).access_log is None
        args = build_parser().parse_args(
            ["serve", "c.library", "--access-log", "access.log"]
        )
        assert args.access_log == "access.log"


@pytest.fixture(scope="module")
def served_library(tmp_path_factory):
    """A tiny packed library built through the CLI, ready to serve."""
    from repro.datasets import mixed

    directory = tmp_path_factory.mktemp("cli_serve")
    corpus = mixed.generate(96, seed=23)
    smi = directory / "corpus.smi"
    write_smi(smi, corpus)
    dictionary = directory / "shared.dct"
    assert main(["train", str(smi), "-o", str(dictionary), "--lmax", "6"]) == 0
    library_dir = directory / "corpus.library"
    assert main([
        "pack", str(smi), "-d", str(dictionary), "-o", str(library_dir),
        "--shards", "2", "--block-size", "16",
    ]) == 0
    return library_dir


class TestServeSubprocess:
    def test_serve_round_trip_and_sigterm_shutdown(self, served_library):
        """The real thing: ``zsmiles serve`` as a process, ephemeral port,
        client round trip, clean exit on SIGTERM."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli",
             "serve", str(served_library), "--port", "0", "--readers", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            announce = process.stdout.readline()
            assert "serving" in announce and "http://" in announce, announce
            url = next(tok for tok in announce.split() if tok.startswith("http://"))
            with CorpusClient(url, timeout=10.0) as client:
                direct_len = len(client)
                assert direct_len == 96
                assert client.get(0)
                assert client.get_many([5, 90]) == [client.get(5), client.get(90)]
                assert len(client.slice(0, 96)) == 96
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_serve_parity_with_direct_reads(self, served_library):
        """Records over the subprocess wire == records read in-process."""
        from repro.library import CorpusLibrary

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli",
             "serve", str(served_library), "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            announce = process.stdout.readline()
            url = next(tok for tok in announce.split() if tok.startswith("http://"))
            with CorpusLibrary.open(served_library) as direct:
                expected = list(direct.iter_all())
            with CorpusClient(url, timeout=10.0) as client:
                assert list(client.iter_all()) == expected
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=15)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_serve_access_log_writes_structured_lines(self, served_library, tmp_path):
        """``--access-log PATH`` produces one JSON line per request."""
        import json

        log_path = tmp_path / "access.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli",
             "serve", str(served_library), "--port", "0", "--readers", "2",
             "--access-log", str(log_path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            announce = process.stdout.readline()
            url = next(tok for tok in announce.split() if tok.startswith("http://"))
            with CorpusClient(url, timeout=10.0) as client:
                assert client.get(0)
                assert client.get_many([1, 2])
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        entries = [json.loads(line) for line in log_path.read_text().splitlines()]
        routes = [entry["route"] for entry in entries]
        assert "single" in routes and "batch" in routes
        for entry in entries:
            assert entry["status"] == 200
            assert entry["request_id"]
            assert entry["duration_ms"] >= 0
