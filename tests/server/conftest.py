"""Shared fixtures for the HTTP serving-front test suites.

One small multi-shard library is packed per module and served by one
:class:`~repro.server.BackgroundServer`; tests that need fresh counters or
a server they can kill start their own.
"""

from __future__ import annotations

import pytest

from repro.engine import ZSmilesEngine
from repro.library import pack_library
from repro.server import BackgroundServer, CorpusClient


@pytest.fixture(scope="module")
def corpus(mixed_corpus_small):
    """120 records across 3 shards: small, fast, multi-shard routing."""
    return mixed_corpus_small[:120]


@pytest.fixture(scope="module")
def engine(plain_codec):
    """Serial engine over the no-preprocessing codec (byte-exact round trips)."""
    with ZSmilesEngine.from_codec(plain_codec, backend="serial") as eng:
        yield eng


@pytest.fixture(scope="module")
def library_dir(tmp_path_factory, corpus, engine):
    """A 3-shard library over the corpus (blocks of 8)."""
    directory = tmp_path_factory.mktemp("server_lib") / "corpus.library"
    pack_library(directory, corpus, engine, shards=3, records_per_block=8)
    return directory


@pytest.fixture(scope="module")
def server(library_dir):
    """A background corpus server over the shared library (module-lived)."""
    with BackgroundServer(library_dir, readers=3, stream_batch=16) as srv:
        yield srv


@pytest.fixture()
def client(server):
    """A fresh blocking client per test (the server outlives it)."""
    with CorpusClient(server.url, timeout=10.0) as cli:
        yield cli
