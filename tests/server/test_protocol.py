"""Unit tests for the wire schema: status mapping, envelopes, body parsing."""

from __future__ import annotations

import pytest

from repro.errors import (
    LibraryError,
    ManifestError,
    ProtocolError,
    RandomAccessError,
    ServerConnectionError,
    ServerError,
    StoreFormatError,
)
from repro.server import protocol


class TestStatusMapping:
    def test_out_of_range_is_404(self):
        assert protocol.status_for_exception(RandomAccessError("nope")) == 404

    def test_malformed_request_is_400(self):
        assert protocol.status_for_exception(ProtocolError("bad")) == 400

    @pytest.mark.parametrize(
        "exc",
        [ManifestError("m"), StoreFormatError("s"), LibraryError("l"), ServerError("x")],
    )
    def test_server_side_trouble_is_500(self, exc):
        assert protocol.status_for_exception(exc) == 500

    def test_unknown_exception_is_500(self):
        assert protocol.status_for_exception(RuntimeError("?")) == 500


class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "exc",
        [
            RandomAccessError("record 9 out of range [0, 5)"),
            ProtocolError("bad body"),
            ManifestError("manifest drift"),
            StoreFormatError("crc mismatch"),
            LibraryError("no reader"),
        ],
    )
    def test_round_trip_preserves_type_and_message(self, exc):
        status, body = protocol.encode_error(exc)
        rebuilt = protocol.exception_from_envelope(body, status)
        assert type(rebuilt) is type(exc)
        assert str(rebuilt) == str(exc)

    def test_unknown_type_degrades_to_server_error(self):
        rebuilt = protocol.exception_from_envelope(
            b'{"error": {"type": "WeirdError", "message": "?"}}', 500
        )
        assert type(rebuilt) is ServerError

    def test_unparsable_body_degrades_to_server_error(self):
        rebuilt = protocol.exception_from_envelope(b"<html>gateway</html>", 502)
        assert isinstance(rebuilt, ServerError)
        assert "502" in str(rebuilt)

    def test_connection_error_type_is_known(self):
        # ServerConnectionError never travels the wire but must stay mappable
        # if a proxy echoes it back.
        status, body = protocol.encode_error(ServerConnectionError("gone"))
        assert type(protocol.exception_from_envelope(body, status)) is ServerConnectionError


class TestBatchBody:
    def test_round_trip(self):
        body = protocol.encode_batch_request([3, 1, 2])
        assert protocol.parse_batch_request(body) == [3, 1, 2]

    def test_empty_list_is_valid(self):
        assert protocol.parse_batch_request(b'{"indices": []}') == []

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b"[]",
            b'{"wrong": []}',
            b'{"indices": 3}',
            b'{"indices": ["a"]}',
            b'{"indices": [1.5]}',
            b'{"indices": [true]}',
        ],
    )
    def test_malformed_bodies_raise_protocol_error(self, body):
        with pytest.raises(ProtocolError):
            protocol.parse_batch_request(body)

    def test_oversized_batch_rejected(self):
        body = protocol.encode_batch_request(list(range(protocol.MAX_BATCH_INDICES + 1)))
        with pytest.raises(ProtocolError, match="cap"):
            protocol.parse_batch_request(body)


class TestRangeQuery:
    def test_defaults_cover_everything(self):
        assert protocol.parse_range_query({}, 100) == (0, 100)

    def test_stop_clamped_to_total(self):
        assert protocol.parse_range_query({"start": "10", "stop": "999"}, 100) == (10, 100)

    def test_start_past_end_is_an_empty_range_like_local_slice(self):
        # RecordAccessMixin.slice(60, 70) over 50 records returns [] — the
        # remote contract must match, not error.
        assert protocol.parse_range_query({"start": "60", "stop": "70"}, 50) == (60, 50)

    @pytest.mark.parametrize("query", [{"start": "x"}, {"stop": "y"}])
    def test_non_integers_raise_protocol_error(self, query):
        with pytest.raises(ProtocolError):
            protocol.parse_range_query(query, 100)

    @pytest.mark.parametrize("query", [{"start": "-1"}, {"start": "50", "stop": "10"}])
    def test_invalid_ranges_raise_random_access_error_like_local_slice(self, query):
        # Local readers raise RandomAccessError for these; remote parity.
        with pytest.raises(RandomAccessError):
            protocol.parse_range_query(query, 100)


class TestIsUrl:
    @pytest.mark.parametrize("value", ["http://h:1", "https://h/corpus"])
    def test_urls(self, value):
        assert protocol.is_url(value)

    @pytest.mark.parametrize("value", ["corpus.zss", "/abs/lib", "ftp://h", 3, None])
    def test_non_urls(self, value):
        assert not protocol.is_url(value)

    def test_path_objects_are_not_urls(self):
        from pathlib import Path

        # Path collapses "//", which is exactly why the raw-string check
        # must run before any Path() conversion.
        assert not protocol.is_url(Path("http://h:1"))
