"""Unit tests for the wire schema: status mapping, envelopes, body parsing."""

from __future__ import annotations

import pytest

from repro.errors import (
    LibraryError,
    ManifestError,
    ProtocolError,
    RandomAccessError,
    ServerConnectionError,
    ServerError,
    StoreFormatError,
)
from repro.server import protocol


class TestStatusMapping:
    def test_out_of_range_is_404(self):
        assert protocol.status_for_exception(RandomAccessError("nope")) == 404

    def test_malformed_request_is_400(self):
        assert protocol.status_for_exception(ProtocolError("bad")) == 400

    @pytest.mark.parametrize(
        "exc",
        [ManifestError("m"), StoreFormatError("s"), LibraryError("l"), ServerError("x")],
    )
    def test_server_side_trouble_is_500(self, exc):
        assert protocol.status_for_exception(exc) == 500

    def test_unknown_exception_is_500(self):
        assert protocol.status_for_exception(RuntimeError("?")) == 500


class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "exc",
        [
            RandomAccessError("record 9 out of range [0, 5)"),
            ProtocolError("bad body"),
            ManifestError("manifest drift"),
            StoreFormatError("crc mismatch"),
            LibraryError("no reader"),
        ],
    )
    def test_round_trip_preserves_type_and_message(self, exc):
        status, body = protocol.encode_error(exc)
        rebuilt = protocol.exception_from_envelope(body, status)
        assert type(rebuilt) is type(exc)
        assert str(rebuilt) == str(exc)

    def test_unknown_type_degrades_to_server_error(self):
        rebuilt = protocol.exception_from_envelope(
            b'{"error": {"type": "WeirdError", "message": "?"}}', 500
        )
        assert type(rebuilt) is ServerError

    def test_unparsable_body_degrades_to_server_error(self):
        rebuilt = protocol.exception_from_envelope(b"<html>gateway</html>", 502)
        assert isinstance(rebuilt, ServerError)
        assert "502" in str(rebuilt)

    def test_connection_error_type_is_known(self):
        # ServerConnectionError never travels the wire but must stay mappable
        # if a proxy echoes it back.
        status, body = protocol.encode_error(ServerConnectionError("gone"))
        assert type(protocol.exception_from_envelope(body, status)) is ServerConnectionError


class TestBatchBody:
    def test_round_trip(self):
        body = protocol.encode_batch_request([3, 1, 2])
        assert protocol.parse_batch_request(body) == [3, 1, 2]

    def test_empty_list_is_valid(self):
        assert protocol.parse_batch_request(b'{"indices": []}') == []

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b"[]",
            b'{"wrong": []}',
            b'{"indices": 3}',
            b'{"indices": ["a"]}',
            b'{"indices": [1.5]}',
            b'{"indices": [true]}',
        ],
    )
    def test_malformed_bodies_raise_protocol_error(self, body):
        with pytest.raises(ProtocolError):
            protocol.parse_batch_request(body)

    def test_oversized_batch_rejected(self):
        body = protocol.encode_batch_request(list(range(protocol.MAX_BATCH_INDICES + 1)))
        with pytest.raises(ProtocolError, match="cap"):
            protocol.parse_batch_request(body)


class TestRangeQuery:
    def test_defaults_cover_everything(self):
        assert protocol.parse_range_query({}, 100) == (0, 100)

    def test_stop_clamped_to_total(self):
        assert protocol.parse_range_query({"start": "10", "stop": "999"}, 100) == (10, 100)

    def test_start_past_end_is_an_empty_range_like_local_slice(self):
        # RecordAccessMixin.slice(60, 70) over 50 records returns [] — the
        # remote contract must match, not error.
        assert protocol.parse_range_query({"start": "60", "stop": "70"}, 50) == (60, 50)

    @pytest.mark.parametrize("query", [{"start": "x"}, {"stop": "y"}])
    def test_non_integers_raise_protocol_error(self, query):
        with pytest.raises(ProtocolError):
            protocol.parse_range_query(query, 100)

    @pytest.mark.parametrize("query", [{"start": "-1"}, {"start": "50", "stop": "10"}])
    def test_invalid_ranges_raise_random_access_error_like_local_slice(self, query):
        # Local readers raise RandomAccessError for these; remote parity.
        with pytest.raises(RandomAccessError):
            protocol.parse_range_query(query, 100)


class TestIsUrl:
    @pytest.mark.parametrize("value", ["http://h:1", "https://h/corpus"])
    def test_urls(self, value):
        assert protocol.is_url(value)

    @pytest.mark.parametrize("value", ["corpus.zss", "/abs/lib", "ftp://h", 3, None])
    def test_non_urls(self, value):
        assert not protocol.is_url(value)

    def test_path_objects_are_not_urls(self):
        from pathlib import Path

        # Path collapses "//", which is exactly why the raw-string check
        # must run before any Path() conversion.
        assert not protocol.is_url(Path("http://h:1"))


class TestStrictQueryInts:
    """The wire only accepts strict decimal integers — Python's ``int()``
    laxness (plus signs, underscores, whitespace, unicode digits) must not
    let remote inputs outside the local call domain reach handlers."""

    @pytest.mark.parametrize("raw,expected", [("0", 0), ("42", 42), ("-7", -7)])
    def test_strict_spellings_parse(self, raw, expected):
        assert protocol.parse_query_int("x", raw) == expected

    @pytest.mark.parametrize(
        "raw", ["+5", " 5", "5 ", "1_0", "0x10", "٥", "1e3", "", "-", "abc", "5.0"]
    )
    def test_lax_spellings_are_protocol_errors(self, raw):
        with pytest.raises(ProtocolError, match="decimal integer"):
            protocol.parse_query_int("x", raw)

    def test_range_query_rejects_underscored_start(self):
        with pytest.raises(ProtocolError):
            protocol.parse_range_query({"start": "1_0"}, total=100)

    def test_sample_query_rejects_plus_n(self):
        with pytest.raises(ProtocolError):
            protocol.parse_sample_query({"n": "+5"}, total=100)

    def test_sample_query_rejects_lax_seed(self):
        with pytest.raises(ProtocolError):
            protocol.parse_sample_query({"n": "5", "seed": " 1"}, total=100)


class TestRetryClassification:
    def test_connection_loss_is_retryable(self):
        assert protocol.is_retryable(ServerConnectionError("refused"))

    def test_busy_is_retryable(self):
        from repro.errors import ServerBusyError

        assert protocol.is_retryable(ServerBusyError("503"))

    @pytest.mark.parametrize(
        "exc",
        [
            RandomAccessError("404"),
            ProtocolError("400"),
            ServerError("500"),
            ManifestError("corpus"),
        ],
    )
    def test_fatal_outcomes_are_not_retryable(self, exc):
        assert not protocol.is_retryable(exc)

    def test_untyped_503_envelope_degrades_to_busy(self):
        from repro.errors import ServerBusyError

        exc = protocol.exception_from_envelope(b"not json at all", 503)
        assert isinstance(exc, ServerBusyError)
        assert protocol.is_retryable(exc)

    def test_busy_round_trips_through_envelope(self):
        from repro.errors import ServerBusyError

        status, body = protocol.encode_error(ServerBusyError("drain"))
        assert status == 503
        rebuilt = protocol.exception_from_envelope(body, status)
        assert isinstance(rebuilt, ServerBusyError)
        assert str(rebuilt) == "drain"


class TestContentEncodingNegotiation:
    def test_plain_deflate_accepted(self):
        assert protocol.accepts_deflate({"accept-encoding": "deflate"})

    def test_comma_list_accepted(self):
        assert protocol.accepts_deflate({"accept-encoding": "gzip, deflate, br"})

    def test_missing_header_declines(self):
        assert not protocol.accepts_deflate({})

    def test_gzip_only_declines(self):
        assert not protocol.accepts_deflate({"accept-encoding": "gzip"})

    def test_q_zero_opt_out(self):
        assert not protocol.accepts_deflate({"accept-encoding": "deflate;q=0"})

    def test_positive_q_accepted(self):
        assert protocol.accepts_deflate({"accept-encoding": "deflate;q=0.5"})

    def test_garbled_q_declines(self):
        assert not protocol.accepts_deflate({"accept-encoding": "deflate;q=banana"})

    def test_small_body_stays_identity(self):
        body = b"tiny\n"
        out, encoding = protocol.negotiate_encoding(
            {"accept-encoding": "deflate"}, body
        )
        assert (out, encoding) == (body, None)

    def test_incompressible_body_stays_identity(self):
        import os

        body = os.urandom(4096)  # random bytes do not deflate smaller
        out, encoding = protocol.negotiate_encoding(
            {"accept-encoding": "deflate"}, body
        )
        assert (out, encoding) == (body, None)

    def test_compressible_body_deflates_and_round_trips(self):
        body = b"CCCCNCCCC\n" * 200
        out, encoding = protocol.negotiate_encoding(
            {"accept-encoding": "deflate"}, body
        )
        assert encoding == protocol.CONTENT_ENCODING_DEFLATE
        assert len(out) < len(body)
        assert protocol.inflate_body(out) == body

    def test_without_advertisement_stays_identity(self):
        body = b"CCCCNCCCC\n" * 200
        out, encoding = protocol.negotiate_encoding({}, body)
        assert (out, encoding) == (body, None)

    def test_inflate_garbage_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="deflate"):
            protocol.inflate_body(b"this is not zlib data")


class TestSplitReplicaUrls:
    def test_single_url(self):
        assert protocol.split_replica_urls("http://a:1") == ["http://a:1"]

    def test_comma_separated(self):
        assert protocol.split_replica_urls("http://a:1,http://b:2") == [
            "http://a:1",
            "http://b:2",
        ]

    def test_comma_spelling_tolerates_spaces_and_trailing_comma(self):
        assert protocol.split_replica_urls(" http://a:1 , http://b:2 ,") == [
            "http://a:1",
            "http://b:2",
        ]

    def test_sequence_of_urls(self):
        assert protocol.split_replica_urls(["http://a:1", "https://b:2"]) == [
            "http://a:1",
            "https://b:2",
        ]

    def test_plain_path_is_not_urls(self):
        assert protocol.split_replica_urls("corpus.library") == []

    def test_path_object_is_not_urls(self):
        from pathlib import Path

        assert protocol.split_replica_urls(Path("corpus.library")) == []

    def test_mixed_spec_raises(self):
        with pytest.raises(ServerError, match="mixes"):
            protocol.split_replica_urls("http://a:1,corpus.library")
