"""``GET /records:sample`` — uniform, seedable, clamped, typed failures."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.server import protocol
from repro.server.protocol import (
    MAX_SAMPLE_RECORDS,
    parse_sample_query,
    sample_payload,
)


class TestParseSampleQuery:
    def test_n_required(self):
        with pytest.raises(ProtocolError):
            parse_sample_query({}, total=10)

    def test_n_must_be_integer(self):
        with pytest.raises(ProtocolError):
            parse_sample_query({"n": "three"}, total=10)

    def test_n_must_be_non_negative(self):
        with pytest.raises(ProtocolError):
            parse_sample_query({"n": "-1"}, total=10)

    def test_n_capped(self):
        with pytest.raises(ProtocolError):
            parse_sample_query({"n": str(MAX_SAMPLE_RECORDS + 1)}, total=10)

    def test_n_clamped_to_total(self):
        assert parse_sample_query({"n": "50"}, total=10) == (10, None)

    def test_seed_optional_integer(self):
        assert parse_sample_query({"n": "3", "seed": "42"}, total=10) == (3, 42)
        with pytest.raises(ProtocolError):
            parse_sample_query({"n": "3", "seed": "x"}, total=10)

    def test_payload_shape(self):
        payload = sample_payload([1, 3], ["C", "N"], total=9, seed=7)
        assert payload == {
            "indices": [1, 3],
            "records": ["C", "N"],
            "total": 9,
            "seed": 7,
        }


class TestSampleEndpoint:
    def test_records_match_their_indices(self, client, corpus):
        indices, records = client.sample(10, seed=1)
        assert len(indices) == len(records) == 10
        assert indices == sorted(indices)
        assert len(set(indices)) == 10, "sampling is without replacement"
        for index, record in zip(indices, records):
            assert record == corpus[index]

    def test_seed_makes_draw_deterministic(self, client):
        assert client.sample(7, seed=99) == client.sample(7, seed=99)
        # A different seed virtually always draws a different subset.
        assert client.sample(7, seed=99) != client.sample(7, seed=100)

    def test_unseeded_draws_are_valid(self, client, corpus):
        indices, records = client.sample(5)
        assert len(indices) == 5
        for index, record in zip(indices, records):
            assert record == corpus[index]

    def test_n_clamped_to_corpus(self, client, corpus):
        indices, records = client.sample(10_000, seed=0)
        assert len(records) == len(corpus)
        assert indices == list(range(len(corpus)))

    def test_zero_sample_is_empty(self, client):
        assert client.sample(0, seed=1) == ([], [])

    def test_sample_caches_total(self, client, corpus):
        client.sample(1, seed=0)
        assert len(client) == len(corpus)

    def test_bad_n_raises_protocol_error(self, client, server):
        import urllib.error
        import urllib.request

        url = f"{server.url}{protocol.ROUTE_SAMPLE}?n=oops"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url)
        assert excinfo.value.code == 400

    def test_missing_n_raises_protocol_error(self, client, server):
        import urllib.error
        import urllib.request

        url = f"{server.url}{protocol.ROUTE_SAMPLE}"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url)
        assert excinfo.value.code == 400

    def test_post_not_allowed(self, client, server):
        import urllib.error
        import urllib.request

        url = f"{server.url}{protocol.ROUTE_SAMPLE}?n=1"
        request = urllib.request.Request(url, data=b"{}", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_sample_matches_local_reader_semantics(self, client, library_dir):
        """Transport parity: the server's draw is the local ``sample()``.

        A consumer sampling through ``open_reader`` must get the same
        records for the same ``(n, seed)`` whether the URL points at a
        local library or an HTTP replica — the campaign driver's resume
        determinism rides on this.
        """
        from repro.library import CorpusLibrary

        with CorpusLibrary.open(library_dir) as library:
            for n, seed in [(5, 0), (12, 99), (1, 7), (10_000, 3)]:
                assert client.sample(n, seed=seed) == library.sample(n, seed=seed)

    def test_stats_serve_dictionary_identity(self, client, library_dir):
        """/stats names the dictionary the library was packed with."""
        from repro.library import CorpusLibrary

        stats = client.stats()
        with CorpusLibrary.open(library_dir) as library:
            identity = library.dictionary_identity()
        assert stats["dictionary"]["hash"] == identity.hash
        assert stats["dictionary"]["entries"] == identity.entries

    def test_sample_counter_tallies(self, library_dir):
        from repro.server import BackgroundServer, CorpusClient

        with BackgroundServer(library_dir, readers=2) as server:
            with CorpusClient(server.url) as client:
                assert client.stats()["counters"]["sample"] == 0
                client.sample(3, seed=5)
                after = client.stats()["counters"]
                assert after["sample"] == 1
                assert after["records_served"] >= 3
