"""Failure paths: typed errors over the wire, dead servers, graceful shutdown.

These pin the serving front's error contract:

* the HTTP status and JSON envelope for every caller mistake,
* *error envelope parity* — the client raises the same :mod:`repro.errors`
  class, with the same message, a direct library call would raise,
* transport failure behaviour (connection refused, death mid-stream),
* graceful shutdown draining in-flight requests before the listener dies.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import threading

import pytest

from repro.errors import (
    ProtocolError,
    RandomAccessError,
    ServerConnectionError,
    ServerError,
)
from repro.library import AsyncCorpusLibrary, CorpusLibrary
from repro.server import BackgroundServer, CorpusClient, CorpusServer, protocol


def _raw_request(url: str, method: str, target: str, body: bytes = b"",
                 headers: dict = None) -> tuple:
    """One raw request, returning ``(status, body bytes)`` without client sugar."""
    host, port = url.rsplit(":", 1)
    conn = http.client.HTTPConnection(host[len("http://"):], int(port), timeout=10)
    try:
        conn.request(method, target, body=body or None, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestHttpErrorStatuses:
    def test_out_of_range_index_is_404(self, server, corpus):
        status, body = _raw_request(server.url, "GET", f"/records/{len(corpus)}")
        assert status == 404
        envelope = json.loads(body)["error"]
        assert envelope["type"] == "RandomAccessError"

    def test_negative_index_is_404(self, server):
        status, _ = _raw_request(server.url, "GET", "/records/-1")
        assert status == 404

    def test_non_integer_index_is_400(self, server):
        status, body = _raw_request(server.url, "GET", "/records/abc")
        assert status == 400
        assert json.loads(body)["error"]["type"] == "ProtocolError"

    def test_malformed_batch_body_is_400(self, server):
        status, body = _raw_request(server.url, "POST", "/records:batch", b"not json")
        assert status == 400
        assert json.loads(body)["error"]["type"] == "ProtocolError"

    def test_batch_without_indices_key_is_400(self, server):
        status, _ = _raw_request(server.url, "POST", "/records:batch", b'{"x": []}')
        assert status == 400

    def test_batch_with_get_method_is_400(self, server):
        status, body = _raw_request(server.url, "GET", "/records:batch")
        assert status == 400
        assert "POST" in json.loads(body)["error"]["message"]

    def test_inverted_range_is_404_like_local_slice(self, server):
        # Local slice(50, 10) raises RandomAccessError; the wire maps it 404.
        status, body = _raw_request(server.url, "GET", "/records?start=50&stop=10")
        assert status == 404
        assert json.loads(body)["error"]["type"] == "RandomAccessError"

    def test_non_integer_range_is_400(self, server):
        status, _ = _raw_request(server.url, "GET", "/records?start=abc")
        assert status == 400

    def test_unknown_route_is_404(self, server):
        status, body = _raw_request(server.url, "GET", "/nope")
        assert status == 404
        assert json.loads(body)["error"]["type"] == "NotFound"

    def test_unsupported_method_is_400(self, server):
        status, _ = _raw_request(server.url, "DELETE", "/records/0")
        assert status == 400

    def test_head_method_is_400(self, server):
        # HEAD would require body-less responses; the protocol doesn't speak
        # it, and answering with a body would poison keep-alive framing.
        status, _ = _raw_request(server.url, "HEAD", "/healthz")
        assert status == 400

    def test_oversized_request_line_is_400(self, server):
        """A request line past the stream limit gets an envelope, not a drop."""
        host, _, port = server.url[len("http://"):].partition(":")
        with socket.create_connection((host, int(port)), timeout=10) as conn:
            conn.sendall(b"GET /records?start=" + b"9" * 100_000 + b" HTTP/1.1\r\n\r\n")
            response = b""
            while b"\r\n\r\n" not in response:
                data = conn.recv(65536)
                if not data:
                    break
                response += data
        assert response.startswith(b"HTTP/1.1 400")


class TestEnvelopeParity:
    """The client raises exactly what a direct library call raises."""

    def test_out_of_range_raises_random_access_error_with_same_message(
        self, client, library_dir, corpus
    ):
        index = len(corpus) + 7
        with CorpusLibrary.open(library_dir) as direct:
            with pytest.raises(RandomAccessError) as direct_exc:
                direct.get(index)
        with pytest.raises(RandomAccessError) as remote_exc:
            client.get(index)
        assert str(remote_exc.value) == str(direct_exc.value)

    def test_batch_out_of_range_raises_random_access_error(self, client, corpus):
        with pytest.raises(RandomAccessError):
            client.get_many([0, len(corpus)])

    def test_oversized_batch_raises_protocol_error(self, client, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_BATCH_INDICES", 4)
        # The client-side encoder doesn't enforce the cap; the server does.
        with pytest.raises(ProtocolError, match="cap"):
            client.get_many([0, 1, 2, 3, 4])

    def test_stream_inverted_range_raises_random_access_error(
        self, client, library_dir
    ):
        """Same exception class and message as a direct reader.slice."""
        with CorpusLibrary.open(library_dir) as direct:
            with pytest.raises(RandomAccessError) as direct_exc:
                direct.slice(50, 10)
        with pytest.raises(RandomAccessError) as remote_exc:
            list(client.iter_range(50, 10))
        assert str(remote_exc.value) == str(direct_exc.value)

    def test_slice_past_end_is_empty_like_local(self, client, library_dir, corpus):
        with CorpusLibrary.open(library_dir) as direct:
            assert direct.slice(len(corpus) + 10, len(corpus) + 20) == []
        assert client.slice(len(corpus) + 10, len(corpus) + 20) == []


class TestTransportFailures:
    def test_connection_refused_raises_server_connection_error(self):
        # Bind-then-close guarantees an unused port.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = CorpusClient(f"http://127.0.0.1:{port}", timeout=2.0)
        with pytest.raises(ServerConnectionError):
            client.get(0)

    def test_server_death_mid_stream_raises_server_connection_error(self):
        """A stream cut before the terminating chunk is a typed error."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def serve_one_truncated() -> None:
            conn, _ = listener.accept()
            conn.recv(65536)
            payload = b"REC0\nREC1\n"
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; charset=utf-8\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                + f"{len(payload):x}\r\n".encode() + payload + b"\r\n"
            )
            conn.close()  # dies before the 0-length terminating chunk

        thread = threading.Thread(target=serve_one_truncated, daemon=True)
        thread.start()
        try:
            client = CorpusClient(f"http://127.0.0.1:{port}", timeout=5.0)
            received = []
            with pytest.raises(ServerConnectionError, match="mid-stream|mid-record"):
                for record in client.iter_range(0, 100):
                    received.append(record)
            # Everything served before the cut was still delivered in order.
            assert received == ["REC0", "REC1"]
        finally:
            thread.join()
            listener.close()

    def test_stopped_server_refuses_new_requests(self, library_dir):
        with BackgroundServer(library_dir, readers=2) as server:
            url = server.url
            with CorpusClient(url) as client:
                assert client.get(0)
        late_client = CorpusClient(url, timeout=2.0)
        with pytest.raises(ServerConnectionError):
            late_client.get(0)


class TestRetryPhaseRestriction:
    """The reconnect retry must never resend after response bytes arrived.

    Regression tests for the duplicate-request bug: the old retry loop
    wrapped ``getresponse()`` as well as the send, so a server dying after
    the response began (or right after accepting) made the client silently
    issue the request twice.
    """

    @staticmethod
    def _scripted_server(handler):
        """Accept connections until told to stop; run *handler* per request.

        Returns ``(port, request_count list, stop_event, thread)``.
        """
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(0.25)
        port = listener.getsockname()[1]
        request_count = [0]
        stop = threading.Event()

        def serve() -> None:
            try:
                while not stop.is_set():
                    try:
                        conn, _ = listener.accept()
                    except socket.timeout:
                        continue
                    with conn:
                        conn.settimeout(5.0)
                        try:
                            data = conn.recv(65536)
                        except OSError:
                            continue
                        if not data:
                            continue
                        request_count[0] += 1
                        handler(conn, request_count[0])
            finally:
                listener.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return port, request_count, stop, thread

    def test_death_mid_response_is_not_retried(self):
        """Partial status line + close → one request on the wire, typed error."""

        def die_mid_status(conn, _n):
            conn.sendall(b"HTTP/1.1 2")  # response under way, then death

        port, count, stop, thread = self._scripted_server(die_mid_status)
        try:
            client = CorpusClient(f"http://127.0.0.1:{port}", timeout=5.0)
            with pytest.raises(ServerConnectionError, match="died before answering"):
                client.get(0)
            # The stop/join below gives a would-be duplicate a full accept
            # cycle to land before the count is asserted.
            stop.set()
            thread.join()
            assert count[0] == 1, "the request was silently resent"
        finally:
            stop.set()
            thread.join()

    def test_death_after_headers_mid_body_is_not_retried(self):
        """Full headers + partial body + close → typed error, no resend."""

        def die_mid_body(conn, _n):
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; charset=utf-8\r\n"
                b"Content-Length: 100\r\n"
                b"Connection: keep-alive\r\n\r\n"
                b"only a few bytes"
            )

        port, count, stop, thread = self._scripted_server(die_mid_body)
        try:
            client = CorpusClient(f"http://127.0.0.1:{port}", timeout=5.0)
            with pytest.raises(ServerConnectionError, match="mid-response"):
                client.get(0)
            stop.set()
            thread.join()
            assert count[0] == 1, "the request was silently resent"
        finally:
            stop.set()
            thread.join()

    def test_stale_keepalive_socket_reopens_before_send(self):
        """The classic keep-alive race is caught by the pre-send probe.

        The server answers each request completely, *claims* keep-alive,
        then closes the connection — exactly what an idle-timeout does
        between two client calls.  The client must notice the pending EOF
        before sending and reopen, so both calls succeed with exactly one
        request each (no duplicates, no spurious failures).
        """

        def serve_then_close(conn, _n):
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; charset=utf-8\r\n"
                b"Content-Length: 1\r\n"
                b"Connection: keep-alive\r\n\r\nA"
            )
            # the `with conn:` in the accept loop closes the socket here

        port, count, stop, thread = self._scripted_server(serve_then_close)
        try:
            import time

            client = CorpusClient(f"http://127.0.0.1:{port}", timeout=5.0)
            assert client.get(0) == "A"
            time.sleep(0.1)  # let the server-side close's FIN arrive
            assert client.get(1) == "A"
            stop.set()
            thread.join()
            assert count[0] == 2
        finally:
            stop.set()
            thread.join()


class TestStatsUptime:
    """`uptime_seconds` is always present — startedness is a flag, not a
    truthiness test on the monotonic stamp (which may legitimately be 0.0)."""

    def test_uptime_is_zero_before_start(self, library_dir):
        library = AsyncCorpusLibrary.open(library_dir, pool_size=1)
        try:
            server = CorpusServer(library)
            payload = server.stats()
            assert payload["uptime_seconds"] == 0.0
        finally:
            library.close()

    def test_uptime_reported_when_monotonic_stamp_is_falsy(self, library_dir):
        import time

        library = AsyncCorpusLibrary.open(library_dir, pool_size=1)
        try:
            server = CorpusServer(library)
            # Simulate a host whose monotonic clock read exactly 0.0 at
            # start() — the regression the truthiness check tripped over.
            server._started = True
            server._started_at = 0.0
            payload = server.stats()
            assert "uptime_seconds" in payload
            assert payload["uptime_seconds"] >= 0.0
            assert payload["uptime_seconds"] == pytest.approx(
                time.monotonic(), rel=0.1
            )
        finally:
            library.close()

    def test_uptime_live_server(self, client):
        payload = client.stats()
        assert payload["uptime_seconds"] >= 0.0


class TestStrictWireIntegers:
    """Lax integer spellings Python's int() accepts must be 400, not 500.

    (Negative values stay 404 — the local-parity contract pinned above.)
    """

    @pytest.mark.parametrize(
        "target",
        [
            "/records?start=1_0",          # underscore separator
            "/records?start=%2B1",          # leading plus
            "/records?start=%201",          # leading whitespace
            "/records?start=0&stop=1_0",
            "/records:sample?n=1_0",
            "/records:sample?n=%2B5",
            "/records:sample?n=1&seed=1_0",
            "/records/0?start=x",           # sanity: unrelated query ignored
        ],
    )
    def test_lax_integer_spelling_is_400_envelope(self, server, target):
        status, body = _raw_request(server.url, "GET", target)
        if target.startswith("/records/0"):
            assert status == 200  # single-record route ignores the query
            return
        assert status == 400
        assert json.loads(body)["error"]["type"] == "ProtocolError"

    def test_negative_start_stays_404_local_parity(self, server):
        status, body = _raw_request(server.url, "GET", "/records?start=-1")
        assert status == 404
        assert json.loads(body)["error"]["type"] == "RandomAccessError"


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight_request(self, library_dir):
        """A request being processed at shutdown completes; the listener dies."""

        async def run() -> None:
            library = AsyncCorpusLibrary.open(library_dir, pool_size=2)
            try:
                server = CorpusServer(library, port=0)
                await server.start()

                real_get_many = library.get_many

                async def slow_get_many(indices):
                    await asyncio.sleep(0.3)  # long enough to overlap shutdown
                    return await real_get_many(indices)

                library.get_many = slow_get_many  # type: ignore[method-assign]

                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                body = protocol.encode_batch_request([0, 1, 2])
                writer.write(
                    (
                        "POST /records:batch HTTP/1.1\r\n"
                        "Host: test\r\n"
                        f"Content-Length: {len(body)}\r\n\r\n"
                    ).encode() + body
                )
                await writer.drain()
                await asyncio.sleep(0.05)  # let the server enter the handler

                await server.shutdown(grace=5.0)
                response = await reader.read()  # drained response, then EOF
                assert b"200 OK" in response
                # All three records made it out before the connection closed.
                payload = response.split(b"\r\n\r\n", 1)[1]
                assert payload.count(b"\n") == 3
                writer.close()
            finally:
                library.close()

        asyncio.run(run())

    def test_shutdown_tears_down_idle_keepalive_quickly(self, library_dir):
        """An idle keep-alive connection must not stall shutdown for the grace."""
        import time

        async def run() -> float:
            library = AsyncCorpusLibrary.open(library_dir, pool_size=2)
            try:
                server = CorpusServer(library, port=0)
                await server.start()
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                await reader.readuntil(b"}\n")  # response done; now idle
                start = time.monotonic()
                await server.shutdown(grace=30.0)
                writer.close()
                return time.monotonic() - start
            finally:
                library.close()

        assert asyncio.run(run()) < 5.0

    def test_background_server_stop_is_idempotent(self, library_dir):
        server = BackgroundServer(library_dir, readers=2).start()
        with CorpusClient(server.url) as client:
            assert client.healthz()["status"] == "ok"
        server.stop()
        server.stop()  # second stop is a no-op

    def test_stop_before_start_is_a_noop(self, library_dir):
        server = BackgroundServer(library_dir, readers=2)
        server.stop()  # never started: returns immediately, nothing leaks

    def test_stop_racing_startup_waits_and_joins(self, library_dir):
        """A stop() issued while the server thread is still binding must
        wait for startup to resolve, then shut down — not leak the thread
        by signalling before ``_loop``/``_stop_event`` exist."""
        server = BackgroundServer(library_dir, readers=2)
        # Launch the thread body directly (what start() does first) and
        # race stop() against it *before* _ready can possibly have fired.
        server._thread = threading.Thread(
            target=lambda: asyncio.run(server._main()), daemon=True
        )
        server._thread.start()
        server.stop()  # must block on _ready, then signal, then join
        assert server._thread is None
        server.stop()  # and stay idempotent afterwards

    def test_stop_racing_startup_failure_still_joins(self, tmp_path):
        server = BackgroundServer(tmp_path / "missing.zss")
        server._thread = threading.Thread(
            target=lambda: asyncio.run(server._main()), daemon=True
        )
        server._thread.start()
        server.stop()  # startup will fail; stop must not hang on it
        assert server._thread is None

    def test_background_server_cannot_be_restarted(self, library_dir):
        # A restarted instance would report the first run's (dead) URL.
        server = BackgroundServer(library_dir, readers=2).start()
        server.stop()
        with pytest.raises(ServerError, match="restarted"):
            server.start()

    def test_startup_failure_surfaces_as_server_error(self, tmp_path):
        with pytest.raises(ServerError, match="failed to start"):
            BackgroundServer(tmp_path / "missing.zss").start()
