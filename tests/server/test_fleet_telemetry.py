"""Fleet-wide observability: one scrape sees every worker.

The SO_REUSEPORT / proxy fleet used to answer ``/stats`` from whichever
worker took the connection — a 2-worker fleet reported roughly half its
own traffic.  These tests pin the fix: workers exchange admin ports at
startup and the answering worker merges every live peer's snapshot, so
``/stats`` and ``/metrics`` are deterministic regardless of which worker
the kernel or proxy picks.
"""

from __future__ import annotations

import json

import pytest

from repro.server import CorpusClient, ServerFleet
from repro.server.fleet import _reuse_port_supported


def _spread_singles(url: str, indices) -> None:
    """One fresh connection per get, so the fleet spreads them over workers."""
    for index in indices:
        with CorpusClient(url, timeout=10.0) as client:
            client.get(index)


class TestProxyFleetAggregation:
    """Proxy mode round-robins fresh connections, so both workers serve."""

    def test_stats_sees_both_workers_traffic(self, library_dir, corpus):
        with ServerFleet(
            library_dir, workers=2, readers=2, prefer_reuse_port=False
        ) as fleet:
            assert len(fleet.admin_ports) == 2
            _spread_singles(fleet.url, range(6))
            with CorpusClient(fleet.url, timeout=10.0) as client:
                payload = client.stats()
        # Round-robin guarantees each worker served 3 of the 6 singles: an
        # un-aggregated /stats (one arbitrary worker) could never report 6.
        assert payload["counters"]["single"] == 6
        assert payload["workers"] == 2
        assert payload["aggregated"] is True
        assert payload["records"] == len(corpus)

    def test_metrics_scrape_is_fleet_wide(self, library_dir):
        with ServerFleet(
            library_dir, workers=2, readers=2, prefer_reuse_port=False
        ) as fleet:
            _spread_singles(fleet.url, range(4))
            with CorpusClient(fleet.url, timeout=10.0) as client:
                snapshot = client.metrics_snapshot()
                text = client.metrics()
        by_name = {item["name"]: item for item in snapshot["metrics"]}
        requests = by_name["zsmiles_server_requests_total"]
        singles = sum(
            series["value"]
            for series in requests["series"]
            if "single" in series["values"]
        )
        assert singles == 4
        # The text exposition renders the same aggregate.
        assert "# TYPE zsmiles_server_requests_total counter" in text
        latency = by_name["zsmiles_server_request_seconds"]
        single_series = [
            s for s in latency["series"] if s["values"] == ["single"]
        ]
        assert single_series and single_series[0]["count"] == 4

    def test_scope_local_opts_out_of_aggregation(self, library_dir):
        with ServerFleet(
            library_dir, workers=2, readers=2, prefer_reuse_port=False
        ) as fleet:
            _spread_singles(fleet.url, range(6))
            with CorpusClient(fleet.url, timeout=10.0) as client:
                _, body = client._call("GET", "/stats?scope=local")
                local = json.loads(body)
        # One worker on its own saw only its share of the round-robin.
        assert local["counters"]["single"] < 6
        assert "aggregated" not in local


class TestReuseportFleetAggregation:
    def test_stats_deterministic_whichever_worker_answers(self, library_dir):
        if not _reuse_port_supported():
            pytest.skip("platform has no SO_REUSEPORT")
        with ServerFleet(library_dir, workers=2, readers=2) as fleet:
            assert fleet.mode == "reuseport"
            assert len(fleet.admin_ports) == 2
            _spread_singles(fleet.url, range(8))
            # However the kernel spread those connections, the aggregated
            # answer is exact — scrape twice to show it is stable too.
            with CorpusClient(fleet.url, timeout=10.0) as client:
                first = client.stats()
            with CorpusClient(fleet.url, timeout=10.0) as client:
                second = client.stats()
        assert first["counters"]["single"] == 8
        assert second["counters"]["single"] == 8
        assert first["workers"] == second["workers"] == 2
