"""Compressed transport: deflate negotiation end to end.

Pins the Content-Encoding contract:

* compressed and identity responses are **byte-parity** — the records a
  compressing client sees are exactly the records an identity client (and a
  direct library read) sees,
* the server only deflates when asked, only when it pays, and labels the
  response with ``Content-Encoding: deflate``,
* range streams stay incremental under compression (records delivered
  before a mid-stream death still arrive — the sync-flush guarantee).
"""

from __future__ import annotations

import http.client
import zlib

import pytest

from repro.library import CorpusLibrary
from repro.server import BackgroundServer, CorpusClient, protocol


def _raw_response(url: str, method: str, target: str, body: bytes = b"",
                  headers: dict = None):
    """One raw request, returning ``(status, headers dict, body bytes)``."""
    host, port = url.rsplit(":", 1)
    conn = http.client.HTTPConnection(host[len("http://"):], int(port), timeout=10)
    try:
        conn.request(method, target, body=body or None, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


@pytest.fixture(scope="module")
def deflate_client(server):
    with CorpusClient(server.url, timeout=10.0, compress=True) as cli:
        yield cli


@pytest.fixture(scope="module")
def identity_client(server):
    with CorpusClient(server.url, timeout=10.0, compress=False) as cli:
        yield cli


class TestBatchCompression:
    def test_large_batch_carries_deflate_header_and_inflates_to_parity(
        self, server, corpus
    ):
        indices = list(range(len(corpus)))
        status, headers, body = _raw_response(
            server.url,
            "POST",
            "/records:batch",
            body=protocol.encode_batch_request(indices),
            headers={
                "Content-Type": protocol.CONTENT_TYPE_JSON,
                "Accept-Encoding": "deflate",
            },
        )
        assert status == 200
        assert headers.get("Content-Encoding") == "deflate"
        identity = protocol.encode_records_body(list(corpus))
        assert len(body) < len(identity)  # it actually compressed
        assert zlib.decompress(body) == identity  # byte-parity

    def test_small_batch_stays_identity(self, server, corpus):
        status, headers, body = _raw_response(
            server.url,
            "POST",
            "/records:batch",
            body=protocol.encode_batch_request([0]),
            headers={
                "Content-Type": protocol.CONTENT_TYPE_JSON,
                "Accept-Encoding": "deflate",
            },
        )
        assert status == 200
        assert "Content-Encoding" not in headers
        assert body == protocol.encode_records_body([corpus[0]])

    def test_without_advertisement_stays_identity(self, server, corpus):
        indices = list(range(len(corpus)))
        status, headers, body = _raw_response(
            server.url,
            "POST",
            "/records:batch",
            body=protocol.encode_batch_request(indices),
            headers={"Content-Type": protocol.CONTENT_TYPE_JSON},
        )
        assert status == 200
        assert "Content-Encoding" not in headers
        assert body == protocol.encode_records_body(list(corpus))

    def test_compressing_and_identity_clients_agree(
        self, deflate_client, identity_client, corpus
    ):
        indices = list(range(len(corpus)))
        assert deflate_client.get_many(indices) == identity_client.get_many(indices)
        assert deflate_client.get_many(indices) == list(corpus)

    def test_error_envelopes_stay_typed_under_compression(self, deflate_client, corpus):
        from repro.errors import RandomAccessError

        with pytest.raises(RandomAccessError):
            deflate_client.get_many([0, len(corpus)])


class TestStreamCompression:
    def test_stream_carries_deflate_header_when_advertised(self, server, corpus):
        status, headers, body = _raw_response(
            server.url,
            "GET",
            "/records?start=0&stop=64",
            headers={"Accept-Encoding": "deflate"},
        )
        assert status == 200
        assert headers.get("Content-Encoding") == "deflate"
        assert zlib.decompress(body) == protocol.encode_records_body(
            list(corpus[:64])
        )

    def test_stream_stays_identity_without_advertisement(self, server, corpus):
        status, headers, body = _raw_response(
            server.url, "GET", "/records?start=0&stop=64"
        )
        assert status == 200
        assert "Content-Encoding" not in headers
        assert body == protocol.encode_records_body(list(corpus[:64]))

    def test_compressed_stream_parity_with_direct_reads(
        self, deflate_client, identity_client, library_dir, corpus
    ):
        compressed = list(deflate_client.iter_range(0, len(corpus)))
        identity = list(identity_client.iter_range(0, len(corpus)))
        with CorpusLibrary.open(library_dir) as direct:
            local = direct.slice(0, len(corpus))
        assert compressed == identity == local == list(corpus)

    def test_compressed_stream_range_subset(self, deflate_client, corpus):
        assert list(deflate_client.iter_range(17, 53)) == list(corpus[17:53])

    def test_deflated_counter_advances(self, library_dir, corpus):
        """A dedicated server so the module fixture's counters stay untouched."""
        with BackgroundServer(library_dir, readers=2) as srv:
            with CorpusClient(srv.url, compress=True) as cli:
                before = cli.stats()["counters"]["deflated"]
                cli.get_many(list(range(len(corpus))))
                list(cli.iter_range(0, 32))
                after = cli.stats()["counters"]["deflated"]
        assert after >= before + 2  # one batch + one stream deflated

    def test_compressed_stream_partial_delivery_before_death(self):
        """Sync-flushed deflate chunks decode as they arrive: records sent
        before the server dies are delivered, then the typed error."""
        import socket
        import threading

        from repro.errors import ServerConnectionError

        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def serve_one_truncated() -> None:
            conn, _ = listener.accept()
            conn.recv(65536)
            compressor = zlib.compressobj(protocol.COMPRESS_LEVEL)
            payload = compressor.compress(b"REC0\nREC1\n") + compressor.flush(
                zlib.Z_SYNC_FLUSH
            )
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; charset=utf-8\r\n"
                b"Content-Encoding: deflate\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                + f"{len(payload):x}\r\n".encode() + payload + b"\r\n"
            )
            conn.close()  # dies before the terminating chunk (and the tail)

        thread = threading.Thread(target=serve_one_truncated, daemon=True)
        thread.start()
        try:
            client = CorpusClient(f"http://127.0.0.1:{port}", timeout=5.0)
            received = []
            with pytest.raises(ServerConnectionError, match="mid-stream|mid-record"):
                for record in client.iter_range(0, 100):
                    received.append(record)
            assert received == ["REC0", "REC1"]
        finally:
            thread.join()
            listener.close()
