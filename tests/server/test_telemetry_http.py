"""The observability surface over HTTP: ``/metrics``, trace ids, access logs.

Pins the PR-level acceptance bar: a live server serves valid Prometheus
text with per-route latency histograms, a client-originated request id
shows up in the server's access log *and* in the error envelope for the
same request, and ``/stats`` reports the cache hit rate and recent spans.
"""

from __future__ import annotations

import http.client
import json
from urllib.parse import urlparse

import pytest

from repro.errors import RandomAccessError
from repro.server import BackgroundServer, CorpusClient
from repro.server import protocol
from repro.telemetry import trace_context


class TestMetricsEndpoint:
    def test_prometheus_text_with_per_route_series(self, client):
        client.get(0)
        client.get_many([1, 2, 3])
        text = client.metrics()
        lines = text.splitlines()
        assert "# TYPE zsmiles_server_requests_total counter" in lines
        assert "# TYPE zsmiles_server_request_seconds histogram" in lines
        assert any(
            line.startswith("zsmiles_server_requests_total")
            and 'route="single"' in line
            for line in lines
        )
        assert any(
            line.startswith("zsmiles_server_request_seconds_bucket")
            and 'route="batch"' in line
            and 'le="+Inf"' in line
            for line in lines
        )
        assert text.endswith("\n")

    def test_content_type_is_prometheus(self, server):
        parsed = urlparse(server.url)
        conn = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=10.0)
        try:
            conn.request("GET", protocol.ROUTE_METRICS)
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200
            assert response.getheader("Content-Type") == protocol.CONTENT_TYPE_PROMETHEUS
            assert b"# TYPE" in body
        finally:
            conn.close()

    def test_json_snapshot_variant(self, client):
        client.get(0)
        snapshot = client.metrics_snapshot()
        names = {item["name"] for item in snapshot["metrics"]}
        assert "zsmiles_server_requests_total" in names
        assert "zsmiles_server_request_seconds" in names
        # The snapshot is the merge wire format: every histogram series is
        # internally consistent.
        for item in snapshot["metrics"]:
            if item["kind"] != "histogram":
                continue
            for series in item["series"]:
                assert sum(series["counts"]) == series["count"]


class TestRequestIdPropagation:
    def test_client_id_reaches_access_log_and_error_envelope(self, library_dir, tmp_path):
        log_path = tmp_path / "access.log"
        with BackgroundServer(library_dir, readers=2, access_log=log_path) as server:
            with CorpusClient(server.url, timeout=10.0) as client:
                with trace_context("deadbeefcafe1234"):
                    assert client.get(0)  # the happy path is logged too
                    with pytest.raises(RandomAccessError) as excinfo:
                        client.get(10**9)
        # The same caller-chosen id came back in the error envelope...
        assert excinfo.value.request_id == "deadbeefcafe1234"
        # ...and was stamped on both requests' access-log lines.
        entries = [json.loads(line) for line in log_path.read_text().splitlines()]
        traced = [e for e in entries if e["request_id"] == "deadbeefcafe1234"]
        assert {e["status"] for e in traced} == {200, 404}
        for entry in traced:
            assert entry["route"] == "single"
            assert entry["method"] == "GET"
            assert entry["duration_ms"] >= 0
        ok = next(e for e in traced if e["status"] == 200)
        assert ok["bytes"] > 0

    def test_server_minted_id_when_client_sends_none(self, library_dir, tmp_path):
        log_path = tmp_path / "access.log"
        with BackgroundServer(library_dir, readers=2, access_log=log_path) as server:
            parsed = urlparse(server.url)
            conn = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=10.0)
            try:
                conn.request("GET", "/records/0")  # bare: no trace headers
                response = conn.getresponse()
                response.read()
                minted = response.getheader("X-Request-Id")
                assert minted and len(minted) == 16
            finally:
                conn.close()
        entries = [json.loads(line) for line in log_path.read_text().splitlines()]
        assert any(e["request_id"] == minted for e in entries)


class TestStatsSurface:
    def test_stats_reports_cache_hit_rate(self, client):
        for _ in range(3):
            client.get(0)  # same block: guaranteed cache traffic
        cache = client.stats()["cache"]
        assert 0.0 <= cache["hit_rate"] <= 1.0
        assert cache["hits"] + cache["misses"] > 0
        assert cache["hit_rate"] == pytest.approx(
            cache["hits"] / (cache["hits"] + cache["misses"]), abs=1e-6
        )
        assert "evictions" in cache

    def test_stats_trace_recent_returns_finished_spans(self, client):
        with trace_context("feedfacefeedface"):
            client.get(1)
        payload = client.stats(trace=True)
        assert isinstance(payload["trace"], list)
        matching = [
            span for span in payload["trace"]
            if span["trace_id"] == "feedfacefeedface"
        ]
        assert matching, "the traced request should appear in the span ring"
        assert matching[-1]["name"] == "server.single"
        assert matching[-1]["duration_ms"] >= 0

    def test_stats_without_trace_flag_omits_spans(self, client):
        assert "trace" not in client.stats()


class TestCliStats:
    """``zsmiles stats`` dispatches on its input: URL scrape vs corpus file."""

    def test_url_mode_renders_live_registry(self, server, capsys):
        from repro.cli import main as cli_main

        with CorpusClient(server.url, timeout=10.0) as warmup:
            warmup.get(0)
        assert cli_main(["stats", server.url]) == 0
        out = capsys.readouterr().out
        assert "zsmiles_server_requests_total" in out
        assert "route=single" in out

    def test_url_mode_json_dumps_the_snapshot(self, server, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["stats", server.url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {item["name"] for item in payload["metrics"]}
        assert "zsmiles_server_requests_total" in names

    def test_file_mode_requires_dictionary(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        smi = tmp_path / "tiny.smi"
        smi.write_text("C\nCC\n", encoding="utf-8")
        assert cli_main(["stats", str(smi)]) == 2
        assert "dictionary" in capsys.readouterr().err
