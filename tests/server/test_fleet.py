"""The multi-process fleet tier: SO_REUSEPORT workers, the proxy fallback,
worker-crash survival, and the ``zsmiles serve --workers`` CLI lifecycle.

Every fleet read is parity-gated against the direct library — scaling out
must never change a byte.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ServerBusyError, ServerConnectionError, ServerError
from repro.library import CorpusLibrary
from repro.server import CorpusClient, ServerFleet, protocol
from repro.server.fleet import _reuse_port_supported


@pytest.fixture(scope="module")
def reuseport_fleet(library_dir):
    if not _reuse_port_supported():
        pytest.skip("platform has no SO_REUSEPORT")
    with ServerFleet(library_dir, workers=2, readers=2) as fleet:
        yield fleet


@pytest.fixture(scope="module")
def proxy_fleet(library_dir):
    with ServerFleet(
        library_dir, workers=2, readers=2, prefer_reuse_port=False
    ) as fleet:
        yield fleet


class TestFleetParity:
    """Fleet reads are byte-identical to direct library reads, both modes."""

    @pytest.fixture(params=["reuseport_fleet", "proxy_fleet"])
    def fleet(self, request):
        return request.getfixturevalue(request.param)

    def test_mode_and_records_reported(self, fleet, corpus):
        assert fleet.mode in ("reuseport", "proxy")
        assert fleet.records == len(corpus)
        assert fleet.alive_workers() == 2

    def test_single_get_parity(self, fleet, corpus):
        with CorpusClient(fleet.url, timeout=10.0) as client:
            for i in (0, 1, 7, len(corpus) - 1):
                assert client.get(i) == corpus[i]

    def test_batch_parity(self, fleet, library_dir, corpus):
        indices = list(range(0, len(corpus), 3))
        with CorpusClient(fleet.url, timeout=10.0) as client:
            remote = client.get_many(indices)
        with CorpusLibrary.open(library_dir) as direct:
            local = direct.get_many(indices)
        assert remote == local == [corpus[i] for i in indices]

    def test_stream_parity(self, fleet, corpus):
        with CorpusClient(fleet.url, timeout=10.0) as client:
            assert list(client.iter_range(5, 90)) == list(corpus[5:90])

    def test_sample_is_seed_deterministic_across_workers(self, fleet, corpus):
        """Every worker serves the same corpus, so a seeded sample must be
        identical no matter which worker the kernel/proxy picks."""
        draws = []
        for _ in range(4):  # several connections → several workers
            with CorpusClient(fleet.url, timeout=10.0) as client:
                draws.append(client.sample(6, seed=11))
        assert all(draw == draws[0] for draw in draws)
        indices, records = draws[0]
        assert records == [corpus[i] for i in indices]

    def test_stats_reachable(self, fleet, corpus):
        with CorpusClient(fleet.url, timeout=10.0) as client:
            payload = client.stats()
        assert payload["records"] == len(corpus)
        assert payload["uptime_seconds"] >= 0.0

    def test_typed_errors_cross_the_fleet(self, fleet, corpus):
        from repro.errors import RandomAccessError

        with CorpusClient(fleet.url, timeout=10.0) as client:
            with pytest.raises(RandomAccessError):
                client.get(len(corpus))


class TestWorkerCrashSurvival:
    @pytest.mark.parametrize("prefer_reuse_port", [True, False])
    def test_survivors_serve_after_worker_kill(
        self, library_dir, corpus, prefer_reuse_port
    ):
        if prefer_reuse_port and not _reuse_port_supported():
            pytest.skip("platform has no SO_REUSEPORT")
        with ServerFleet(
            library_dir, workers=2, prefer_reuse_port=prefer_reuse_port
        ) as fleet:
            with CorpusClient(fleet.url, timeout=10.0) as client:
                assert client.get(0) == corpus[0]
            fleet.kill_worker(0)
            assert fleet.alive_workers() == 1
            # Fresh connections only ever reach the survivor.
            for _ in range(4):
                with CorpusClient(fleet.url, timeout=10.0) as client:
                    assert client.get_many([0, 5, 9]) == [
                        corpus[0], corpus[5], corpus[9],
                    ]

    def test_proxy_answers_busy_when_every_worker_is_dead(self, library_dir):
        """The proxy front degrades to a typed, *retryable* 503 envelope."""
        with ServerFleet(
            library_dir, workers=2, prefer_reuse_port=False
        ) as fleet:
            fleet.kill_worker(0)
            fleet.kill_worker(1)
            client = CorpusClient(fleet.url, timeout=5.0)
            with pytest.raises(ServerBusyError):
                client.get(0)
            # The classification the failover clients rely on:
            try:
                client.get(0)
            except ServerBusyError as exc:
                assert protocol.is_retryable(exc)
            client.close()


class TestFleetLifecycle:
    def test_workers_must_be_positive(self, library_dir):
        with pytest.raises(ServerError, match="workers"):
            ServerFleet(library_dir, workers=0)

    def test_fleet_cannot_be_restarted(self, library_dir):
        fleet = ServerFleet(library_dir, workers=1)
        fleet.start()
        fleet.stop()
        with pytest.raises(ServerError, match="restarted"):
            fleet.start()

    def test_stop_is_idempotent(self, library_dir):
        fleet = ServerFleet(library_dir, workers=1)
        fleet.start()
        fleet.stop()
        fleet.stop()

    def test_startup_failure_surfaces_as_server_error(self, tmp_path):
        with pytest.raises(ServerError, match="failed to start"):
            ServerFleet(tmp_path / "missing.zss", workers=1).start()

    def test_spawn_failure_mid_startup_leaks_no_workers(
        self, library_dir, monkeypatch
    ):
        """A failure while spawning worker k must terminate workers 0..k-1
        and release the reserved port — not leak live processes behind the
        startup error."""
        import multiprocessing

        real_context = multiprocessing.get_context("spawn")
        spawned = []

        class ExplodingContext:
            def Queue(self):
                return real_context.Queue()

            def Process(self, *args, **kwargs):
                if spawned:
                    raise RuntimeError("spawn exploded")
                process = real_context.Process(*args, **kwargs)
                spawned.append(process)
                return process

        monkeypatch.setattr(
            multiprocessing, "get_context", lambda method: ExplodingContext()
        )
        fleet = ServerFleet(library_dir, workers=2)
        with pytest.raises(RuntimeError, match="spawn exploded"):
            fleet.start()
        assert len(spawned) == 1
        assert not spawned[0].is_alive(), "worker 0 leaked past the failure"
        assert fleet._processes == []
        assert fleet._placeholder is None

    def test_graceful_stop_exits_workers_cleanly(self, library_dir):
        fleet = ServerFleet(library_dir, workers=2)
        fleet.start()
        processes = list(fleet._processes)
        fleet.stop()
        assert all(p.exitcode == 0 for p in processes)


class TestServeCliWorkers:
    def test_serve_workers_flag_runs_a_fleet(self, library_dir, corpus):
        """`zsmiles serve --workers 2` prints the URL line, serves, and
        shuts down cleanly on SIGTERM."""
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(library_dir),
                "--workers", "2", "--port", "0", "--readers", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = process.stdout.readline()
            assert line.startswith("serving "), line
            assert "workers=2" in line
            url = line.split(" at ", 1)[1].split()[0]
            with CorpusClient(url, timeout=10.0) as client:
                assert client.get(3) == corpus[3]
                assert client.get_many([0, 9]) == [corpus[0], corpus[9]]
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_serve_rejects_nonpositive_workers(self, library_dir):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "serve", str(library_dir),
                "--workers", "0",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 2
        assert "--workers" in result.stderr
