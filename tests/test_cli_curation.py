"""End-to-end CLI tests for the curation loop: ingest → train-dict → repack."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.streaming import read_lines
from repro.curation import DictionaryIdentity, load_verified
from repro.errors import CurationError
from repro.library import CorpusLibrary


@pytest.fixture(scope="module")
def raw_dump(tmp_path_factory):
    """A messy multi-source dump: blanks, dupes, salts, an id column."""
    from repro.datasets import mixed

    directory = tmp_path_factory.mktemp("curation_cli")
    corpus = mixed.generate(120, seed=11)
    dump = directory / "dump.txt"
    lines = []
    for i, smiles in enumerate(corpus):
        lines.append(f"{smiles}\tmol-{i}")
        if i % 5 == 0:
            lines.append(f"{smiles}\tmol-{i}-dup")   # duplicate SMILES
        if i % 7 == 0:
            lines.append("")                          # blank line
    dump.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return directory, dump, corpus


class TestIngest:
    def test_curates_and_reports(self, raw_dump, capsys, tmp_path):
        directory, dump, corpus = raw_dump
        out = tmp_path / "curated.smi"
        stats_json = tmp_path / "stats.json"
        assert main([
            "ingest", str(dump), "-o", str(out),
            "--column", "0", "--stats-json", str(stats_json),
        ]) == 0
        curated = list(read_lines(out))
        # Dedup keeps first occurrences; blanks and dupes are gone.
        assert curated == list(dict.fromkeys(corpus))
        printed = capsys.readouterr().out
        assert "ingested" in printed and str(out) in printed

        payload = json.loads(stats_json.read_text(encoding="utf-8"))
        assert payload["records_out"] == len(curated)
        assert payload["lines_in"] == payload["records_out"] + payload["rejected"]

    def test_no_dedup_keeps_duplicates(self, raw_dump, tmp_path):
        _, dump, corpus = raw_dump
        out = tmp_path / "full.smi"
        assert main([
            "ingest", str(dump), "-o", str(out), "--column", "0", "--no-dedup",
        ]) == 0
        assert len(list(read_lines(out))) > len(set(corpus))


class TestTrainDict:
    def test_trains_pinned_dictionary(self, raw_dump, capsys, tmp_path):
        _, dump, _ = raw_dump
        dct = tmp_path / "pinned.dct"
        assert main([
            "train-dict", str(dump), "-o", str(dct),
            "--column", "0", "--sample", "80", "--seed", "3",
            "--name", "cli-test", "--version", "1.2", "--lmax", "6",
        ]) == 0
        table, identity = load_verified(dct)
        assert identity.name == "cli-test"
        assert identity.version == "1.2"
        assert table.metadata["entries"] == str(len(table))
        printed = capsys.readouterr().out
        assert identity.short_hash in printed
        assert "cli-test@1.2" in printed

    def test_sample_must_be_positive(self, raw_dump, tmp_path):
        _, dump, _ = raw_dump
        assert main([
            "train-dict", str(dump), "-o", str(tmp_path / "x.dct"), "--sample", "0",
        ]) == 2


class TestRepack:
    @pytest.fixture(scope="class")
    def packed(self, raw_dump, tmp_path_factory):
        """A curated corpus packed into a library with dictionary A."""
        directory = tmp_path_factory.mktemp("repack_cli")
        _, dump, _ = raw_dump
        curated = directory / "curated.smi"
        assert main(["ingest", str(dump), "-o", str(curated), "--column", "0"]) == 0
        dict_a = directory / "a.dct"
        assert main([
            "train-dict", str(dump), "-o", str(dict_a),
            "--column", "0", "--sample", "60", "--name", "a", "--lmax", "6",
        ]) == 0
        library = directory / "corpus.library"
        assert main([
            "pack", str(curated), "-d", str(dict_a), "-o", str(library),
            "--shards", "3", "--block-size", "8",
        ]) == 0
        dict_b = directory / "b.dct"
        assert main([
            "train-dict", str(dump), "-o", str(dict_b),
            "--column", "0", "--sample", "90", "--seed", "9",
            "--name", "b", "--version", "2", "--lmax", "5",
        ]) == 0
        return directory, curated, library, dict_b

    def test_repack_migrates_and_verifies(self, packed, capsys):
        directory, curated, library, dict_b = packed
        destination = directory / "corpus.v2.library"
        assert main([
            "repack", str(library), "-o", str(destination), "-d", str(dict_b),
            "--shard-jobs", "2",
        ]) == 0
        printed = capsys.readouterr().out
        assert "repacked" in printed
        assert "b@2" in printed
        assert "readback verified" in printed

        _, identity = load_verified(dict_b)
        with CorpusLibrary.open(destination) as packed_library:
            assert packed_library.dictionary_identity().hash == identity.hash
            migrated = list(packed_library.iter_all())
        # Readback identical to the source library's (the corpus itself).
        with CorpusLibrary.open(library) as source_library:
            assert migrated == list(source_library.iter_all())

    def test_same_directory_repack_fails(self, packed):
        _, _, library, dict_b = packed
        with pytest.raises(CurationError):
            main(["repack", str(library), "-o", str(library), "-d", str(dict_b)])

    def test_bad_shard_jobs_rejected(self, packed):
        directory, _, library, dict_b = packed
        assert main([
            "repack", str(library), "-o", str(directory / "x.library"),
            "-d", str(dict_b), "--shard-jobs", "0",
        ]) == 2


class TestQueryVerbose:
    def test_reports_dictionary_identity_for_library(self, raw_dump, capsys, tmp_path):
        _, dump, _ = raw_dump
        curated = tmp_path / "c.smi"
        assert main(["ingest", str(dump), "-o", str(curated), "--column", "0"]) == 0
        dct = tmp_path / "q.dct"
        assert main([
            "train-dict", str(dump), "-o", str(dct),
            "--column", "0", "--sample", "50", "--name", "qdict", "--lmax", "6",
        ]) == 0
        library = tmp_path / "q.library"
        assert main([
            "pack", str(curated), "-d", str(dct), "-o", str(library),
            "--shards", "2", "--block-size", "8",
        ]) == 0
        capsys.readouterr()
        assert main(["query", str(library), "0", "--verbose"]) == 0
        captured = capsys.readouterr()
        _, identity = load_verified(dct)
        assert f"dictionary: {identity.label()}" in captured.err
        assert "qdict" in captured.err

    def test_reports_identity_for_bare_store(self, raw_dump, capsys, tmp_path):
        """A bare .zss answers from its embedded dictionary."""
        _, dump, _ = raw_dump
        curated = tmp_path / "c.smi"
        assert main(["ingest", str(dump), "-o", str(curated), "--column", "0"]) == 0
        dct = tmp_path / "s.dct"
        assert main([
            "train-dict", str(dump), "-o", str(dct),
            "--column", "0", "--sample", "50", "--lmax", "6",
        ]) == 0
        store = tmp_path / "c.zss"
        assert main(["pack", str(curated), "-d", str(dct), "-o", str(store)]) == 0
        capsys.readouterr()
        assert main(["query", str(store), "0", "--verbose"]) == 0
        captured = capsys.readouterr()
        _, identity = load_verified(dct)
        assert identity.short_hash in captured.err


def test_package_exports_curation_surface():
    import repro

    assert repro.DictionaryIdentity is DictionaryIdentity
    for name in ("IngestPipeline", "ReservoirSampler", "pin_identity", "repack_library"):
        assert hasattr(repro, name)
