"""Tests for dictionary usage analysis."""

from __future__ import annotations

import pytest

from repro.dictionary.analysis import analyse_dictionary, compare_dictionaries
from repro.dictionary.codec_table import CodecTable
from repro.dictionary.prepopulation import PrePopulation


@pytest.fixture()
def table() -> CodecTable:
    return CodecTable.from_patterns(
        ["c1ccccc1", "C(=O)", "NeverUsedPattern"[:8]],
        prepopulation=PrePopulation.SMILES_ALPHABET,
    )


class TestAnalyseDictionary:
    def test_ratio_matches_parse_output(self, table):
        corpus = ["c1ccccc1C(=O)O", "CCc1ccccc1"]
        analysis = analyse_dictionary(table, corpus)
        assert analysis.total_input_chars == sum(len(s) for s in corpus)
        assert 0 < analysis.ratio < 1

    def test_entry_usage_counts(self, table):
        analysis = analyse_dictionary(table, ["c1ccccc1c1ccccc1"])
        by_pattern = {u.pattern: u for u in analysis.usage}
        benzene = by_pattern["c1ccccc1"]
        assert benzene.uses == 2
        assert benzene.characters_covered == 16
        assert benzene.characters_saved == 14

    def test_unused_trained_entries_reported(self, table):
        analysis = analyse_dictionary(table, ["c1ccccc1"])
        assert "NeverUse" in analysis.unused_trained_entries
        assert "c1ccccc1" not in analysis.unused_trained_entries

    def test_coverage_bounds(self, table, mixed_corpus_small):
        analysis = analyse_dictionary(table, mixed_corpus_small[:40])
        assert 0.0 <= analysis.trained_coverage <= analysis.coverage <= 1.0

    def test_escape_units_counted(self):
        empty = CodecTable.from_patterns([], prepopulation=PrePopulation.NONE)
        analysis = analyse_dictionary(empty, ["CCO"])
        assert analysis.escape_units == 3
        assert analysis.ratio == 2.0

    def test_limit_restricts_corpus(self, table, mixed_corpus_small):
        full = analyse_dictionary(table, mixed_corpus_small[:40])
        limited = analyse_dictionary(table, mixed_corpus_small[:40], limit=10)
        assert limited.total_input_chars < full.total_input_chars

    def test_empty_corpus(self, table):
        analysis = analyse_dictionary(table, [])
        assert analysis.ratio == 1.0
        assert analysis.coverage == 0.0

    def test_top_entries_sorted_by_savings(self, trained_codec, mixed_corpus_small):
        prepared = [trained_codec.preprocess(s) for s in mixed_corpus_small[:60]]
        analysis = analyse_dictionary(trained_codec.table, prepared)
        top = analysis.top_entries(5)
        savings = [u.characters_saved for u in top]
        assert savings == sorted(savings, reverse=True)
        assert savings[0] > 0

    def test_trained_dictionary_coverage_is_high(self, trained_codec, mixed_corpus_small):
        prepared = [trained_codec.preprocess(s) for s in mixed_corpus_small[:60]]
        analysis = analyse_dictionary(trained_codec.table, prepared)
        assert analysis.coverage > 0.95  # pre-population guarantees near-full coverage
        assert analysis.trained_coverage > 0.5


class TestCompareDictionaries:
    def test_sorted_by_ratio(self, trained_codec, mixed_corpus_small):
        small = CodecTable.from_patterns(["CC"], prepopulation=PrePopulation.SMILES_ALPHABET)
        results = compare_dictionaries(
            {"trained": trained_codec.table, "tiny": small},
            [trained_codec.preprocess(s) for s in mixed_corpus_small[:30]],
        )
        names = [name for name, _, _ in results]
        ratios = [ratio for _, ratio, _ in results]
        assert names[0] == "trained"
        assert ratios == sorted(ratios)
