"""Tests for substring counting and rank computation (Algorithm 1 internals)."""

from __future__ import annotations

import pytest

from repro.dictionary.ranking import (
    RankTable,
    corpus_statistics,
    count_substrings,
    pattern_encoding_cost,
    pattern_overlap,
    rank_value,
)
from repro.dictionary.trie import Trie


class TestCountSubstrings:
    def test_counts_simple_corpus(self):
        counts = count_substrings(["abab"], lmin=2, lmax=2, min_occurrences=1)
        assert counts["ab"] == 2
        assert counts["ba"] == 1

    def test_length_bounds_respected(self):
        counts = count_substrings(["abcdef"], lmin=2, lmax=3, min_occurrences=1)
        assert all(2 <= len(p) <= 3 for p in counts)

    def test_min_occurrences_filters_singletons(self):
        counts = count_substrings(["abcd", "abxy"], lmin=2, lmax=2, min_occurrences=2)
        assert "ab" in counts
        assert "cd" not in counts

    def test_short_lines_skipped_gracefully(self):
        counts = count_substrings(["a", "ab"], lmin=2, lmax=4, min_occurrences=1)
        assert counts == {"ab": 1}

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            count_substrings(["ab"], lmin=0)
        with pytest.raises(ValueError):
            count_substrings(["ab"], lmin=3, lmax=2)

    def test_counts_across_lines_accumulate(self):
        counts = count_substrings(["CCO", "CCO"], lmin=2, lmax=3, min_occurrences=1)
        assert counts["CC"] == 2
        assert counts["CCO"] == 2


class TestOverlapAndCost:
    def test_overlap_empty_selection(self):
        assert pattern_overlap("abcd", Trie()) == 0

    def test_overlap_counts_covered_characters(self):
        selected = Trie.from_patterns(["ab"])
        assert pattern_overlap("abab", selected) == 4
        assert pattern_overlap("abxy", selected) == 2

    def test_encoding_cost_without_selection_is_length(self):
        assert pattern_encoding_cost("abcd", Trie()) == 4

    def test_encoding_cost_with_selection(self):
        selected = Trie.from_patterns(["ab"])
        # "abab" -> two symbols; "abxy" -> one symbol + two literals.
        assert pattern_encoding_cost("abab", selected) == 2
        assert pattern_encoding_cost("abxy", selected) == 3


class TestRankValue:
    def test_coverage_mode_is_paper_equation(self):
        assert rank_value(10, 4, 1, mode="coverage") == 30.0

    def test_coverage_mode_floors_at_zero(self):
        assert rank_value(10, 3, 5, mode="coverage") == 0.0

    def test_savings_mode_uses_encoding_cost(self):
        assert rank_value(10, 4, 0, encoding_cost=4, mode="savings") == 30.0
        assert rank_value(10, 4, 0, encoding_cost=2, mode="savings") == 10.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            rank_value(1, 2, 0, mode="bogus")


class TestRankTable:
    def test_pop_best_orders_by_initial_rank(self):
        counts = {"ab": 10, "cdef": 5, "xy": 1}
        table = RankTable(counts, mode="savings")
        selected = Trie()
        first = table.pop_best(selected)
        # savings rank: ab -> 10, cdef -> 15, xy -> 1
        assert first.pattern == "cdef"

    def test_pop_best_discounts_overlapping_candidates(self):
        counts = {"abcd": 10, "ab": 9, "zz": 3}
        table = RankTable(counts, mode="savings")
        selected = Trie()
        first = table.pop_best(selected)
        assert first.pattern == "abcd"
        selected.insert(first.pattern, first.pattern)
        second = table.pop_best(selected)
        # "ab" is now fully covered... but still saves one symbol per occurrence
        # when it appears outside "abcd"; the rank must have dropped to occ*(2-1)=9.
        assert second is not None
        assert second.rank <= 9

    def test_exhausted_table_returns_none(self):
        table = RankTable({"ab": 2}, mode="savings")
        selected = Trie()
        assert table.pop_best(selected) is not None
        assert table.pop_best(selected) is None

    def test_candidate_limit_truncates(self):
        counts = {f"p{i:02d}": 1 + i for i in range(50)}
        table = RankTable(counts, candidate_limit=5, mode="savings")
        assert len(table) == 5

    def test_remove_excludes_pattern(self):
        table = RankTable({"ab": 5, "cd": 4}, mode="savings")
        table.remove("ab")
        assert table.pop_best(Trie()).pattern == "cd"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            RankTable({"ab": 1}, mode="weird")

    def test_lazy_heap_matches_exhaustive_search(self):
        """The lazy-greedy selection equals brute-force argmax at every step."""
        corpus = ["CCOC(=O)CC", "CCOC(=O)N", "c1ccccc1CCO", "CCOCCO"]
        counts = dict(count_substrings(corpus, lmin=2, lmax=4, min_occurrences=1))

        def brute_force_selection(k: int) -> list[str]:
            from repro.dictionary.ranking import pattern_encoding_cost as cost

            selected: list[str] = []
            trie = Trie()
            remaining = dict(counts)
            for _ in range(k):
                best, best_rank = None, 0.0
                for pattern, occ in sorted(remaining.items()):
                    rank = occ * max(0, cost(pattern, trie) - 1)
                    if rank > best_rank:
                        best, best_rank = pattern, rank
                if best is None:
                    break
                selected.append(best)
                trie.insert(best, best)
                del remaining[best]
            return selected

        expected = brute_force_selection(6)
        table = RankTable(dict(counts), mode="savings")
        trie = Trie()
        actual: list[str] = []
        for _ in range(6):
            item = table.pop_best(trie)
            if item is None:
                break
            actual.append(item.pattern)
            trie.insert(item.pattern, item.pattern)
        # Ranks can tie; compare the achieved rank sequence rather than exact
        # pattern identity to keep the test robust to tie-breaking order.
        def rank_sequence(patterns: list[str]) -> list[float]:
            trie = Trie()
            ranks = []
            for p in patterns:
                ranks.append(counts[p] * max(0, pattern_encoding_cost(p, trie) - 1))
                trie.insert(p, p)
            return ranks

        assert rank_sequence(actual) == rank_sequence(expected)

    def test_snapshot_reports_top_candidates(self):
        table = RankTable({"ab": 5, "cd": 3, "efgh": 2}, mode="savings")
        snapshot = table.snapshot(Trie(), top=2)
        assert len(snapshot) == 2
        assert snapshot[0].rank >= snapshot[1].rank


class TestCorpusStatistics:
    def test_empty_corpus(self):
        stats = corpus_statistics([])
        assert stats["lines"] == 0

    def test_basic_statistics(self):
        stats = corpus_statistics(["ab", "abcd"])
        assert stats["lines"] == 2
        assert stats["total_chars"] == 6
        assert stats["mean_length"] == 3.0
        assert stats["max_length"] == 4
