"""Tests for dictionary pre-population policies (paper Section IV-B)."""

from __future__ import annotations

import pytest

from repro.dictionary.prepopulation import (
    PrePopulation,
    available_symbols,
    capacity,
    seed_entries,
    seeded_characters,
)
from repro.smiles.alphabet import ESCAPE_CHAR, SMILES_ALPHABET


class TestPolicyParsing:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("none", PrePopulation.NONE),
            ("smiles", PrePopulation.SMILES_ALPHABET),
            ("SMILES_alphabet", PrePopulation.SMILES_ALPHABET),
            ("printable", PrePopulation.PRINTABLE),
            ("ASCII", PrePopulation.PRINTABLE),
        ],
    )
    def test_from_name(self, name, expected):
        assert PrePopulation.from_name(name) is expected

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            PrePopulation.from_name("everything")


class TestSeededCharacters:
    def test_none_seeds_nothing(self):
        assert seeded_characters(PrePopulation.NONE) == frozenset()

    def test_smiles_policy_seeds_smiles_alphabet(self):
        seeded = seeded_characters(PrePopulation.SMILES_ALPHABET)
        assert "C" in seeded and "(" in seeded and "@" in seeded
        assert ESCAPE_CHAR not in seeded

    def test_printable_policy_is_superset_of_smiles(self):
        assert seeded_characters(PrePopulation.PRINTABLE) >= seeded_characters(
            PrePopulation.SMILES_ALPHABET
        )

    def test_newlines_never_seeded(self):
        for policy in PrePopulation:
            assert "\n" not in seeded_characters(policy)
            assert "\r" not in seeded_characters(policy)

    def test_seed_entries_are_identity(self):
        entries = seed_entries(PrePopulation.SMILES_ALPHABET)
        assert all(symbol == pattern for symbol, pattern in entries.items())


class TestSymbolPools:
    def test_symbols_never_include_smiles_characters(self):
        for policy in PrePopulation:
            pool = set(available_symbols(policy))
            assert not (pool & SMILES_ALPHABET)

    def test_symbols_never_include_escape_or_newline(self):
        for policy in PrePopulation:
            pool = set(available_symbols(policy))
            assert ESCAPE_CHAR not in pool
            assert "\n" not in pool and "\r" not in pool

    def test_capacity_ordering_matches_paper_design(self):
        # PRINTABLE reserves the printable characters, so it has the fewest
        # slots; SMILES and NONE share the same pool.
        assert capacity(PrePopulation.PRINTABLE) < capacity(PrePopulation.SMILES_ALPHABET)
        assert capacity(PrePopulation.NONE) == capacity(PrePopulation.SMILES_ALPHABET)

    def test_capacity_counts_pool(self):
        for policy in PrePopulation:
            assert capacity(policy) == len(available_symbols(policy))

    def test_pool_has_no_duplicates(self):
        for policy in PrePopulation:
            pool = available_symbols(policy)
            assert len(pool) == len(set(pool))

    def test_pool_is_single_byte_code_points(self):
        for policy in PrePopulation:
            assert all(ord(ch) <= 0xFF for ch in available_symbols(policy))
