"""Declared-count integrity checks on ``.dct`` load (truncation tripwire)."""

from __future__ import annotations

import pytest

from repro.dictionary.codec_table import CodecTable, DictionaryEntry
from repro.dictionary.serialization import dumps, load, loads
from repro.errors import (
    DictionaryFormatError,
    DictionaryIntegrityError,
    DictionaryMismatchError,
)


def make_table(n=5, metadata=None):
    entries = [
        DictionaryEntry(symbol=chr(0x21 + i), pattern=f"C{'N' * i}", seeded=False, rank=n - i)
        for i in range(n)
    ]
    return CodecTable(entries, metadata=metadata or {})


class TestDeclaredEntryCount:
    def test_agreeing_count_loads(self):
        table = make_table(5, metadata={"entries": "5"})
        assert len(loads(dumps(table))) == 5

    def test_disagreeing_count_rejected_with_source(self, tmp_path):
        table = make_table(5, metadata={"entries": "5"})
        path = tmp_path / "broken.dct"
        text = dumps(table)
        path.write_text(
            "".join(text.splitlines(keepends=True)[:-2]), encoding="utf-8"
        )
        with pytest.raises(DictionaryIntegrityError) as excinfo:
            load(path)
        assert str(path) in str(excinfo.value)
        assert excinfo.value.source == path

    def test_trained_entries_mismatch_rejected(self):
        table = make_table(4, metadata={"trained_entries": "4"})
        text = dumps(table)
        truncated = "".join(text.splitlines(keepends=True)[:-1])
        with pytest.raises(DictionaryIntegrityError):
            loads(truncated)

    def test_non_integer_declaration_ignored(self):
        """Legacy free-form header values must never make a file unloadable."""
        table = make_table(3, metadata={"entries": "about three"})
        assert len(loads(dumps(table))) == 3

    def test_golden_dictionary_still_loads(self):
        """The pinned golden fixture declares trained_entries and must agree."""
        from pathlib import Path

        golden = Path(__file__).parent.parent / "fixtures" / "golden.dct"
        table = load(golden)
        trained = sum(1 for e in table.entries if not e.seeded)
        assert str(trained) == table.metadata["trained_entries"]


class TestErrorTaxonomy:
    def test_integrity_error_is_format_error(self):
        """Existing except DictionaryFormatError handlers keep working."""
        assert issubclass(DictionaryIntegrityError, DictionaryFormatError)
        assert not issubclass(DictionaryMismatchError, DictionaryFormatError)
