"""Tests for the symbol ↔ pattern codec table."""

from __future__ import annotations

import pytest

from repro.dictionary.codec_table import CodecTable, DictionaryEntry
from repro.dictionary.prepopulation import PrePopulation, available_symbols, capacity
from repro.errors import DictionaryError, SymbolSpaceExhaustedError
from repro.smiles.alphabet import ESCAPE_CHAR


class TestEntryValidation:
    def test_symbol_must_be_single_character(self):
        with pytest.raises(DictionaryError):
            CodecTable([DictionaryEntry(symbol="ab", pattern="x")])

    def test_escape_character_cannot_be_symbol(self):
        with pytest.raises(DictionaryError):
            CodecTable([DictionaryEntry(symbol=ESCAPE_CHAR, pattern="x")])

    def test_newline_cannot_be_symbol(self):
        with pytest.raises(DictionaryError):
            CodecTable([DictionaryEntry(symbol="\n", pattern="x")])

    def test_empty_pattern_rejected(self):
        with pytest.raises(DictionaryError):
            CodecTable([DictionaryEntry(symbol="!", pattern="")])

    def test_pattern_with_escape_char_rejected(self):
        with pytest.raises(DictionaryError):
            CodecTable([DictionaryEntry(symbol="!", pattern="C O")])

    def test_duplicate_symbol_rejected(self):
        entries = [
            DictionaryEntry(symbol="!", pattern="CC"),
            DictionaryEntry(symbol="!", pattern="OO"),
        ]
        with pytest.raises(DictionaryError):
            CodecTable(entries)

    def test_duplicate_pattern_rejected(self):
        entries = [
            DictionaryEntry(symbol="!", pattern="CC"),
            DictionaryEntry(symbol="?", pattern="CC"),
        ]
        with pytest.raises(DictionaryError):
            CodecTable(entries)


class TestFromPatterns:
    def test_seeded_entries_present(self):
        table = CodecTable.from_patterns(["c1ccccc1"], prepopulation=PrePopulation.SMILES_ALPHABET)
        assert table.pattern_for("C") == "C"
        assert table.symbol_for("c1ccccc1") is not None

    def test_symbols_assigned_in_pool_order(self):
        pool = available_symbols(PrePopulation.SMILES_ALPHABET)
        table = CodecTable.from_patterns(["ccc", "OOO"])
        assert table.symbol_for("ccc") == pool[0]
        assert table.symbol_for("OOO") == pool[1]

    def test_capacity_enforced(self):
        too_many = [f"C{'c' * (i % 7 + 1)}N{i}" for i in range(capacity(PrePopulation.SMILES_ALPHABET) + 5)]
        # Ensure uniqueness of the generated patterns.
        too_many = list(dict.fromkeys(too_many))
        with pytest.raises(SymbolSpaceExhaustedError):
            CodecTable.from_patterns(too_many)

    def test_ranks_attached_to_trained_entries(self):
        table = CodecTable.from_patterns(["ccc", "OOO"], ranks=[12.0, 5.0])
        ranks = {e.pattern: e.rank for e in table.trained_entries}
        assert ranks == {"ccc": 12.0, "OOO": 5.0}

    def test_none_policy_has_no_seeded_entries(self):
        table = CodecTable.from_patterns(["ccc"], prepopulation=PrePopulation.NONE)
        assert table.seeded_entries == []
        assert table.pattern_for("C") is None

    def test_seeded_only(self):
        table = CodecTable.seeded_only(PrePopulation.SMILES_ALPHABET)
        assert table.trained_entries == []
        assert len(table) > 50


class TestLookup:
    @pytest.fixture()
    def table(self) -> CodecTable:
        return CodecTable.from_patterns(["C(=O)N", "c1ccccc1"], metadata={"source": "test"})

    def test_bidirectional_lookup(self, table):
        symbol = table.symbol_for("C(=O)N")
        assert table.pattern_for(symbol) == "C(=O)N"

    def test_contains_checks_patterns(self, table):
        assert "C(=O)N" in table
        assert "NotThere" not in table

    def test_unknown_lookups_return_none(self, table):
        assert table.pattern_for("ሴ") is None
        assert table.symbol_for("zzz") is None

    def test_iteration_and_len(self, table):
        entries = list(table)
        assert len(entries) == len(table)

    def test_metadata_copied(self, table):
        meta = table.metadata
        meta["source"] = "mutated"
        assert table.metadata["source"] == "test"

    def test_trie_payloads_are_symbols(self, table):
        match = table.trie.longest_match_at("c1ccccc1", 0)
        assert match is not None
        assert match[2] == table.symbol_for("c1ccccc1")

    def test_max_pattern_length(self, table):
        assert table.max_pattern_length == 8

    def test_stats(self, table):
        stats = table.stats()
        assert stats["trained_entries"] == 2.0
        assert stats["max_pattern_length"] == 8.0
        assert stats["mean_trained_length"] == 7.0

    def test_symbols_and_patterns_align(self, table):
        assert len(table.symbols()) == len(table.patterns()) == len(table)
