"""Tests for dictionary training (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.dictionary.generator import DictionaryConfig, DictionaryGenerator, train_dictionary
from repro.dictionary.prepopulation import PrePopulation, capacity
from repro.errors import DictionaryError


class TestConfig:
    def test_defaults_match_paper(self):
        config = DictionaryConfig()
        assert config.lmin == 2
        assert config.prepopulation is PrePopulation.SMILES_ALPHABET

    def test_invalid_bounds_rejected(self):
        with pytest.raises(DictionaryError):
            DictionaryConfig(lmin=0)
        with pytest.raises(DictionaryError):
            DictionaryConfig(lmin=4, lmax=3)
        with pytest.raises(DictionaryError):
            DictionaryConfig(max_entries=-1)
        with pytest.raises(DictionaryError):
            DictionaryConfig(rank_mode="other")

    def test_effective_size_respects_capacity(self):
        config = DictionaryConfig(max_entries=10)
        assert config.effective_size() == 10
        unlimited = DictionaryConfig(max_entries=None)
        assert unlimited.effective_size() == capacity(PrePopulation.SMILES_ALPHABET)
        oversized = DictionaryConfig(max_entries=10_000)
        assert oversized.effective_size() == capacity(PrePopulation.SMILES_ALPHABET)


class TestTraining:
    def test_trained_patterns_within_length_bounds(self, mixed_corpus_small):
        table = train_dictionary(mixed_corpus_small[:150], lmin=2, lmax=5)
        assert all(2 <= len(e.pattern) <= 5 for e in table.trained_entries)

    def test_max_entries_respected(self, mixed_corpus_small):
        table = train_dictionary(mixed_corpus_small[:150], max_entries=12)
        assert len(table.trained_entries) <= 12

    def test_patterns_actually_occur_in_corpus(self, mixed_corpus_small):
        corpus = mixed_corpus_small[:100]
        table = train_dictionary(corpus, max_entries=30)
        joined = "\n".join(corpus)
        assert all(e.pattern in joined for e in table.trained_entries)

    def test_report_collected(self, mixed_corpus_small):
        generator = DictionaryGenerator(DictionaryConfig(max_entries=15))
        generator.train(mixed_corpus_small[:100])
        report = generator.report
        assert report is not None
        assert report.selected <= 15
        assert report.candidates > 0
        assert len(report.selected_patterns) == report.selected
        assert "trained" in report.summary()

    def test_metadata_recorded(self, mixed_corpus_small):
        table = train_dictionary(mixed_corpus_small[:100], lmax=6, max_entries=10)
        assert table.metadata["lmax"] == "6"
        assert table.metadata["prepopulation"] == "smiles"

    def test_selected_ranks_non_increasing_in_savings_mode(self, mixed_corpus_small):
        generator = DictionaryGenerator(DictionaryConfig(max_entries=40, rank_mode="savings"))
        generator.train(mixed_corpus_small[:150])
        ranks = generator.report.selected_ranks
        assert all(a >= b - 1e-9 for a, b in zip(ranks, ranks[1:]))

    def test_coverage_mode_trains(self, mixed_corpus_small):
        table = train_dictionary(
            mixed_corpus_small[:100], max_entries=20, rank_mode="coverage"
        )
        assert len(table.trained_entries) > 0

    def test_empty_corpus_trains_seed_only(self):
        table = train_dictionary([], max_entries=10)
        assert table.trained_entries == []
        assert len(table.seeded_entries) > 0

    def test_tiny_corpus_does_not_crash(self):
        table = train_dictionary(["CCO"], max_entries=5, min_occurrences=1)
        assert len(table.trained_entries) <= 5

    def test_rank_modes_produce_different_dictionaries(self, mixed_corpus_small):
        corpus = mixed_corpus_small[:150]
        savings = train_dictionary(corpus, max_entries=60, rank_mode="savings")
        coverage = train_dictionary(corpus, max_entries=60, rank_mode="coverage")
        assert set(e.pattern for e in savings.trained_entries) != set(
            e.pattern for e in coverage.trained_entries
        )

    def test_savings_mode_prefers_longer_patterns(self, mixed_corpus_small):
        corpus = mixed_corpus_small[:150]
        savings = train_dictionary(corpus, max_entries=60, rank_mode="savings")
        coverage = train_dictionary(corpus, max_entries=60, rank_mode="coverage")
        mean_len = lambda table: sum(len(e.pattern) for e in table.trained_entries) / max(
            1, len(table.trained_entries)
        )
        assert mean_len(savings) >= mean_len(coverage)
