"""Tests for the .dct dictionary file format."""

from __future__ import annotations

import io

import pytest

from repro.dictionary.codec_table import CodecTable, DictionaryEntry
from repro.dictionary.prepopulation import PrePopulation
from repro.dictionary.serialization import dumps, load, loads, save
from repro.errors import DictionaryFormatError


@pytest.fixture()
def table() -> CodecTable:
    return CodecTable.from_patterns(
        ["C(=O)N", "c1ccccc1", "(=O)"],
        ranks=[30.0, 20.0, 10.0],
        metadata={"lmax": "8", "source": "unit-test"},
    )


class TestRoundTrip:
    def test_dumps_loads_roundtrip(self, table):
        restored = loads(dumps(table))
        assert restored.patterns() == table.patterns()
        assert restored.symbols() == table.symbols()
        assert restored.prepopulation is table.prepopulation

    def test_metadata_preserved(self, table):
        restored = loads(dumps(table))
        assert restored.metadata["source"] == "unit-test"
        assert restored.metadata["lmax"] == "8"

    def test_ranks_and_seed_flags_preserved(self, table):
        restored = loads(dumps(table))
        original = {e.pattern: (e.seeded, e.rank) for e in table.entries}
        round_tripped = {e.pattern: (e.seeded, e.rank) for e in restored.entries}
        assert original == round_tripped

    def test_file_roundtrip(self, table, tmp_path):
        path = tmp_path / "dict.dct"
        save(table, path)
        restored = load(path)
        assert restored.patterns() == table.patterns()

    def test_stream_roundtrip(self, table):
        buffer = io.StringIO()
        save(table, buffer)
        buffer.seek(0)
        restored = load(buffer)
        assert restored.patterns() == table.patterns()

    def test_extended_symbols_survive(self, table):
        # Trained symbols include extended code points once the printable pool
        # is exhausted; force one explicitly.
        exotic = CodecTable(
            [DictionaryEntry(symbol="÷", pattern="C(=O)NC")],
            prepopulation=PrePopulation.NONE,
        )
        restored = loads(dumps(exotic))
        assert restored.pattern_for("÷") == "C(=O)NC"

    def test_trained_codec_dictionary_roundtrip(self, trained_codec, tmp_path):
        path = tmp_path / "trained.dct"
        save(trained_codec.table, path)
        restored = load(path)
        assert restored.patterns() == trained_codec.table.patterns()


class TestFormat:
    def test_header_present(self, table):
        text = dumps(table)
        assert text.startswith("# ZSMILES dictionary")
        assert "# prepopulation = smiles" in text

    def test_missing_magic_rejected(self):
        with pytest.raises(DictionaryFormatError):
            loads("!\t!\t1\t0\n")

    def test_wrong_field_count_rejected(self, table):
        text = dumps(table) + "!\tonly-two\n"
        with pytest.raises(DictionaryFormatError):
            loads(text)

    def test_bad_rank_rejected(self, table):
        text = dumps(table) + "¡\tXYZW\t0\tnot-a-number\n"
        with pytest.raises(DictionaryFormatError):
            loads(text)

    def test_blank_and_comment_lines_ignored(self, table):
        lines = dumps(table).splitlines()
        lines.insert(3, "")
        lines.insert(4, "# a stray comment")
        restored = loads("\n".join(lines) + "\n")
        assert restored.patterns() == table.patterns()


class TestEscaping:
    def test_escape_unescape_inverse(self):
        from repro.dictionary.serialization import _escape, _unescape

        for text in ["plain", "tab\tinside", "back\\slash", "ctrl\x01char"]:
            assert _unescape(_escape(text)) == text

    def test_dangling_escape_rejected(self):
        from repro.dictionary.serialization import _unescape

        with pytest.raises(DictionaryFormatError):
            _unescape("abc\\")

    def test_unknown_escape_rejected(self):
        from repro.dictionary.serialization import _unescape

        with pytest.raises(DictionaryFormatError):
            _unescape("\\q")
