"""Tests for the pattern-matching trie."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dictionary.trie import Trie


class TestConstruction:
    def test_empty_trie(self):
        trie = Trie()
        assert len(trie) == 0
        assert trie.max_length == 0

    def test_insert_and_contains(self):
        trie = Trie()
        trie.insert("abc", "X")
        assert "abc" in trie
        assert "ab" not in trie
        assert len(trie) == 1

    def test_insert_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            Trie().insert("")

    def test_reinsert_overwrites_payload_without_growing(self):
        trie = Trie()
        trie.insert("ab", "1")
        trie.insert("ab", "2")
        assert len(trie) == 1
        assert trie.payload("ab") == "2"

    def test_from_patterns(self):
        trie = Trie.from_patterns(["ab", "abc"])
        assert trie.payload("ab") == "ab"
        assert trie.max_length == 3

    def test_constructor_items(self):
        trie = Trie([("ab", "x"), ("cd", "y")])
        assert trie.payload("cd") == "y"


class TestMatching:
    @pytest.fixture()
    def trie(self) -> Trie:
        return Trie([("C", "1"), ("CC", "2"), ("CCO", "3"), ("O", "4"), ("c1cc", "5")])

    def test_matches_at_returns_all_prefix_matches(self, trie):
        matches = trie.matches_at("CCO", 0)
        assert [(m[0], m[1]) for m in matches] == [(1, "C"), (2, "CC"), (3, "CCO")]

    def test_matches_at_offset(self, trie):
        matches = trie.matches_at("XCCO", 1)
        assert [m[1] for m in matches] == ["C", "CC", "CCO"]

    def test_matches_at_no_match(self, trie):
        assert trie.matches_at("XYZ", 0) == []

    def test_longest_match(self, trie):
        assert trie.longest_match_at("CCOC", 0)[1] == "CCO"
        assert trie.longest_match_at("ZZ", 0) is None

    def test_payload_returned_with_match(self, trie):
        assert trie.matches_at("c1ccccc1", 0)[-1][2] == "5"

    def test_iter_patterns_sorted(self, trie):
        patterns = [p for p, _ in trie.iter_patterns()]
        assert patterns == sorted(patterns)
        assert len(patterns) == 5


class TestCoverage:
    def test_full_coverage(self):
        trie = Trie.from_patterns(["ab", "cd"])
        assert trie.coverage("abcd") == 4

    def test_partial_coverage(self):
        trie = Trie.from_patterns(["ab"])
        assert trie.coverage("abxab") == 4

    def test_no_coverage(self):
        trie = Trie.from_patterns(["zz"])
        assert trie.coverage("abc") == 0

    def test_greedy_coverage_uses_longest_match(self):
        trie = Trie.from_patterns(["a", "aaa"])
        assert trie.coverage("aaaa") == 4


@given(st.lists(st.text(alphabet="CNOc1()=", min_size=1, max_size=6), min_size=1, max_size=15),
       st.text(alphabet="CNOc1()=", max_size=40))
@settings(max_examples=60, deadline=None)
def test_matches_at_agrees_with_startswith(patterns, text):
    """Every reported match is a real prefix and no pattern match is missed."""
    trie = Trie.from_patterns(patterns)
    for pos in range(len(text)):
        reported = {m[1] for m in trie.matches_at(text, pos)}
        expected = {p for p in patterns if text.startswith(p, pos)}
        assert reported == expected
