"""End-to-end tests for the ``zsmiles`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.streaming import read_lines
from repro.datasets.io import write_smi


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A directory with a small .smi library and a trained dictionary."""
    from repro.datasets import mixed

    directory = tmp_path_factory.mktemp("cli")
    corpus = mixed.generate(150, seed=31)
    library = directory / "library.smi"
    write_smi(library, corpus)
    dictionary = directory / "shared.dct"
    exit_code = main(["train", str(library), "-o", str(dictionary), "--lmax", "6"])
    assert exit_code == 0
    return directory, library, dictionary, corpus


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "in.smi", "-o", "out.dct"])
        assert args.lmax == 8
        assert args.prepopulation == "smiles"


class TestTrainCompressDecompress:
    def test_dictionary_created(self, workspace):
        _, _, dictionary, _ = workspace
        assert dictionary.exists()
        assert dictionary.read_text(encoding="utf-8").startswith("# ZSMILES dictionary")

    def test_compress_and_stats(self, workspace, capsys):
        directory, library, dictionary, _ = workspace
        zsmi = directory / "library.zsmi"
        assert main(["compress", str(library), "-d", str(dictionary), "-o", str(zsmi)]) == 0
        assert zsmi.exists()
        out = capsys.readouterr().out
        assert "ratio" in out

        assert main(["stats", str(library), "-d", str(dictionary)]) == 0
        stats_out = capsys.readouterr().out
        assert "compression ratio" in stats_out

    def test_decompress_roundtrip(self, workspace):
        directory, library, dictionary, corpus = workspace
        zsmi = directory / "library.zsmi"
        if not zsmi.exists():
            main(["compress", str(library), "-d", str(dictionary), "-o", str(zsmi)])
        restored = directory / "restored.smi"
        assert main(["decompress", str(zsmi), "-d", str(dictionary), "-o", str(restored)]) == 0
        assert len(list(read_lines(restored))) == len(corpus)

    def test_index_and_get(self, workspace, capsys):
        directory, library, dictionary, corpus = workspace
        zsmi = directory / "library.zsmi"
        if not zsmi.exists():
            main(["compress", str(library), "-d", str(dictionary), "-o", str(zsmi)])
        index_path = directory / "library.idx"
        assert main(["index", str(zsmi), "-o", str(index_path)]) == 0
        assert index_path.exists()
        capsys.readouterr()

        assert main([
            "get", str(zsmi), "0", "5", "-d", str(dictionary), "--index", str(index_path),
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2


class TestBackendFlags:
    def test_backend_defaults_to_auto(self):
        args = build_parser().parse_args(["compress", "in.smi", "-d", "d.dct"])
        assert args.backend == "auto"
        assert args.jobs is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compress", "in.smi", "-d", "d.dct", "--backend", "gpu"]
            )

    def test_compress_with_serial_backend(self, workspace):
        directory, library, dictionary, corpus = workspace
        out = directory / "serial.zsmi"
        assert main([
            "compress", str(library), "-d", str(dictionary), "-o", str(out),
            "--backend", "serial",
        ]) == 0
        assert len(list(read_lines(out))) == len(corpus)

    def test_compress_with_process_backend_matches_serial(self, workspace):
        directory, library, dictionary, _ = workspace
        serial_out = directory / "flag_serial.zsmi"
        process_out = directory / "flag_process.zsmi"
        assert main([
            "compress", str(library), "-d", str(dictionary), "-o", str(serial_out),
            "--backend", "serial",
        ]) == 0
        assert main([
            "compress", str(library), "-d", str(dictionary), "-o", str(process_out),
            "--backend", "process", "--jobs", "2",
        ]) == 0
        assert process_out.read_bytes() == serial_out.read_bytes()

    def test_decompress_with_backend_flags(self, workspace):
        directory, library, dictionary, corpus = workspace
        zsmi = directory / "flag_roundtrip.zsmi"
        assert main([
            "compress", str(library), "-d", str(dictionary), "-o", str(zsmi),
            "--backend", "serial",
        ]) == 0
        restored = directory / "flag_restored.smi"
        assert main([
            "decompress", str(zsmi), "-d", str(dictionary), "-o", str(restored),
            "--backend", "process", "--jobs", "2",
        ]) == 0
        assert len(list(read_lines(restored))) == len(corpus)


class TestPackUnpackQuery:
    @pytest.fixture(scope="class")
    def packed(self, workspace, tmp_path_factory):
        directory, library, dictionary, corpus = workspace
        zss = tmp_path_factory.mktemp("pack") / "library.zss"
        exit_code = main([
            "pack", str(library), "-d", str(dictionary), "-o", str(zss),
            "--block-size", "32",
        ])
        assert exit_code == 0
        return zss, dictionary, corpus

    def test_pack_reports_blocks_and_ratio(self, workspace, tmp_path, capsys):
        directory, library, dictionary, corpus = workspace
        zss = tmp_path / "out.zss"
        assert main([
            "pack", str(library), "-d", str(dictionary), "-o", str(zss),
            "--block-size", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "blocks" in out and "ratio" in out
        assert zss.exists()

    def test_pack_default_output_swaps_suffix(self, workspace, tmp_path):
        directory, library, dictionary, _ = workspace
        copy = tmp_path / "lib.smi"
        copy.write_bytes(library.read_bytes())
        assert main(["pack", str(copy), "-d", str(dictionary)]) == 0
        assert (tmp_path / "lib.zss").exists()

    def test_query_uses_embedded_dictionary(self, packed, capsys):
        zss, dictionary, corpus = packed
        assert main(["query", str(zss), "0", "25", "149"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3

    def test_query_matches_get_on_flat_file(self, workspace, packed, capsys):
        directory, library, dictionary, corpus = workspace
        zss, _, _ = packed
        zsmi = directory / "library.zsmi"
        if not zsmi.exists():
            main(["compress", str(library), "-d", str(dictionary), "-o", str(zsmi)])
        assert main(["query", str(zss), "3", "40"]) == 0
        store_lines = capsys.readouterr().out.strip().splitlines()
        assert main(["get", str(zsmi), "3", "40", "-d", str(dictionary)]) == 0
        flat_lines = capsys.readouterr().out.strip().splitlines()
        assert store_lines == flat_lines

    def test_query_raw_prints_stored_records(self, packed, capsys):
        zss, _, _ = packed
        assert main(["query", str(zss), "0", "--raw"]) == 0
        raw = capsys.readouterr().out.strip()
        assert raw  # compressed text, not necessarily printable SMILES

    def test_unpack_roundtrip(self, workspace, packed, tmp_path):
        directory, library, dictionary, corpus = workspace
        zss, _, _ = packed
        restored = tmp_path / "restored.smi"
        assert main(["unpack", str(zss), "-o", str(restored)]) == 0
        assert len(list(read_lines(restored))) == len(corpus)

    def test_pack_rejects_bad_block_size(self, workspace):
        directory, library, dictionary, _ = workspace
        assert main([
            "pack", str(library), "-d", str(dictionary), "--block-size", "0",
        ]) == 2


class TestShardedLibraryCommands:
    @pytest.fixture(scope="class")
    def packed_library(self, workspace, tmp_path_factory):
        """A 3-shard library packed through ``pack --shards``."""
        directory, library, dictionary, corpus = workspace
        library_dir = tmp_path_factory.mktemp("libpack") / "corpus.library"
        exit_code = main([
            "pack", str(library), "-d", str(dictionary),
            "-o", str(library_dir), "--shards", "3", "--block-size", "16",
        ])
        assert exit_code == 0
        return library_dir, dictionary, corpus

    def test_pack_shards_writes_manifest_and_shards(self, packed_library, capsys):
        library_dir, _, corpus = packed_library
        assert (library_dir / "library.json").exists()
        shards = sorted(p.name for p in library_dir.glob("*.zss"))
        assert shards == ["shard-0000.zss", "shard-0001.zss", "shard-0002.zss"]

    def test_pack_shards_default_output_directory(self, workspace, tmp_path):
        directory, library, dictionary, _ = workspace
        copy = tmp_path / "lib.smi"
        copy.write_bytes(library.read_bytes())
        assert main([
            "pack", str(copy), "-d", str(dictionary), "--shards", "2",
        ]) == 0
        assert (tmp_path / "lib.library" / "library.json").exists()

    def test_query_serves_from_library(self, packed_library, capsys):
        library_dir, _, corpus = packed_library
        assert main(["query", str(library_dir), "0", "60", "149"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3

    def test_query_library_matches_single_shard(self, workspace, packed_library,
                                                tmp_path, capsys):
        directory, library, dictionary, _ = workspace
        library_dir, _, _ = packed_library
        zss = tmp_path / "single.zss"
        assert main([
            "pack", str(library), "-d", str(dictionary), "-o", str(zss),
        ]) == 0
        capsys.readouterr()
        assert main(["query", str(zss), "5", "77", "120"]) == 0
        single = capsys.readouterr().out
        assert main(["query", str(library_dir), "5", "77", "120"]) == 0
        assert capsys.readouterr().out == single
        # The manifest path and --mmap/--cache-blocks serve the same bytes.
        assert main([
            "query", str(library_dir / "library.json"), "5", "77", "120",
            "--cache-blocks", "1", "--mmap",
        ]) == 0
        assert capsys.readouterr().out == single

    def test_query_rejects_bad_cache_blocks(self, packed_library):
        library_dir, _, _ = packed_library
        assert main(["query", str(library_dir), "0", "--cache-blocks", "0"]) == 2

    def test_unpack_library_roundtrip(self, packed_library, tmp_path):
        library_dir, _, corpus = packed_library
        restored = tmp_path / "restored.smi"
        assert main(["unpack", str(library_dir), "-o", str(restored)]) == 0
        assert len(list(read_lines(restored))) == len(corpus)

    def test_pack_rejects_bad_shard_count(self, workspace):
        directory, library, dictionary, _ = workspace
        assert main([
            "pack", str(library), "-d", str(dictionary), "--shards", "0",
        ]) == 2

    def test_serve_bench_on_library(self, packed_library, capsys):
        library_dir, _, _ = packed_library
        assert main([
            "serve-bench", str(library_dir),
            "--requests", "32", "--batch-size", "8", "--pool-size", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "single get" in out and "get_many" in out and "async pool" in out

    def test_serve_bench_on_flat_file(self, workspace, capsys):
        directory, library, dictionary, _ = workspace
        assert main([
            "serve-bench", str(library), "--requests", "16", "--batch-size", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "layout=flat" in out
        assert "async pool" not in out  # flat files have no async pool path

    def test_serve_bench_rejects_bad_counts(self, packed_library):
        library_dir, _, _ = packed_library
        assert main(["serve-bench", str(library_dir), "--requests", "0"]) == 2
        assert main(["serve-bench", str(library_dir), "--cache-blocks", "0"]) == 2

    def test_serve_bench_writes_machine_readable_json(
        self, packed_library, tmp_path, capsys
    ):
        import json

        library_dir, _, _ = packed_library
        out_path = tmp_path / "serve.json"
        assert main([
            "serve-bench", str(library_dir),
            "--requests", "32", "--batch-size", "8", "--pool-size", "2",
            "--json", str(out_path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["benchmark"] == "serve_bench"
        assert payload["requests"] == 32
        assert set(payload["modes"]) == {"single_get", "get_many", "async_pool"}
        for mode in payload["modes"].values():
            assert mode["requests_per_sec"] > 0
            assert mode["us_per_request"] > 0


class TestShardJobsFlag:
    def test_shard_jobs_requires_shards(self, workspace):
        directory, library, dictionary, _ = workspace
        assert main([
            "pack", str(library), "-d", str(dictionary), "--shard-jobs", "2",
        ]) == 2

    def test_shard_jobs_rejects_zero(self, workspace):
        directory, library, dictionary, _ = workspace
        assert main([
            "pack", str(library), "-d", str(dictionary),
            "--shards", "2", "--shard-jobs", "0",
        ]) == 2

    def test_shard_jobs_matches_sequential_pack(self, workspace, tmp_path, capsys):
        """`pack --shard-jobs` emits byte-identical shards and manifest."""
        directory, library, dictionary, _ = workspace
        sequential = tmp_path / "seq.library"
        parallel = tmp_path / "par.library"
        assert main([
            "pack", str(library), "-d", str(dictionary), "-o", str(sequential),
            "--shards", "3", "--block-size", "16",
        ]) == 0
        assert main([
            "pack", str(library), "-d", str(dictionary), "-o", str(parallel),
            "--shards", "3", "--block-size", "16", "--shard-jobs", "2",
        ]) == 0
        for name in ("shard-0000.zss", "shard-0001.zss", "shard-0002.zss",
                     "library.json"):
            assert (parallel / name).read_bytes() == (sequential / name).read_bytes()


class TestComposeCommand:
    def test_compose_concatenates_without_repacking(self, workspace, tmp_path, capsys):
        directory, library, dictionary, corpus = workspace
        root = tmp_path / "corpora"
        for name, shards in (("a", 2), ("b", 1)):
            assert main([
                "pack", str(library), "-d", str(dictionary),
                "-o", str(root / f"{name}.library"), "--shards", str(shards),
                "--block-size", "32",
            ]) == 0
        capsys.readouterr()
        assert main([
            "compose", str(root / "a.library"), str(root / "b.library"),
            "-o", str(root),
        ]) == 0
        out = capsys.readouterr().out
        assert "no shards repacked" in out
        assert (root / "library.json").exists()
        # The composed library serves both copies back to back.
        assert main(["query", str(root), "0", str(len(corpus)),
                     str(2 * len(corpus) - 1)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert lines[0] == lines[1]  # record 0 of copy A == record 0 of copy B

    def test_compose_rejects_outside_root(self, workspace, tmp_path):
        directory, library, dictionary, _ = workspace
        packed = tmp_path / "inner" / "a.library"
        assert main([
            "pack", str(library), "-d", str(dictionary), "-o", str(packed),
            "--shards", "1",
        ]) == 0
        from repro.errors import ManifestError

        with pytest.raises(ManifestError):
            main(["compose", str(packed), "-o", str(tmp_path / "elsewhere")])


class TestQueryVerbose:
    def test_verbose_reports_cache_counters(self, workspace, tmp_path, capsys):
        directory, library, dictionary, _ = workspace
        zss = tmp_path / "v.zss"
        assert main([
            "pack", str(library), "-d", str(dictionary), "-o", str(zss),
            "--block-size", "16",
        ]) == 0
        capsys.readouterr()
        assert main(["query", str(zss), "0", "1", "2", "--verbose"]) == 0
        captured = capsys.readouterr()
        assert "cache:" in captured.err
        assert "2 hits" in captured.err  # records 1, 2 hit record 0's block
        assert "1 misses" in captured.err

    def test_verbose_on_library(self, workspace, tmp_path, capsys):
        directory, library, dictionary, _ = workspace
        library_dir = tmp_path / "v.library"
        assert main([
            "pack", str(library), "-d", str(dictionary), "-o", str(library_dir),
            "--shards", "2", "--block-size", "16",
        ]) == 0
        capsys.readouterr()
        assert main(["query", str(library_dir), "0", "80", "-v"]) == 0
        captured = capsys.readouterr()
        assert "cache:" in captured.err and "misses" in captured.err


class TestGenerateAndExperiment:
    def test_generate_dataset(self, tmp_path, capsys):
        out = tmp_path / "gdb.smi"
        assert main(["generate", "gdb17", "25", "-o", str(out), "--seed", "3"]) == 0
        assert len(list(read_lines(out))) == 25

    def test_experiment_table1_smoke(self, capsys):
        assert main(["experiment", "table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "SMILES alphabet" in out
