"""Tests for the ring-identifier renumbering preprocessor (paper Section IV-A)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocess.ring_renumber import assign_ring_ids, renumber_rings
from repro.smiles.parser import parse
from repro.smiles.rings import ring_spans
from repro.smiles.validate import is_valid

DIBENZOYLMETHANE = "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2"


class TestPaperExample:
    def test_dibenzoylmethane_matches_paper(self):
        """The exact transformation shown in Section IV-A of the paper."""
        assert (
            renumber_rings(DIBENZOYLMETHANE)
            == "C0=CC=C(C=C0)C(=O)CC(=O)C0=CC=CC=C0"
        )

    def test_renumbered_output_is_valid(self):
        assert is_valid(renumber_rings(DIBENZOYLMETHANE))

    def test_renumbering_preserves_structure(self):
        original = parse(DIBENZOYLMETHANE)
        renumbered = parse(renumber_rings(DIBENZOYLMETHANE))
        assert renumbered.atom_count() == original.atom_count()
        assert renumbered.bond_count() == original.bond_count()
        assert renumbered.ring_bond_count() == original.ring_bond_count()


class TestFastPathParity:
    """The regex fast path must be byte-identical to the token path."""

    def test_fast_and_token_paths_agree_on_generated_corpora(
        self, gdb_corpus, mediate_corpus, exscalate_corpus
    ):
        from repro.preprocess.ring_renumber import renumber_tokens
        from repro.smiles.tokenizer import tokenize

        for smiles in gdb_corpus + mediate_corpus + exscalate_corpus:
            for policy in ("innermost", "outermost"):
                expected = "".join(renumber_tokens(tokenize(smiles), policy=policy))
                assert renumber_rings(smiles, policy=policy) == expected

    def test_malformed_input_still_raises_through_fallback(self):
        from repro.errors import TokenizationError

        with pytest.raises(TokenizationError, match="unexpected character"):
            renumber_rings("C1Q1")  # has a digit, so no early return
        with pytest.raises(TokenizationError, match="two digits"):
            renumber_rings("C%1")

    def test_unicode_digit_likes_keep_token_path_behaviour(self):
        # '²'.isdigit() is true but '²' is no ASCII ring id: the historical
        # probe sent such lines to the tokenizer, which chokes on int('²').
        # The ASCII-gated fast path must preserve that, not skip silently.
        with pytest.raises(ValueError):
            renumber_rings("C²")
        # Non-ASCII lines without any digit-like stay untouched, as before.
        assert renumber_rings("Cè") == "Cè"

    def test_escaped_percent_two_digit_ids_round_trip(self):
        # %nn ids compact to single digits; >9 new ids keep the %nn form.
        assert renumber_rings("C%12CCCCC%12") == "C0CCCCC0"


class TestBasicBehaviour:
    def test_string_without_rings_unchanged(self):
        assert renumber_rings("CCO") == "CCO"

    def test_single_ring_gets_id_zero(self):
        assert renumber_rings("C1CCCCC1") == "C0CCCCC0"

    def test_sequential_rings_both_get_zero(self):
        assert renumber_rings("C1CC1C2CC2") == "C0CC0C0CC0"

    def test_custom_start_id(self):
        assert renumber_rings("C1CCCCC1", start_id=1) == "C1CCCCC1"

    def test_idempotent(self):
        once = renumber_rings(DIBENZOYLMETHANE)
        assert renumber_rings(once) == once

    def test_percent_ids_collapse_to_single_digit(self):
        assert renumber_rings("C%11CCCCC%11") == "C0CCCCC0"

    def test_bracket_digits_untouched(self):
        assert renumber_rings("[13CH4]") == "[13CH4]"


class TestNestedRings:
    def test_nested_rings_get_distinct_ids(self):
        out = renumber_rings("C1CC2CCC1CC2")
        spans = ring_spans(out)
        assert len(spans) == 2
        assert spans[0].ring_id != spans[1].ring_id

    def test_innermost_gets_smaller_id(self):
        # Ring opened second but closed first (the inner one) must get id 0.
        smiles = "C1CC2CCC2CC1"  # ring 2 nested inside ring 1
        out = renumber_rings(smiles, policy="innermost")
        spans = sorted(ring_spans(out), key=lambda s: s.open_index)
        outer, inner = spans[0], spans[1]
        assert inner.ring_id == 0
        assert outer.ring_id == 1

    def test_outermost_policy_reverses_preference(self):
        smiles = "C1CC2CCC2CC1"
        out = renumber_rings(smiles, policy="outermost")
        spans = sorted(ring_spans(out), key=lambda s: s.open_index)
        outer, inner = spans[0], spans[1]
        assert outer.ring_id == 0
        assert inner.ring_id == 1

    def test_overlapping_rings_never_share_an_id(self, mediate_corpus):
        for smiles in mediate_corpus[:60]:
            out = renumber_rings(smiles)
            spans = ring_spans(out)
            for i, a in enumerate(spans):
                for b in spans[i + 1 :]:
                    if a.overlaps(b):
                        assert a.ring_id != b.ring_id, out


class TestAssignRingIds:
    def test_empty_input(self):
        assert assign_ring_ids([]) == {}

    def test_unknown_policy_rejected(self):
        from repro.errors import RingNumberingError
        from repro.smiles.rings import RingSpan

        with pytest.raises(RingNumberingError):
            assign_ring_ids([RingSpan(1, 0, 3)], policy="sideways")  # type: ignore[arg-type]


class TestStructurePreservation:
    def test_generated_corpora_preserve_structure(self, gdb_corpus, exscalate_corpus):
        for corpus in (gdb_corpus, exscalate_corpus):
            for smiles in corpus[:40]:
                out = renumber_rings(smiles)
                a, b = parse(smiles), parse(out)
                assert a.atom_count() == b.atom_count()
                assert a.bond_count() == b.bond_count()
                assert a.ring_bond_count() == b.ring_bond_count()

    def test_renumbering_never_lengthens_the_string(self, mediate_corpus):
        for smiles in mediate_corpus[:60]:
            assert len(renumber_rings(smiles)) <= len(smiles)


@pytest.mark.slow
@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_renumbering_is_idempotent_and_valid_on_generated_molecules(seed):
    from repro.datasets.mediate import generator

    smiles = generator(seed=seed).generate_smiles()
    once = renumber_rings(smiles)
    assert is_valid(once)
    assert renumber_rings(once) == once
    assert parse(once).ring_bond_count() == parse(smiles).ring_bond_count()
