"""Tests for the preprocessing pipeline."""

from __future__ import annotations

import pickle

from repro.preprocess.pipeline import (
    PreprocessingPipeline,
    drop_title_column,
    make_pipeline,
    strip_whitespace,
)


class TestSteps:
    def test_strip_whitespace(self):
        assert strip_whitespace("  CCO \n") == "CCO"

    def test_drop_title_column(self):
        assert drop_title_column("CCO ethanol") == "CCO"
        assert drop_title_column("CCO") == "CCO"
        assert drop_title_column("") == ""


class TestPipelineConstruction:
    def test_default_pipeline_has_ring_renumbering(self):
        pipeline = PreprocessingPipeline.default(ring_renumbering=True)
        assert len(pipeline) == 2
        assert any("ring_renumber" in name for name in pipeline.names)

    def test_identity_pipeline_only_strips(self):
        pipeline = PreprocessingPipeline.identity()
        assert pipeline.names == ["strip_whitespace"]

    def test_make_pipeline_toggle(self):
        assert len(make_pipeline(True)) == 2
        assert len(make_pipeline(False)) == 1

    def test_make_pipeline_extra_steps(self):
        pipeline = make_pipeline(False, extra_steps=[("upper", str.upper)])
        assert pipeline("cco ") == "CCO"

    def test_add_returns_self_for_chaining(self):
        pipeline = PreprocessingPipeline()
        assert pipeline.add("a", str.strip) is pipeline

    def test_describe(self):
        assert "->" in make_pipeline(True).describe()
        assert PreprocessingPipeline().describe() == "(empty pipeline)"


class TestApplication:
    def test_apply_renumbers_rings(self):
        pipeline = make_pipeline(True)
        assert pipeline.apply(" C1CCCCC1 ") == "C0CCCCC0"

    def test_apply_without_preprocessing_keeps_ids(self):
        pipeline = make_pipeline(False)
        assert pipeline.apply(" C1CCCCC1 ") == "C1CCCCC1"

    def test_apply_all_lazy(self):
        pipeline = make_pipeline(True)
        out = list(pipeline.apply_all(iter(["C1CC1", "CCO"])))
        assert out == ["C0CC0", "CCO"]

    def test_apply_list(self):
        pipeline = make_pipeline(False)
        assert pipeline.apply_list(["CC ", " CO"]) == ["CC", "CO"]

    def test_outermost_policy_supported(self):
        pipeline = make_pipeline(True, ring_policy="outermost")
        assert "outermost" in pipeline.describe()

    def test_pipeline_is_picklable(self):
        """Required by the multiprocessing backend (spawn context)."""
        pipeline = make_pipeline(True)
        clone = pickle.loads(pickle.dumps(pipeline))
        assert clone("C1CCCCC1") == pipeline("C1CCCCC1")
