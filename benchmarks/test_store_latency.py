"""Serving-path latency: flat vs ``.zss`` vs sharded library vs mmap vs async.

Times single-get and batched-get requests against every serving layout over
the same corpus and reports one comparison table.  This is a *smoke-friendly*
benchmark: assertions only check that every layout serves byte-identical
records (and that the run completes) — never timings — so CI can run it at
``ZSMILES_BENCH_SCALE=smoke`` as a serving-path regression tripwire without
flaking on machine speed.
"""

from __future__ import annotations

import asyncio
import random
import time

import pytest

from repro.core.random_access import LineIndex, RandomAccessReader
from repro.core.streaming import compress_file, write_lines
from repro.engine import ZSmilesEngine
from repro.library import AsyncCorpusLibrary, CorpusLibrary, pack_library
from repro.metrics.reporting import ResultTable
from repro.store import CorpusStore, pack_records

#: Random single-get requests timed per layout.
REQUESTS = 200
#: Indices per batched get_many call.
BATCH_SIZE = 50
#: Shards in the sharded-library layout.
SHARDS = 4
#: Pooled readers for the async layout.
POOL_SIZE = 4


@pytest.fixture(scope="module")
def serving_corpus(corpus):
    return corpus[: min(2_000, len(corpus))]


@pytest.fixture(scope="module")
def layouts(tmp_path_factory, shared_codec, serving_corpus):
    """One corpus packed in every serving layout."""
    directory = tmp_path_factory.mktemp("store_latency")
    smi = directory / "corpus.smi"
    zsmi = directory / "corpus.zsmi"
    write_lines(smi, serving_corpus)
    compress_file(shared_codec, smi, zsmi)
    index = LineIndex.build(zsmi)
    index.save(LineIndex.default_path(zsmi))

    zss = directory / "corpus.zss"
    library_dir = directory / "corpus.library"
    with ZSmilesEngine.from_codec(shared_codec, backend="serial") as engine:
        pack_records(zss, serving_corpus, engine, records_per_block=64)
        pack_library(library_dir, serving_corpus, engine,
                     shards=SHARDS, records_per_block=64)
    return {
        "flat .zsmi": lambda: RandomAccessReader(zsmi, index=index, codec=shared_codec),
        "single .zss": lambda: CorpusStore(zss),
        "sharded library": lambda: CorpusLibrary.open(library_dir),
        "sharded + mmap": lambda: CorpusLibrary.open(library_dir, use_mmap=True),
    }, library_dir


def _request_indices(total: int) -> list:
    rng = random.Random(17)
    return [rng.randrange(total) for _ in range(REQUESTS)]


def test_single_and_batched_get_latency(layouts, serving_corpus, report):
    """Time every layout on the same request stream; assert byte parity."""
    openers, library_dir = layouts
    indices = _request_indices(len(serving_corpus))
    batches = [indices[i : i + BATCH_SIZE] for i in range(0, len(indices), BATCH_SIZE)]

    table = ResultTable(
        title="Store serving latency (lower is better)",
        columns=["layout", "single get (us/req)", "get_many (us/req)", "requests"],
    )
    reference = None
    for name, opener in openers.items():
        with opener() as reader:
            assert len(reader) == len(serving_corpus)
            start = time.perf_counter()
            singles = [reader.get(i) for i in indices]
            single_s = time.perf_counter() - start

            start = time.perf_counter()
            batched = [record for batch in batches for record in reader.get_many(batch)]
            batched_s = time.perf_counter() - start

        assert batched == singles
        if reference is None:
            reference = singles
        else:
            # The parity that makes the timings comparable: every layout
            # serves byte-identical records for the same request stream.
            assert singles == reference
        table.add_row(
            name,
            single_s / REQUESTS * 1e6,
            batched_s / REQUESTS * 1e6,
            REQUESTS,
        )

    # Async layout: one batched get_many fanned out over the reader pool.
    async def timed_async() -> tuple:
        async with AsyncCorpusLibrary.open(library_dir, pool_size=POOL_SIZE) as library:
            start = time.perf_counter()
            records = await library.get_many(indices)
            return records, time.perf_counter() - start

    records, async_s = asyncio.run(timed_async())
    assert records == reference
    table.add_row(
        f"async pool ({POOL_SIZE} readers)",
        "-",
        async_s / REQUESTS * 1e6,
        REQUESTS,
    )
    table.add_note(
        f"{len(serving_corpus)} records; {len(batches)} batches of <= {BATCH_SIZE}; "
        f"library split over {SHARDS} shards."
    )
    report("store_latency", table)


def test_cold_single_get_touches_one_block(layouts, serving_corpus):
    """Cold-start sanity: one request decodes one block, not the corpus."""
    openers, _ = layouts
    with openers["sharded library"]() as library:
        middle = len(serving_corpus) // 2
        record = library.get(middle)
        assert record  # non-empty
        shard_no, _ = library.manifest.locate(middle)
        shard = library.shard(shard_no)
        assert shard.blocks_decoded == 1
        assert library.open_shard_count == 1
