"""Benchmark: regenerate Figure 4 (tool comparison on the MIXED dataset).

Paper bars (approximate): ZSMILES 0.29, SHOCO 0.63, FSST 0.33, Bzip2 0.18,
ZSMILES+Bzip2 0.15.  The qualitative shape asserted here: file-based Bzip2 is
the best raw ratio (but gives up random access and readability), ZSMILES
clearly beats SHOCO, and ZSMILES is competitive with FSST while being the only
tool with readable output and a shared dictionary.  EXPERIMENTS.md discusses
the one deviation (ZSMILES vs FSST factor) on the synthetic corpus.
"""

from __future__ import annotations

from repro.experiments.figure4 import TOOL_ORDER, run_figure4
from repro.metrics.figures import figure4_chart


def test_figure4_tool_comparison(benchmark, scale, corpus, report, results_dir):
    result = benchmark.pedantic(
        lambda: run_figure4(scale=scale, corpus=corpus), rounds=1, iterations=1
    )
    table = result.to_table()
    table.add_note(
        f"ZSMILES vs FSST factor: {result.zsmiles_vs_fsst_factor():.3f} (paper: 1.13)."
    )
    report("figure4_tools", table)
    chart = figure4_chart(result.ratios, TOOL_ORDER).render()
    print("\n" + chart)
    (results_dir / "figure4_tools_chart.txt").write_text(chart + "\n", encoding="utf-8")

    ratios = result.ratios
    # Best raw ratio: the stateful file compressor.
    assert ratios["Bzip2"] < min(ratios["ZSMILES"], ratios["FSST"], ratios["SHOCO"])
    # ZSMILES clearly beats the entropy short-string packer.
    assert ratios["ZSMILES"] < ratios["SHOCO"]
    # ZSMILES is competitive with FSST (paper: 1.13x better).
    assert result.zsmiles_vs_fsst_factor() > 0.8
    # Stacking bzip2 on the ZSMILES output compresses further than ZSMILES alone.
    assert ratios["ZSMILES + Bzip2"] < ratios["ZSMILES"]
    # ZSMILES is the only readable, random-access, shared-dictionary option.
    zs_props = result.properties["ZSMILES"]
    assert zs_props.readable_output and zs_props.random_access and zs_props.shared_dictionary
