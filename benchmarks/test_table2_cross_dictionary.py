"""Benchmark: regenerate Table II (cross-dictionary compression ratios).

Paper matrix (training set on the rows used here, test sets on the columns):
diagonal 0.29–0.33, GDB-17-trained dictionary 0.55–0.60 off-diagonal (worst
transfer), MIXED-trained dictionary best overall average (0.32) — which is why
the paper adopts the MIXED dictionary as the single shared dictionary.
"""

from __future__ import annotations

from repro.experiments.table2 import DATASET_ORDER, run_table2


def test_table2_cross_dictionary_matrix(benchmark, scale, report):
    result = benchmark.pedantic(lambda: run_table2(scale=scale), rounds=1, iterations=1)
    report("table2_cross_dictionary", result.to_table())

    # Shape 1: for each test set, the matching (or MIXED) dictionary is among the best.
    assert result.diagonal_is_best_per_test()

    # Shape 2: the GDB-17 dictionary transfers worst.
    averages = {t: result.row_average(t, exclude_self=True) for t in DATASET_ORDER}
    assert max(averages, key=averages.get) == "GDB-17"

    # Shape 3: the MIXED dictionary is the best shared dictionary overall.
    assert result.best_training_set() == "MIXED"

    # All ratios stay in a sane compression regime.
    assert all(0.2 < ratio < 0.75 for ratio in result.ratios.values())
