"""Curation subsystem benchmark: ingest, single-pass training, re-pack.

One run measures the three legs of the curation loop and lands the numbers
in ``BENCH_curation.json`` (repo root, plus a copy under
``benchmarks/results/``):

* **ingest** — lines/sec through the full filter + dedup pipeline over a
  duplicate-heavy synthetic dump;
* **train** — records/sec through the reservoir-sampled single-pass
  dictionary training;
* **repack** — records/sec migrating a packed library to a new dictionary,
  at ``shard_jobs`` 1 vs 4.

Like every benchmark here, assertions gate on *parity* (dedup output is
exactly the unique records; both repacks are byte-identical to each other
and read back equal to the source) and on the run completing — never on
timings — so CI's ``curation-smoke`` job runs this at
``ZSMILES_BENCH_SCALE=smoke`` without flaking on runner speed.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.curation import (
    DictionaryIdentity,
    IngestPipeline,
    ReservoirSampler,
    repack_library,
    tee,
    train_on_sample,
)
from repro.curation.filters import length_filter, strip_filter
from repro.engine import ZSmilesEngine
from repro.library import CorpusLibrary, pack_library
from repro.metrics.reporting import ResultTable

#: Machine-readable curation-throughput record (committed perf trajectory).
BENCH_CURATION_PATH = Path(__file__).resolve().parent.parent / "BENCH_curation.json"

#: Each unique record appears this many times in the synthetic dump.
DUPLICATION = 4
#: Shards in the repacked library.
SHARDS = 4


@pytest.fixture(scope="module")
def unique_records(corpus, scale):
    return list(dict.fromkeys(corpus))[: scale.evaluation_size]


@pytest.fixture(scope="module")
def raw_dump(unique_records):
    """A duplicate-heavy dump: every record DUPLICATION times, interleaved."""
    lines = []
    for round_no in range(DUPLICATION):
        for i, record in enumerate(unique_records):
            lines.append(record if (round_no + i) % 3 else f"  {record}")
            if i % 11 == 0:
                lines.append("")
    return lines


def _leg(seconds: float, items: int, unit: str) -> dict:
    seconds = max(seconds, 1e-9)
    return {
        "seconds": round(seconds, 6),
        unit: items,
        f"{unit}_per_sec": round(items / seconds, 1),
    }


def test_curation_loop_throughput(
    raw_dump, unique_records, report, results_dir, tmp_path_factory
):
    """Ingest → train → repack at two shard-jobs settings; parity-gated."""
    tmp_root = tmp_path_factory.mktemp("curation_bench")

    # -- ingest: filters + dedup over the dump --------------------------- #
    pipeline = IngestPipeline([strip_filter(), length_filter(1, 500)])
    sampler = ReservoirSampler(max(len(unique_records) // 2, 1), seed=7)
    start = time.perf_counter()
    curated = list(tee(pipeline.process(raw_dump), sampler))
    ingest_s = time.perf_counter() - start
    stats = pipeline.stats
    stats.check()
    assert curated == unique_records  # dedup keeps first occurrences, stripped
    assert stats.lines_in == len(raw_dump)
    assert stats.lines_in == stats.records_out + stats.rejected_total()

    # -- train: single-pass reservoir-sampled dictionary ------------------ #
    start = time.perf_counter()
    engine_b, train_sampler = train_on_sample(
        iter(curated),
        capacity=max(len(curated) // 2, 1),
        seed=13,
        preprocessing=False,
        lmax=6,
    )
    train_s = time.perf_counter() - start
    assert train_sampler.seen == len(curated)

    # -- repack: migrate a packed library to dictionary B ------------------ #
    source_dir = tmp_root / "source.library"
    with ZSmilesEngine.train(curated, preprocessing=False, lmax=8) as engine_a:
        pack_library(source_dir, curated, engine_a, shards=SHARDS)
    with CorpusLibrary.open(source_dir) as source:
        source_records = list(source.iter_all())

    repack_legs = {}
    destinations = {}
    with engine_b:
        for jobs in (1, 4):
            destination = tmp_root / f"repacked-j{jobs}.library"
            start = time.perf_counter()
            result = repack_library(
                source_dir, destination, engine_b.table, shard_jobs=jobs
            )
            repack_legs[f"shard_jobs_{jobs}"] = _leg(
                time.perf_counter() - start, result.records, "records"
            )
            destinations[jobs] = destination
            assert result.records == len(source_records)
            assert result.target_identity == DictionaryIdentity.of(engine_b.table)

    # Parity: both repacks byte-identical to each other, readback == source.
    shard_names = sorted(p.name for p in destinations[1].glob("*.zss"))
    assert shard_names == sorted(p.name for p in destinations[4].glob("*.zss"))
    for name in shard_names:
        assert (destinations[1] / name).read_bytes() == (
            destinations[4] / name
        ).read_bytes()
    with CorpusLibrary.open(destinations[4]) as repacked:
        assert list(repacked.iter_all()) == source_records

    payload = {
        "benchmark": "curation_loop",
        "scale": os.environ.get("ZSMILES_BENCH_SCALE", "benchmark"),
        "unique_records": len(unique_records),
        "duplication": DUPLICATION,
        "shards": SHARDS,
        "legs": {
            "ingest": {
                **_leg(ingest_s, stats.lines_in, "lines"),
                "records_out": stats.records_out,
                "rejected": stats.rejected_total(),
            },
            "train": {
                **_leg(train_s, train_sampler.seen, "records"),
                "sample_size": len(train_sampler),
                "dictionary_entries": len(engine_b.table),
            },
            "repack": repack_legs,
        },
        "parity": "byte-identical",
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    BENCH_CURATION_PATH.write_text(text, encoding="utf-8")

    table = ResultTable(
        title="Curation loop: ingest -> train -> repack",
        columns=["leg", "items", "items/sec"],
    )
    table.add_row("ingest (lines)", stats.lines_in,
                  payload["legs"]["ingest"]["lines_per_sec"])
    table.add_row("train (records)", train_sampler.seen,
                  payload["legs"]["train"]["records_per_sec"])
    for name, leg in repack_legs.items():
        table.add_row(f"repack {name} (records)", leg["records"],
                      leg["records_per_sec"])
    table.add_note(
        f"{len(unique_records)} unique records x{DUPLICATION} dup factor; "
        f"{SHARDS}-shard repack; parity gated, timings informational."
    )
    report("curation_loop", table)
    (results_dir / "BENCH_curation.json").write_text(text, encoding="utf-8")
