"""Loopback load harness for the HTTP serving front.

N concurrent blocking clients hammer one :class:`CorpusServer` over loopback
in three modes — single-get, batched get, and chunked range streaming — and
the measurements land in ``BENCH_server.json`` (repo root, plus a copy under
``benchmarks/results/``): the machine-readable latency trajectory of the
network tier, next to ``BENCH_codec.json``'s codec trajectory.

Like every benchmark here, assertions gate on *parity* (every byte a client
receives equals a direct :class:`CorpusLibrary` read) and on the run
completing — never on timings — so CI's ``serve-smoke`` job runs this at
``ZSMILES_BENCH_SCALE=smoke`` as a serving-front tripwire without flaking
on runner speed.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import threading
import time
from pathlib import Path
from urllib.parse import urlparse

import pytest

from repro.engine import ZSmilesEngine
from repro.library import CorpusLibrary, pack_library
from repro.metrics.reporting import ResultTable
from repro.server import BackgroundServer, CorpusClient, ServerFleet

#: Machine-readable server-latency record (committed perf trajectory).
BENCH_SERVER_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

#: Concurrent clients hammering the server (the acceptance bar is >= 8).
CLIENTS = 8
#: Single-get requests issued per client.
REQUESTS_PER_CLIENT = 64
#: Indices per batched get_many request.
BATCH_SIZE = 32
#: Shards in the served library.
SHARDS = 4
#: Server-side async reader-pool size (the backpressure bound).
POOL_SIZE = 4
#: Worker counts for the multi-process scaling curve.
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def serving_corpus(corpus):
    return corpus[: min(2_000, len(corpus))]


@pytest.fixture(scope="module")
def served_library(tmp_path_factory, shared_codec, serving_corpus):
    directory = tmp_path_factory.mktemp("server_latency") / "corpus.library"
    with ZSmilesEngine.from_codec(shared_codec, backend="serial") as engine:
        pack_library(directory, serving_corpus, engine,
                     shards=SHARDS, records_per_block=64)
    return directory


@pytest.fixture(scope="module")
def server(served_library):
    with BackgroundServer(served_library, readers=POOL_SIZE) as srv:
        yield srv


def _client_indices(total: int, seed: int) -> list:
    rng = random.Random(seed)
    return [rng.randrange(total) for _ in range(REQUESTS_PER_CLIENT)]


def _fan_out(url: str, work) -> tuple:
    """Run *work(client, slot)* on CLIENTS threads; returns (results, seconds).

    Each thread owns its client (its own keep-alive socket), all start on a
    shared barrier so the timed window covers genuinely concurrent load.
    """
    results: list = [None] * CLIENTS
    errors: list = []
    barrier = threading.Barrier(CLIENTS + 1)

    def run(slot: int) -> None:
        try:
            with CorpusClient(url, timeout=60.0) as client:
                barrier.wait()
                results[slot] = work(client, slot)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [threading.Thread(target=run, args=(slot,)) for slot in range(CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors
    return results, elapsed


def _mode(seconds: float, requests: int, records: int) -> dict:
    seconds = max(seconds, 1e-9)
    return {
        "seconds": round(seconds, 6),
        "requests": requests,
        "records": records,
        "us_per_request": round(seconds / max(requests, 1) * 1e6, 2),
        "requests_per_sec": round(requests / seconds, 1),
        "records_per_sec": round(records / seconds, 1),
    }


def _merge_bench_payload(update: dict) -> str:
    """Merge *update* into BENCH_server.json, keeping keys the other test
    wrote (the loopback and worker-scaling tests co-own the file).  Returns
    the serialized text so callers can mirror it under benchmarks/results/.
    """
    merged: dict = {}
    if BENCH_SERVER_PATH.exists():
        try:
            merged = json.loads(BENCH_SERVER_PATH.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(update)
    text = json.dumps(merged, indent=2, sort_keys=True) + "\n"
    BENCH_SERVER_PATH.write_text(text, encoding="utf-8")
    return text


def test_loopback_concurrent_load(server, served_library, serving_corpus, report,
                                  results_dir):
    """8 concurrent clients; parity per mode; BENCH_server.json refreshed."""
    total = len(serving_corpus)
    with CorpusLibrary.open(served_library) as direct:
        expected_all = list(direct.iter_all())
    per_client_indices = [_client_indices(total, seed=100 + slot)
                          for slot in range(CLIENTS)]
    stream_span = min(total, 512)

    # -- single gets ---------------------------------------------------- #
    singles, single_s = _fan_out(
        server.url,
        lambda client, slot: [client.get(i) for i in per_client_indices[slot]],
    )
    for slot in range(CLIENTS):
        assert singles[slot] == [expected_all[i] for i in per_client_indices[slot]]
    single_requests = CLIENTS * REQUESTS_PER_CLIENT

    # -- batched gets ---------------------------------------------------- #
    def batched(client: CorpusClient, slot: int) -> list:
        indices = per_client_indices[slot]
        out: list = []
        for cursor in range(0, len(indices), BATCH_SIZE):
            out.extend(client.get_many(indices[cursor : cursor + BATCH_SIZE]))
        return out

    batches, batch_s = _fan_out(server.url, batched)
    assert batches == singles  # same indices, same bytes, one mode vs the other
    batch_requests = CLIENTS * -(-REQUESTS_PER_CLIENT // BATCH_SIZE)

    # -- range streams ---------------------------------------------------- #
    def streamed(client: CorpusClient, slot: int) -> list:
        start = (slot * stream_span) % max(total - stream_span, 1)
        return [start, client.slice(start, start + stream_span)]

    streams, stream_s = _fan_out(server.url, streamed)
    streamed_records = 0
    for start, records in streams:
        assert records == expected_all[start : start + stream_span]
        streamed_records += len(records)

    # -- server-side accounting ------------------------------------------ #
    with CorpusClient(server.url) as observer:
        stats = observer.stats()
    assert stats["counters"]["single"] >= single_requests
    assert stats["counters"]["batch"] >= batch_requests
    assert stats["counters"]["stream"] >= CLIENTS
    assert stats["cache"]["hits"] + stats["cache"]["misses"] > 0

    payload = {
        "benchmark": "server_loopback_load",
        "scale": os.environ.get("ZSMILES_BENCH_SCALE", "benchmark"),
        "records": total,
        "shards": SHARDS,
        "clients": CLIENTS,
        "pool_size": POOL_SIZE,
        "batch_size": BATCH_SIZE,
        "modes": {
            "single_get": _mode(single_s, single_requests, single_requests),
            "batch_get": _mode(batch_s, batch_requests, single_requests),
            "stream": _mode(stream_s, CLIENTS, streamed_records),
        },
        "cache": stats["cache"],
        "parity": "byte-identical",
    }
    text = _merge_bench_payload(payload)

    table = ResultTable(
        title=f"HTTP serving front: {CLIENTS} concurrent loopback clients",
        columns=["mode", "requests", "us/request", "records/sec"],
    )
    for name, mode in payload["modes"].items():
        table.add_row(name, mode["requests"], mode["us_per_request"],
                      mode["records_per_sec"])
    table.add_note(
        f"{total} records over {SHARDS} shards; reader pool {POOL_SIZE}; "
        f"batches of {BATCH_SIZE}; streams of {stream_span}."
    )
    report("server_latency", table)
    (results_dir / "BENCH_server.json").write_text(text, encoding="utf-8")


def test_worker_scaling_curve(served_library, serving_corpus, report, results_dir):
    """Requests/sec across ``--workers`` {1, 2, 4} fleets, parity-gated.

    Each worker count gets a fresh :class:`ServerFleet` over the same
    library; the same 8-client single-get fan-out hammers it, every byte is
    checked against a direct library read, and the curve is merged into
    ``BENCH_server.json`` under ``"worker_scaling"``.  Assertions gate on
    parity and on every worker surviving the run — never on speedup, which
    loopback single-gets on a shared CI runner cannot promise.
    """
    total = len(serving_corpus)
    with CorpusLibrary.open(served_library) as direct:
        expected_all = list(direct.iter_all())
    per_client_indices = [_client_indices(total, seed=300 + slot)
                          for slot in range(CLIENTS)]
    requests = CLIENTS * REQUESTS_PER_CLIENT

    curve: dict = {}
    for workers in WORKER_COUNTS:
        with ServerFleet(served_library, workers=workers,
                         readers=POOL_SIZE) as fleet:
            results, seconds = _fan_out(
                fleet.url,
                lambda client, slot: [client.get(i)
                                      for i in per_client_indices[slot]],
            )
            assert fleet.alive_workers() == workers  # nobody died under load
            for slot in range(CLIENTS):
                assert results[slot] == [expected_all[i]
                                         for i in per_client_indices[slot]]
            entry = _mode(seconds, requests, requests)
            entry["dispatch"] = fleet.mode
            curve[str(workers)] = entry

    text = _merge_bench_payload({
        "worker_scaling": {
            "clients": CLIENTS,
            "requests_per_point": requests,
            "scale": os.environ.get("ZSMILES_BENCH_SCALE", "benchmark"),
            "workers": curve,
            "parity": "byte-identical",
        },
    })
    (results_dir / "BENCH_server.json").write_text(text, encoding="utf-8")

    table = ResultTable(
        title=f"Fleet scaling: {CLIENTS} clients vs --workers "
              f"{{{', '.join(str(w) for w in WORKER_COUNTS)}}}",
        columns=["workers", "dispatch", "requests/sec", "us/request"],
    )
    for workers in WORKER_COUNTS:
        entry = curve[str(workers)]
        table.add_row(workers, entry["dispatch"], entry["requests_per_sec"],
                      entry["us_per_request"])
    table.add_note(
        f"{requests} single-gets per point over {total} records; "
        f"reader pool {POOL_SIZE} per worker."
    )
    report("server_worker_scaling", table)


def _zipfish_indices(total: int, seed: int, hot_fraction: float = 0.05,
                     hot_weight: float = 0.8) -> list:
    """A skewed access mix: *hot_weight* of requests hit the hottest
    *hot_fraction* of records (approximating the zipf-shaped access
    patterns real serving tiers see), the rest spread uniformly."""
    rng = random.Random(seed)
    hot_span = max(1, int(total * hot_fraction))
    return [
        rng.randrange(hot_span) if rng.random() < hot_weight
        else rng.randrange(total)
        for _ in range(REQUESTS_PER_CLIENT)
    ]


def test_hot_set_access_mix(server, served_library, serving_corpus, report,
                            results_dir):
    """Non-uniform (zipf-ish) load: 80% of gets hit the hottest 5% of records.

    The skew concentrates reads on a few blocks, so the LRU block cache
    should absorb most of the hot traffic — the measurement records the
    cache hit delta alongside the latency, merged into ``BENCH_server.json``
    under ``"hot_set_mix"``.  Parity- and completion-gated like the uniform
    loopback test; timings are recorded, never asserted.
    """
    total = len(serving_corpus)
    with CorpusLibrary.open(served_library) as direct:
        expected_all = list(direct.iter_all())
    per_client_indices = [_zipfish_indices(total, seed=500 + slot)
                          for slot in range(CLIENTS)]

    with CorpusClient(server.url) as observer:
        cache_before = observer.stats()["cache"]

    results, seconds = _fan_out(
        server.url,
        lambda client, slot: [client.get(i) for i in per_client_indices[slot]],
    )
    for slot in range(CLIENTS):
        assert results[slot] == [expected_all[i] for i in per_client_indices[slot]]
    requests = CLIENTS * REQUESTS_PER_CLIENT

    with CorpusClient(server.url) as observer:
        cache_after = observer.stats()["cache"]
    delta_hits = cache_after["hits"] - cache_before["hits"]
    delta_misses = cache_after["misses"] - cache_before["misses"]
    assert delta_hits + delta_misses > 0, "the mix never touched the cache"

    entry = _mode(seconds, requests, requests)
    entry["hot_fraction"] = 0.05
    entry["hot_weight"] = 0.8
    entry["cache_delta"] = {"hits": delta_hits, "misses": delta_misses}
    text = _merge_bench_payload({"hot_set_mix": entry})
    (results_dir / "BENCH_server.json").write_text(text, encoding="utf-8")

    table = ResultTable(
        title=f"Hot-set access mix: {CLIENTS} clients, 80% of gets on the "
              "hottest 5% of records",
        columns=["requests", "us/request", "cache hits", "cache misses"],
    )
    table.add_row(requests, entry["us_per_request"], delta_hits, delta_misses)
    table.add_note(
        "Skew concentrates reads on a few blocks; the LRU block cache "
        "absorbs the hot traffic (hit delta above)."
    )
    report("server_hot_set_mix", table)


def _raw_get(url: str, target: str) -> tuple:
    """(status, body bytes) of one bare GET — no trace headers, no encoding."""
    parsed = urlparse(url)
    conn = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=30.0)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def test_telemetry_overhead_parity(served_library, serving_corpus, report,
                                   results_dir):
    """Instrumented vs ``ZSMILES_TELEMETRY=off``: byte-parity, timed, ungated.

    Two single-worker fleets over the same library — one with telemetry on,
    one with the kill switch set (fleet workers re-read the environment at
    spawn) — serve the identical probe workload.  The gate is **parity**:
    every single, batch and stream response body is byte-identical across
    the two modes, proving the instrumentation never touches the wire.  The
    per-request timings of both modes are recorded into
    ``BENCH_server.json`` under ``"telemetry_overhead"`` but never asserted.
    """
    total = len(serving_corpus)
    probe_singles = [0, 1, total // 2, total - 1]
    stream_stop = min(total, 256)
    batch_indices = list(range(0, min(total, 64)))

    def run_mode(enabled: bool) -> dict:
        previous = os.environ.get("ZSMILES_TELEMETRY")
        os.environ["ZSMILES_TELEMETRY"] = "on" if enabled else "off"
        try:
            with ServerFleet(served_library, workers=1,
                             readers=POOL_SIZE) as fleet:
                bodies = {}
                for index in probe_singles:
                    bodies[f"single:{index}"] = _raw_get(
                        fleet.url, f"/records/{index}"
                    )
                bodies["stream"] = _raw_get(
                    fleet.url, f"/records?start=0&stop={stream_stop}"
                )
                with CorpusClient(fleet.url, timeout=30.0) as client:
                    batch = client.get_many(batch_indices)
                    start = time.perf_counter()
                    for i in range(REQUESTS_PER_CLIENT):
                        client.get(i % total)
                    seconds = time.perf_counter() - start
                return {"bodies": bodies, "batch": batch, "seconds": seconds}
        finally:
            if previous is None:
                os.environ.pop("ZSMILES_TELEMETRY", None)
            else:
                os.environ["ZSMILES_TELEMETRY"] = previous

    instrumented = run_mode(True)
    disabled = run_mode(False)

    for key, (status, body) in instrumented["bodies"].items():
        assert status == 200, f"{key} failed instrumented: {status}"
        off_status, off_body = disabled["bodies"][key]
        assert off_status == 200, f"{key} failed with telemetry off: {off_status}"
        assert body == off_body, f"{key}: telemetry changed the response bytes"
    assert instrumented["batch"] == disabled["batch"]

    entry = {
        "scale": os.environ.get("ZSMILES_BENCH_SCALE", "benchmark"),
        "requests": REQUESTS_PER_CLIENT,
        "instrumented": _mode(instrumented["seconds"], REQUESTS_PER_CLIENT,
                              REQUESTS_PER_CLIENT),
        "disabled": _mode(disabled["seconds"], REQUESTS_PER_CLIENT,
                          REQUESTS_PER_CLIENT),
        "parity": "byte-identical",
    }
    text = _merge_bench_payload({"telemetry_overhead": entry})
    (results_dir / "BENCH_server.json").write_text(text, encoding="utf-8")

    table = ResultTable(
        title="Telemetry overhead: instrumented vs ZSMILES_TELEMETRY=off",
        columns=["mode", "requests", "us/request"],
    )
    table.add_row("instrumented", REQUESTS_PER_CLIENT,
                  entry["instrumented"]["us_per_request"])
    table.add_row("disabled", REQUESTS_PER_CLIENT,
                  entry["disabled"]["us_per_request"])
    table.add_note(
        "Gate is byte-parity on single/batch/stream bodies; timings are "
        "recorded, never asserted."
    )
    report("server_telemetry_overhead", table)


def test_remote_reads_match_local_under_sustained_load(server, served_library):
    """A long alternating workload stays byte-correct on one keep-alive socket."""
    with CorpusLibrary.open(served_library) as direct:
        with CorpusClient(server.url) as client:
            rng = random.Random(7)
            for _ in range(30):
                index = rng.randrange(len(direct))
                assert client.get(index) == direct.get(index)
                batch = [rng.randrange(len(direct)) for _ in range(16)]
                assert client.get_many(batch) == direct.get_many(batch)
