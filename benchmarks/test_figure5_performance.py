"""Benchmark: regenerate Figure 5 (C++ vs CUDA execution time across Lmax).

Paper findings: both implementations are essentially flat in Lmax because the
kernels are memory-bound; the CUDA version is ≈7× faster in compression
(Figure 5a) and ≈2× faster in decompression (Figure 5b).  The CUDA backend is
replaced by the simulated device model described in DESIGN.md; the kernel work
counts come from real executions of the block kernels.
"""

from __future__ import annotations

from repro.experiments.figure5 import LMAX_VALUES, run_figure5
from repro.metrics.figures import figure5_chart


def test_figure5_normalized_execution_times(benchmark, scale, corpus, report, results_dir):
    result = benchmark.pedantic(
        lambda: run_figure5(scale=scale, corpus=corpus, lmax_values=LMAX_VALUES),
        rounds=1,
        iterations=1,
    )
    for suffix, table in zip(("a_compression", "b_decompression"), result.to_tables()):
        report(f"figure5{suffix}", table)
    for operation in ("compression", "decompression"):
        series = {
            name: [value for _, value in points]
            for name, points in result.normalized_series(operation).items()
        }
        chart = figure5_chart(operation, LMAX_VALUES, series).render()
        print("\n" + chart)
        (results_dir / f"figure5_{operation}_chart.txt").write_text(chart + "\n", encoding="utf-8")

    speedups = result.speedups()
    # Paper: compression ~7x, decompression ~2x; both flat in Lmax.
    assert 4.0 < speedups["compression"] < 11.0
    assert 1.3 < speedups["decompression"] < 3.5
    assert speedups["compression"] > speedups["decompression"]
    assert result.flat_in_lmax("compression")
    assert result.flat_in_lmax("decompression")
