"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each ablation isolates one design decision of ZSMILES and quantifies its
effect on the compression ratio of the MIXED corpus:

* optimal shortest-path parsing vs greedy longest-match,
* innermost vs outermost ring-identifier preference,
* marginal-savings vs paper-literal coverage ranking in Algorithm 1,
* dictionary size ``T`` sweep,
* maximum pattern length ``Lmax`` sweep.
"""

from __future__ import annotations

from repro.core.codec import ZSmilesCodec
from repro.core.compressor import ParseStrategy
from repro.metrics.reporting import ResultTable


def _train(corpus, scale, **kwargs) -> ZSmilesCodec:
    return ZSmilesCodec.train(corpus[: scale.training_size], **kwargs)


def test_ablation_optimal_vs_greedy_parse(benchmark, corpus, scale, shared_codec, report):
    evaluation = corpus[: scale.evaluation_size]

    def run():
        greedy_codec = ZSmilesCodec(
            shared_codec.table, pipeline=shared_codec.pipeline, strategy=ParseStrategy.GREEDY
        )
        return shared_codec.compression_ratio(evaluation), greedy_codec.compression_ratio(evaluation)

    optimal_ratio, greedy_ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(
        title="Ablation — per-line parsing strategy",
        columns=["Strategy", "Compression Ratio"],
    )
    table.add_row("Optimal shortest path (paper)", optimal_ratio)
    table.add_row("Greedy longest match", greedy_ratio)
    report("ablation_parse_strategy", table)
    assert optimal_ratio <= greedy_ratio


def test_ablation_ring_policy(benchmark, corpus, scale, report):
    evaluation = corpus[: scale.evaluation_size]

    def run():
        ratios = {}
        for policy in ("innermost", "outermost"):
            codec = _train(corpus, scale, preprocessing=True, ring_policy=policy, lmax=8)
            ratios[policy] = codec.compression_ratio(evaluation)
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(
        title="Ablation — ring-identifier reuse preference (paper chooses innermost)",
        columns=["Policy", "Compression Ratio"],
    )
    for policy, ratio in ratios.items():
        table.add_row(policy, ratio)
    report("ablation_ring_policy", table)
    # Both policies must be close; innermost (the paper's choice) must not be worse
    # by more than a small margin.
    assert ratios["innermost"] <= ratios["outermost"] + 0.01


def test_ablation_rank_mode(benchmark, corpus, scale, report):
    evaluation = corpus[: scale.evaluation_size]

    def run():
        ratios = {}
        for mode in ("savings", "coverage"):
            codec = _train(corpus, scale, preprocessing=True, lmax=8, rank_mode=mode)
            ratios[mode] = codec.compression_ratio(evaluation)
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(
        title="Ablation — Algorithm 1 rank formulation",
        columns=["Rank mode", "Compression Ratio"],
    )
    table.add_row("savings (library default)", ratios["savings"])
    table.add_row("coverage (paper Equation 1)", ratios["coverage"])
    report("ablation_rank_mode", table)
    # The marginal-savings formulation is why the library reaches the paper's regime.
    assert ratios["savings"] <= ratios["coverage"]


def test_ablation_dictionary_size(benchmark, corpus, scale, report):
    evaluation = corpus[: scale.evaluation_size]
    sizes = (16, 48, 96, None)  # None = full symbol capacity

    def run():
        out = {}
        for size in sizes:
            codec = _train(corpus, scale, preprocessing=True, lmax=8, max_entries=size)
            out[size] = codec.compression_ratio(evaluation)
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(
        title="Ablation — dictionary size T",
        columns=["T (trained entries)", "Compression Ratio"],
    )
    for size in sizes:
        table.add_row("full capacity" if size is None else size, ratios[size])
    report("ablation_dictionary_size", table)
    # More entries never hurt (ratios non-increasing in T).
    ordered = [ratios[s] for s in sizes]
    assert all(a >= b - 0.005 for a, b in zip(ordered, ordered[1:]))


def test_ablation_lmax_ratio(benchmark, corpus, scale, report):
    evaluation = corpus[: scale.evaluation_size]
    lmax_values = (4, 8, 12)

    def run():
        return {
            lmax: _train(corpus, scale, preprocessing=True, lmax=lmax).compression_ratio(evaluation)
            for lmax in lmax_values
        }

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(
        title="Ablation — maximum pattern length Lmax (compression-ratio view of Figure 5's sweep)",
        columns=["Lmax", "Compression Ratio"],
    )
    for lmax in lmax_values:
        table.add_row(lmax, ratios[lmax])
    report("ablation_lmax_ratio", table)
    assert ratios[8] <= ratios[4] + 0.01
