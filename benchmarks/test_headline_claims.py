"""Benchmark: the paper's headline claims (abstract / conclusions).

* "compress ×1.13 more than state of the art in similar scenarios"
* "up to 0.29 compression ratio"
* "a potential speedup of 7×" (compression) and 2× (decompression) for CUDA

This harness derives each claim from the corresponding experiment and records
the paper-vs-measured table consumed by EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.summary import run_summary


def test_headline_claims(benchmark, scale, report):
    summary = benchmark.pedantic(lambda: run_summary(scale=scale), rounds=1, iterations=1)
    report("headline_claims", summary.claims.to_table())

    claims = summary.claims
    # Best ratio lands in the paper's regime (0.29 in the paper; the synthetic
    # corpus is less redundant, see EXPERIMENTS.md).
    assert 0.25 < claims.best_ratio < 0.5
    # ZSMILES is competitive with FSST under the paper's like-for-like setting.
    assert claims.zsmiles_vs_fsst > 0.8
    # Simulated CUDA speedups match the paper's 7x / 2x shape.
    assert 4.0 < claims.compression_speedup < 11.0
    assert 1.3 < claims.decompression_speedup < 3.5
    # And the ablation shape behind the 0.29 claim holds.
    assert summary.table1.preprocessing_always_helps()
