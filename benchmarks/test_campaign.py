"""GA campaign throughput: generations/sec over local and HTTP serving tiers.

One campaign runs over a local packed library and an identically-configured
twin runs over an HTTP replica pair (``open_reader("http://a,http://b")``).
The measurements — generations/sec, scores/sec, records written per
generation — land in ``BENCH_campaign.json`` (repo root, plus a copy under
``benchmarks/results/``).

Like every benchmark here, assertions gate on *parity* (the HTTP campaign
produces byte-identical generation libraries, stats and top-hits to the
local one) and on *completion* (both reach the configured generation
target) — never on timings — so CI's ``campaign-smoke`` job runs this at
``ZSMILES_BENCH_SCALE=smoke`` as a regression tripwire without flaking on
runner speed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.campaign import CampaignConfig, CampaignDriver
from repro.engine import ZSmilesEngine
from repro.library import pack_library
from repro.metrics.reporting import ResultTable
from repro.server import BackgroundServer

#: Machine-readable campaign-throughput record (committed perf trajectory).
BENCH_CAMPAIGN_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

#: (population, generations, immigrants) per benchmark scale.
SCALE_PRESETS = {
    "smoke": (16, 3, 4),
    "benchmark": (48, 5, 8),
    "paper": (64, 8, 16),
}


def _preset() -> tuple:
    name = os.environ.get("ZSMILES_BENCH_SCALE", "benchmark").lower()
    return SCALE_PRESETS.get(name, SCALE_PRESETS["benchmark"])


@pytest.fixture(scope="module")
def campaign_source(tmp_path_factory, shared_codec, corpus):
    """The seed corpus as a packed library (what a serving tier mounts)."""
    directory = tmp_path_factory.mktemp("campaign_bench") / "corpus.library"
    seed_corpus = corpus[: min(1_000, len(corpus))]
    with ZSmilesEngine.from_codec(shared_codec, backend="kernel") as engine:
        pack_library(directory, seed_corpus, engine, shards=2, records_per_block=64)
    return directory


def _campaign_metrics(state) -> dict:
    """Per-generation observability + throughput rates from one finished run."""
    per_generation = [stats.as_dict() for stats in state.generations]
    elapsed = sum(stats.elapsed_seconds for stats in state.generations)
    elapsed = max(elapsed, 1e-9)
    scored = sum(stats.scored for stats in state.generations)
    written = sum(stats.records_written for stats in state.generations)
    return {
        "generations": len(state.generations),
        "elapsed_seconds": round(elapsed, 6),
        "generations_per_sec": round(len(state.generations) / elapsed, 3),
        "scored": scored,
        "scores_per_sec": round(scored / elapsed, 1),
        "records_written": written,
        "records_written_per_generation": [
            stats.records_written for stats in state.generations
        ],
        "per_generation": per_generation,
    }


def _deterministic_surface(workdir: Path, state) -> tuple:
    """Everything two equal campaigns must agree on, transport aside."""
    shard_bytes = {
        p.relative_to(workdir).as_posix(): p.read_bytes()
        for p in sorted(workdir.rglob("*.zss"))
    }
    composed = (workdir / state.composed_manifest).read_bytes()
    stats = [g.deterministic_dict() for g in state.generations]
    return stats, composed, shard_bytes


def test_campaign_throughput_local_and_http(campaign_source, report, results_dir):
    population, generations, immigrants = _preset()
    config = CampaignConfig(
        population_size=population,
        generations=generations,
        seed=29,
        immigrants=immigrants,
        score_jobs=4,
    )
    base = campaign_source.parent

    # -- local tier ------------------------------------------------------ #
    with CampaignDriver.start(campaign_source, base / "local", config) as driver:
        local_state = driver.run()
        local_hits = driver.top_hits(10)

    # -- HTTP replica tier ---------------------------------------------- #
    with BackgroundServer(campaign_source, readers=4) as a:
        with BackgroundServer(campaign_source, readers=4) as b:
            replicas = f"{a.url},{b.url}"
            with CampaignDriver.start(replicas, base / "http", config) as driver:
                http_state = driver.run()
                http_hits = driver.top_hits(10)

    # -- completion + parity gates (never timings) ----------------------- #
    assert local_state.generation == generations
    assert http_state.generation == generations
    local_surface = _deterministic_surface(base / "local", local_state)
    http_surface = _deterministic_surface(base / "http", http_state)
    assert http_surface[0] == local_surface[0], "per-generation stats diverged"
    assert http_surface[1] == local_surface[1], "composed manifests diverged"
    assert http_surface[2] == local_surface[2], "generation shards diverged"
    assert http_hits == local_hits

    payload = {
        "benchmark": "campaign_throughput",
        "scale": os.environ.get("ZSMILES_BENCH_SCALE", "benchmark"),
        "population_size": population,
        "generations_target": generations,
        "immigrants": immigrants,
        "seed": config.seed,
        "local": _campaign_metrics(local_state),
        "http": _campaign_metrics(http_state),
        "parity": "byte-identical",
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    BENCH_CAMPAIGN_PATH.write_text(text, encoding="utf-8")
    (results_dir / "BENCH_campaign.json").write_text(text, encoding="utf-8")

    table = ResultTable(
        title=f"GA campaign: {generations} generations of {population} "
              f"(+{immigrants} immigrants/gen)",
        columns=["tier", "gen/s", "scores/s", "records written"],
    )
    for tier in ("local", "http"):
        metrics = payload[tier]
        table.add_row(tier, metrics["generations_per_sec"],
                      metrics["scores_per_sec"], metrics["records_written"])
    table.add_note(
        "HTTP tier samples seeds and immigrants through a 2-replica "
        "failover client; outputs byte-identical to the local tier."
    )
    report("campaign_throughput", table)
