"""Micro-benchmarks: per-record and corpus-level throughput of the codec.

These do not correspond to a specific paper table; they quantify the cost of
the Python implementation (the paper's C++/CUDA numbers are wall-clock on real
hardware) and guard against performance regressions in the hot paths:
per-line compression, per-line decompression, dictionary training and
random-access reads.
"""

from __future__ import annotations

import pytest

from repro.core.codec import ZSmilesCodec
from repro.core.random_access import LineIndex, RandomAccessReader
from repro.core.streaming import compress_file, write_lines
from repro.dictionary.generator import train_dictionary
from repro.preprocess.ring_renumber import renumber_rings


@pytest.fixture(scope="module")
def sample_lines(corpus):
    return corpus[:500]


def test_compress_single_record(benchmark, shared_codec):
    smiles = "CC(C)Cc1ccc(cc1)C(C)C(=O)OC2CCC(CC2)N3CCOCC3"
    compressed = benchmark(shared_codec.compress, smiles)
    assert shared_codec.decompress(compressed) == shared_codec.preprocess(smiles)


def test_decompress_single_record(benchmark, shared_codec):
    smiles = "CC(C)Cc1ccc(cc1)C(C)C(=O)OC2CCC(CC2)N3CCOCC3"
    compressed = shared_codec.compress(smiles)
    restored = benchmark(shared_codec.decompress, compressed)
    assert restored == shared_codec.preprocess(smiles)


def test_compress_corpus_batch(benchmark, shared_codec, sample_lines):
    compressed = benchmark.pedantic(
        shared_codec.compress_many, args=(sample_lines,), rounds=1, iterations=1
    )
    assert len(compressed) == len(sample_lines)


def test_ring_renumbering_throughput(benchmark):
    smiles = "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=C(C=C2)C3=CC=CC=C3"
    out = benchmark(renumber_rings, smiles)
    assert out.count("0") >= 2


def test_dictionary_training(benchmark, corpus, scale):
    sample = corpus[: min(500, scale.training_size)]
    table = benchmark.pedantic(
        lambda: train_dictionary(sample, lmax=8), rounds=1, iterations=1
    )
    assert len(table.trained_entries) > 0


def test_random_access_fetch(benchmark, shared_codec, sample_lines, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench_ra")
    smi = directory / "lib.smi"
    zsmi = directory / "lib.zsmi"
    write_lines(smi, sample_lines)
    compress_file(shared_codec, smi, zsmi)
    index = LineIndex.build(zsmi)
    reader = RandomAccessReader(zsmi, index=index, codec=shared_codec)
    reader.open()
    try:
        value = benchmark(reader.line, len(sample_lines) // 2)
        assert value == shared_codec.preprocess(sample_lines[len(sample_lines) // 2])
    finally:
        reader.close()


def test_parallel_codec_batch(benchmark, shared_codec, sample_lines):
    """Process-pool backend on a batch (falls back to serial under the threshold)."""
    from repro.parallel.executor import ParallelCodec

    parallel = ParallelCodec(shared_codec, workers=2, chunk_size=128, serial_threshold=0)
    compressed = benchmark.pedantic(
        parallel.compress_many, args=(sample_lines,), rounds=1, iterations=1
    )
    assert len(compressed) == len(sample_lines)
