"""Micro-benchmarks: per-record and corpus-level throughput of the codec.

These do not correspond to a specific paper table; they quantify the cost of
the Python implementation (the paper's C++/CUDA numbers are wall-clock on real
hardware) and guard against performance regressions in the hot paths:
per-line compression, per-line decompression, dictionary training and
random-access reads.

``test_codec_kernel_vs_reference`` additionally records the flat-array
kernel's batch throughput against the reference per-line path in
``BENCH_codec.json`` (repo root, plus a copy under ``benchmarks/results/``) —
the machine-readable perf trajectory of the codec hot loop.  It asserts byte
parity, never timings, so CI can run it at smoke scale without flaking.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.codec import ZSmilesCodec
from repro.core.random_access import LineIndex, RandomAccessReader
from repro.core.streaming import compress_file, write_lines
from repro.dictionary.generator import train_dictionary
from repro.engine import ZSmilesEngine
from repro.preprocess.ring_renumber import renumber_rings

#: Machine-readable codec-throughput record (committed perf trajectory).
BENCH_CODEC_PATH = Path(__file__).resolve().parent.parent / "BENCH_codec.json"


@pytest.fixture(scope="module")
def sample_lines(corpus):
    return corpus[:500]


def test_compress_single_record(benchmark, shared_codec):
    smiles = "CC(C)Cc1ccc(cc1)C(C)C(=O)OC2CCC(CC2)N3CCOCC3"
    compressed = benchmark(shared_codec.compress, smiles)
    assert shared_codec.decompress(compressed) == shared_codec.preprocess(smiles)


def test_decompress_single_record(benchmark, shared_codec):
    smiles = "CC(C)Cc1ccc(cc1)C(C)C(=O)OC2CCC(CC2)N3CCOCC3"
    compressed = shared_codec.compress(smiles)
    restored = benchmark(shared_codec.decompress, compressed)
    assert restored == shared_codec.preprocess(smiles)


def test_compress_corpus_batch(benchmark, shared_codec, sample_lines):
    compressed = benchmark.pedantic(
        shared_codec.compress_many, args=(sample_lines,), rounds=1, iterations=1
    )
    assert len(compressed) == len(sample_lines)


def test_ring_renumbering_throughput(benchmark):
    smiles = "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=C(C=C2)C3=CC=CC=C3"
    out = benchmark(renumber_rings, smiles)
    assert out.count("0") >= 2


def test_dictionary_training(benchmark, corpus, scale):
    sample = corpus[: min(500, scale.training_size)]
    table = benchmark.pedantic(
        lambda: train_dictionary(sample, lmax=8), rounds=1, iterations=1
    )
    assert len(table.trained_entries) > 0


def test_random_access_fetch(benchmark, shared_codec, sample_lines, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench_ra")
    smi = directory / "lib.smi"
    zsmi = directory / "lib.zsmi"
    write_lines(smi, sample_lines)
    compress_file(shared_codec, smi, zsmi)
    index = LineIndex.build(zsmi)
    reader = RandomAccessReader(zsmi, index=index, codec=shared_codec)
    reader.open()
    try:
        value = benchmark(reader.line, len(sample_lines) // 2)
        assert value == shared_codec.preprocess(sample_lines[len(sample_lines) // 2])
    finally:
        reader.close()


def _throughput(seconds: float, lines: int, input_bytes: int) -> dict:
    """lines/sec and MB/sec for one timed pass (guarding zero clocks)."""
    seconds = max(seconds, 1e-9)
    return {
        "seconds": round(seconds, 6),
        "lines_per_sec": round(lines / seconds, 1),
        "mb_per_sec": round(input_bytes / seconds / 1e6, 3),
    }


def test_codec_kernel_vs_reference(shared_codec, corpus, scale, results_dir):
    """Batch compression/decompression: flat-array kernel vs reference oracle.

    Asserts byte parity (the kernel contract) and writes ``BENCH_codec.json``;
    timings are recorded, never gated, so the test is CI-safe at any scale.
    """
    sample = corpus[: min(2000, len(corpus))]
    input_bytes = sum(len(s) + 1 for s in sample)
    with ZSmilesEngine.from_codec(shared_codec) as engine:
        reference = engine.backend("serial")
        kernel = engine.backend("kernel")
        # Warm both paths (automaton build, caches) outside the timed region.
        warm = sample[:32]
        reference.compress_batch(warm)
        kernel.compress_batch(warm)

        start = time.perf_counter()
        ref_compressed = reference.compress_batch(sample)
        ref_compress_s = time.perf_counter() - start

        start = time.perf_counter()
        kernel_compressed = kernel.compress_batch(sample)
        kernel_compress_s = time.perf_counter() - start

        assert kernel_compressed.records == ref_compressed.records
        assert (
            kernel_compressed.stats.matches,
            kernel_compressed.stats.escapes,
        ) == (ref_compressed.stats.matches, ref_compressed.stats.escapes)

        compressed = ref_compressed.records
        compressed_bytes = sum(len(s) + 1 for s in compressed)

        start = time.perf_counter()
        ref_restored = reference.decompress_batch(compressed)
        ref_decompress_s = time.perf_counter() - start

        start = time.perf_counter()
        kernel_restored = kernel.decompress_batch(compressed)
        kernel_decompress_s = time.perf_counter() - start

        assert kernel_restored.records == ref_restored.records

    payload = {
        "benchmark": "codec_block_kernel_vs_reference",
        "scale": os.environ.get("ZSMILES_BENCH_SCALE", "benchmark"),
        "lines": len(sample),
        "input_bytes": input_bytes,
        "compressed_bytes": compressed_bytes,
        "compress": {
            "reference": _throughput(ref_compress_s, len(sample), input_bytes),
            "kernel": _throughput(kernel_compress_s, len(sample), input_bytes),
            "speedup": round(ref_compress_s / max(kernel_compress_s, 1e-9), 2),
        },
        "decompress": {
            "reference": _throughput(ref_decompress_s, len(sample), compressed_bytes),
            "kernel": _throughput(kernel_decompress_s, len(sample), compressed_bytes),
            "speedup": round(ref_decompress_s / max(kernel_decompress_s, 1e-9), 2),
        },
        "parity": "byte-identical",
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    BENCH_CODEC_PATH.write_text(text, encoding="utf-8")
    (results_dir / "BENCH_codec.json").write_text(text, encoding="utf-8")
    print(
        f"\ncodec kernel vs reference: compress {payload['compress']['speedup']}x, "
        f"decompress {payload['decompress']['speedup']}x "
        f"({len(sample)} lines) -> {BENCH_CODEC_PATH.name}"
    )


def test_parallel_codec_batch(benchmark, shared_codec, sample_lines):
    """Process-pool backend on a batch (falls back to serial under the threshold)."""
    from repro.parallel.executor import ParallelCodec

    parallel = ParallelCodec(shared_codec, workers=2, chunk_size=128, serial_threshold=0)
    compressed = benchmark.pedantic(
        parallel.compress_many, args=(sample_lines,), rounds=1, iterations=1
    )
    assert len(compressed) == len(sample_lines)
