"""Benchmark: regenerate Table I (dictionary optimization ablation).

Paper values (MIXED dataset, 50 000-SMILES training sample):

    preprocessing=yes, printable        0.32
    preprocessing=no,  printable        0.35
    preprocessing=yes, SMILES alphabet  0.29   <- best, the paper's headline
    preprocessing=no,  SMILES alphabet  0.32
    preprocessing=yes, none             0.33
    preprocessing=no,  none             0.35

The benchmark reports the same six rows on the synthetic MIXED corpus and
asserts the two qualitative findings: preprocessing always helps and the
SMILES-alphabet pre-population is the best configuration.
"""

from __future__ import annotations

from repro.dictionary.prepopulation import PrePopulation
from repro.experiments.table1 import run_table1


def test_table1_dictionary_optimizations(benchmark, scale, corpus, report):
    result = benchmark.pedantic(
        lambda: run_table1(scale=scale, corpus=corpus), rounds=1, iterations=1
    )
    report("table1_ablation", result.to_table())

    assert result.preprocessing_always_helps()
    (best_preprocessing, best_policy), best_ratio = result.best()
    assert best_preprocessing is True
    assert best_policy is PrePopulation.SMILES_ALPHABET
    assert 0.25 < best_ratio < 0.5
