"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation called out in DESIGN.md), prints the resulting rows and writes them
to ``benchmarks/results/`` so the numbers can be compared against the paper
(see EXPERIMENTS.md).

Scale is controlled with the ``ZSMILES_BENCH_SCALE`` environment variable:
``smoke`` (tiny, seconds), ``benchmark`` (default) or ``paper`` (50 000-SMILES
corpora; slow in pure Python).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.codec import ZSmilesCodec
from repro.experiments import ExperimentScale, mixed_corpus
from repro.metrics.reporting import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Tag every benchmark as ``slow`` so ``-m "not slow"`` skips the suite.

    The hook receives the whole collected session, so the marker is applied
    by path: exactly the suites under ``benchmarks/`` (including any future
    benchmark added here), never the unit tests.
    """
    here = Path(__file__).parent.resolve()
    for item in items:
        if here in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


def _selected_scale() -> ExperimentScale:
    name = os.environ.get("ZSMILES_BENCH_SCALE", "benchmark").lower()
    presets = {
        "smoke": ExperimentScale.smoke,
        "benchmark": ExperimentScale.benchmark,
        "paper": ExperimentScale.paper,
    }
    if name not in presets:
        raise ValueError(f"ZSMILES_BENCH_SCALE must be one of {sorted(presets)}, got {name!r}")
    return presets[name]()


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Experiment scale shared by every benchmark in the session."""
    return _selected_scale()


@pytest.fixture(scope="session")
def corpus(scale) -> list[str]:
    """The MIXED corpus used by Table I, Figure 4, Figure 5 and the ablations."""
    return mixed_corpus(scale)


@pytest.fixture(scope="session")
def shared_codec(corpus, scale) -> ZSmilesCodec:
    """A codec trained once with the paper's recommended configuration."""
    return ZSmilesCodec.train(corpus[: scale.training_size], preprocessing=True, lmax=8)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir):
    """Callable that prints a ResultTable and persists it under benchmarks/results/."""

    def _report(name: str, table: ResultTable) -> None:
        text = table.to_text()
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _report
