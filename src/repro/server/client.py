"""The blocking corpus client: :class:`CorpusClient`.

A :class:`~http.client.HTTPConnection`-based client that mirrors the
:class:`~repro.store.protocol.RecordReader` surface — ``len()``, ``get``,
``get_many``, ``slice``, ``iter_all``, the ``line``/``lines`` aliases and
context management — so every existing consumer (the screening pipeline,
``datasets.io``, the CLI) reads from a URL exactly the way it reads from a
file.  :func:`repro.store.open_reader` dispatches ``http://`` / ``https://``
sources here, which is how a corpus moves from "local file" to "service"
without a single call-site change.

Error behaviour is typed end to end: the server's JSON envelope is decoded
back into the originating :mod:`repro.errors` class (an out-of-range index
raises :class:`~repro.errors.RandomAccessError`, a malformed request
:class:`~repro.errors.ProtocolError`), and transport failures — connection
refused, the server dying mid-stream — raise
:class:`~repro.errors.ServerConnectionError`.

One connection is kept alive across calls and transparently reopened once
when the server closed it between requests (standard keep-alive race); a
failure on the *retried* request is reported, not retried again.

The client is thread-safe the way the local readers are: unit requests
(``get`` / ``get_many`` / ``stats``) serialize over the shared keep-alive
connection behind a lock — mirroring :class:`ShardReader`'s I/O lock — and
every :meth:`iter_range` stream runs on its own dedicated connection, so a
long (or abandoned) stream never blocks or desynchronizes unit requests
from other threads.
"""

from __future__ import annotations

import http.client
import socket
import threading
import urllib.parse
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ProtocolError, ServerConnectionError, ServerError
from . import protocol

#: Default socket timeout (seconds) for every request.
DEFAULT_TIMEOUT = 30.0
#: Records requested per :meth:`CorpusClient.iter_range` underlying stream read.
DEFAULT_READ_BATCH = 8192


class CorpusClient:
    """Blocking record access to a :class:`~repro.server.app.CorpusServer`.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``http://127.0.0.1:8765``.  A path prefix is
        honoured (``http://host:port/corpus`` requests ``/corpus/records/…``).
    timeout:
        Socket timeout per request, in seconds.
    """

    def __init__(self, base_url: str, timeout: float = DEFAULT_TIMEOUT):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", "https"):
            raise ServerError(f"unsupported URL scheme {parsed.scheme!r} in {base_url!r}")
        if not parsed.hostname:
            raise ServerError(f"no host in server URL {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self._https = parsed.scheme == "https"
        self._host = parsed.hostname
        self._port = parsed.port
        self._prefix = parsed.path.rstrip("/")
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None
        # Serializes request/response cycles on the shared keep-alive
        # connection (http.client forbids interleaving them); the local
        # readers' ShardReader._io_lock plays the same role.
        self._lock = threading.RLock()
        self._total: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _new_connection(self) -> http.client.HTTPConnection:
        factory = (
            http.client.HTTPSConnection if self._https else http.client.HTTPConnection
        )
        return factory(self._host, self._port, timeout=self.timeout)

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = self._new_connection()
        return self._conn

    def _drop_connection(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def _request(
        self,
        method: str,
        target: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> http.client.HTTPResponse:
        """One request over the kept-alive connection, reconnecting once.

        The retry covers exactly the keep-alive race (the server closed an
        idle connection between our requests); a connection that fails twice
        in a row — or refuses outright — is a real transport error.
        """
        target = self._prefix + target
        request_headers = {"Accept": protocol.CONTENT_TYPE_JSON}
        if headers:
            request_headers.update(headers)
        last_error: Optional[Exception] = None
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, target, body=body, headers=request_headers)
                return conn.getresponse()
            except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as exc:
                last_error = exc
                self._drop_connection()
                if attempt:
                    break
        raise ServerConnectionError(
            f"request {method} {target} to {self.base_url} failed: {last_error}"
        ) from last_error

    def _read_body(self, response: http.client.HTTPResponse) -> bytes:
        try:
            return response.read()
        except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as exc:
            self._drop_connection()
            raise ServerConnectionError(
                f"server at {self.base_url} died mid-response: {exc}"
            ) from exc

    def _call(
        self,
        method: str,
        target: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        # The lock spans the whole request/response cycle: another thread
        # starting a request before this response is fully read would tear
        # the keep-alive connection (http.client CannotSendRequest) or, at
        # worst, read the wrong response.
        with self._lock:
            response = self._request(method, target, body=body, headers=headers)
            payload = self._read_body(response)
        if response.status != 200:
            raise protocol.exception_from_envelope(payload, response.status)
        return response.status, payload

    # ------------------------------------------------------------------ #
    # Service endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, object]:
        """The server's liveness payload."""
        _, body = self._call("GET", protocol.ROUTE_HEALTH)
        return self._json_object(body, protocol.ROUTE_HEALTH)

    def stats(self) -> Dict[str, object]:
        """The server's ``/stats`` payload (manifest, cache and counters)."""
        _, body = self._call("GET", protocol.ROUTE_STATS)
        payload = self._json_object(body, protocol.ROUTE_STATS)
        records = payload.get("records")
        if isinstance(records, int):
            self._total = records
        return payload

    @staticmethod
    def _json_object(body: bytes, route: str) -> Dict[str, object]:
        obj = protocol.decode_json(body)
        if not isinstance(obj, dict):
            raise ProtocolError(f"{route} response must be a JSON object")
        return obj

    # ------------------------------------------------------------------ #
    # RecordReader surface
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Record count, fetched from ``/stats`` once and cached."""
        if self._total is None:
            self.stats()
            if self._total is None:
                raise ProtocolError("/stats response carried no integer 'records'")
        return self._total

    def get(self, index: int) -> str:
        """The record at *index* (one ``GET /records/{i}``)."""
        _, body = self._call("GET", f"{protocol.RECORD_PREFIX}{index}")
        return body.decode("utf-8")

    def __getitem__(self, index: int) -> str:
        return self.get(index)

    def get_many(self, indices: Sequence[int]) -> List[str]:
        """Fetch several records in one ``POST /records:batch`` round trip."""
        indices = list(indices)
        if not indices:
            return []
        _, body = self._call(
            "POST",
            protocol.ROUTE_BATCH,
            body=protocol.encode_batch_request(indices),
            headers={"Content-Type": protocol.CONTENT_TYPE_JSON},
        )
        records = body.decode("utf-8").split("\n")
        if records and records[-1] == "":
            records.pop()
        if len(records) != len(indices):
            raise ProtocolError(
                f"batch response carried {len(records)} records for {len(indices)} indices"
            )
        return records

    def sample(self, n: int, seed: Optional[int] = None) -> Tuple[List[int], List[str]]:
        """Uniform random records without replacement (``GET /records:sample``).

        Returns ``(indices, records)`` in ascending index order; a fixed
        *seed* makes the draw deterministic across calls and processes.
        """
        query = {"n": str(n)}
        if seed is not None:
            query["seed"] = str(seed)
        _, body = self._call(
            "GET", f"{protocol.ROUTE_SAMPLE}?{urllib.parse.urlencode(query)}"
        )
        payload = self._json_object(body, protocol.ROUTE_SAMPLE)
        indices = payload.get("indices")
        records = payload.get("records")
        if not isinstance(indices, list) or not isinstance(records, list):
            raise ProtocolError("sample response must carry 'indices' and 'records' lists")
        if len(indices) != len(records):
            raise ProtocolError(
                f"sample response carried {len(records)} records for {len(indices)} indices"
            )
        total = payload.get("total")
        if isinstance(total, int):
            self._total = total
        return [int(i) for i in indices], [str(r) for r in records]

    def iter_range(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[str]:
        """Stream records ``start`` … ``stop`` (exclusive) lazily.

        One ``GET /records?start=&stop=`` request; the server answers with
        chunked transfer encoding and records are yielded as lines arrive,
        so a range larger than memory streams in constant space.  If the
        server dies mid-stream, :class:`ServerConnectionError` is raised at
        the point of interruption.

        Each stream runs on a *dedicated* connection: other threads keep
        using the shared keep-alive socket while a stream is in flight, and
        abandoning the generator mid-way just closes the stream's own
        socket instead of desynchronizing the shared one.
        """
        query = {"start": str(start)}
        if stop is not None:
            query["stop"] = str(stop)
        target = (
            self._prefix
            + f"{protocol.ROUTE_RECORDS}?{urllib.parse.urlencode(query)}"
        )
        conn = self._new_connection()
        try:
            try:
                conn.request("GET", target, headers={"Accept": protocol.CONTENT_TYPE_TEXT})
                response = conn.getresponse()
                if response.status != 200:
                    payload = response.read()
                    raise protocol.exception_from_envelope(payload, response.status)
            except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as exc:
                raise ServerConnectionError(
                    f"request GET {target} to {self.base_url} failed: {exc}"
                ) from exc
            pending = b""
            try:
                while True:
                    # read1, not read: read(n) buffers until n bytes or EOF
                    # and discards the partial tail when the stream is cut,
                    # whereas read1 hands over each transfer chunk as it
                    # arrives — so records received before a mid-stream
                    # death are delivered.
                    chunk = response.read1(DEFAULT_READ_BATCH)
                    if not chunk:
                        break
                    pending += chunk
                    lines = pending.split(b"\n")
                    pending = lines.pop()
                    for line in lines:
                        yield line.decode("utf-8")
            except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as exc:
                raise ServerConnectionError(
                    f"server at {self.base_url} died mid-stream: {exc}"
                ) from exc
            if pending:
                # The protocol terminates every record with \n; a dangling
                # tail means the stream was cut (e.g. the connection dropped
                # cleanly at a chunk boundary before the terminating chunk).
                raise ServerConnectionError(
                    f"record stream from {self.base_url} ended mid-record"
                )
        finally:
            conn.close()

    def slice(self, start: int, stop: int) -> List[str]:
        """Records ``start`` (inclusive) to ``stop`` (exclusive, clamped)."""
        return list(self.iter_range(start, stop))

    def iter_all(self) -> Iterator[str]:
        """Stream every record in order."""
        return self.iter_range(0, None)

    # Compatibility aliases with RandomAccessReader's historical names.
    def line(self, index: int) -> str:
        """Alias of :meth:`get`."""
        return self.get(index)

    def lines(self, indices: Sequence[int]) -> List[str]:
        """Alias of :meth:`get_many`."""
        return self.get_many(indices)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the kept-alive connection (idempotent; calls reopen it)."""
        self._drop_connection()

    def __enter__(self) -> "CorpusClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
