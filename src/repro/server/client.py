"""The blocking corpus client: :class:`CorpusClient`.

A :class:`~http.client.HTTPConnection`-based client that mirrors the
:class:`~repro.store.protocol.RecordReader` surface — ``len()``, ``get``,
``get_many``, ``slice``, ``iter_all``, the ``line``/``lines`` aliases and
context management — so every existing consumer (the screening pipeline,
``datasets.io``, the CLI) reads from a URL exactly the way it reads from a
file.  :func:`repro.store.open_reader` dispatches ``http://`` / ``https://``
sources here, which is how a corpus moves from "local file" to "service"
without a single call-site change.

Error behaviour is typed end to end: the server's JSON envelope is decoded
back into the originating :mod:`repro.errors` class (an out-of-range index
raises :class:`~repro.errors.RandomAccessError`, a malformed request
:class:`~repro.errors.ProtocolError`), and transport failures — connection
refused, the server dying mid-stream — raise
:class:`~repro.errors.ServerConnectionError`.

One connection is kept alive across calls.  The keep-alive race (the server
closed an idle connection between our requests) is handled *before* sending:
the pooled socket is probed for a pending EOF and reopened if stale.  The
single reconnect retry is therefore restricted to the connect/send phase —
once any response byte could have been received, a transport failure raises
:class:`~repro.errors.ServerConnectionError` instead of silently resending
(a resend after partial response receipt would be a duplicate request; for
anything non-idempotent upstream of the library that is corruption, and even
here it double-counts server tallies).

Responses negotiate zlib ``Content-Encoding: deflate`` (see
:mod:`repro.server.protocol`): the client advertises it by default and
transparently inflates batch bodies and range streams.

:class:`FailoverCorpusClient` wraps several replicas of the same corpus
behind the same surface: calls round-robin across the URLs and fail over on
*retryable* outcomes (connection loss, HTTP 503) while fatal, typed errors
(a 404 out-of-range index, a 400 malformed request) propagate immediately —
the typed envelope is what makes that distinction trustworthy.  Range
streams resume on the next replica at the first undelivered record, so a
replica dying mid-stream costs nothing but latency.

The clients are thread-safe the way the local readers are: unit requests
(``get`` / ``get_many`` / ``stats``) serialize over the shared keep-alive
connection behind a lock — mirroring :class:`ShardReader`'s I/O lock — and
every :meth:`iter_range` stream runs on its own dedicated connection, so a
long (or abandoned) stream never blocks or desynchronizes unit requests
from other threads.
"""

from __future__ import annotations

import http.client
import select
import socket
import threading
import urllib.parse
import zlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import ProtocolError, ReproError, ServerConnectionError, ServerError
from ..telemetry import metrics as _metrics
from ..telemetry import tracing as _tracing
from . import protocol
from .retry import RetryPolicy

#: Default socket timeout (seconds) for every request.
DEFAULT_TIMEOUT = 30.0
#: Records requested per :meth:`CorpusClient.iter_range` underlying stream read.
DEFAULT_READ_BATCH = 8192

#: Sentinel for "the stream produced nothing" in the failover resume loop.
_STREAM_DONE = object()


def _chain_first(first: object, rest: Iterator[str]) -> Iterator[str]:
    """Re-attach an eagerly pulled first record to the rest of its stream."""
    if first is _STREAM_DONE:
        return
    yield first  # type: ignore[misc]
    for record in rest:
        yield record


class CorpusClient:
    """Blocking record access to a :class:`~repro.server.app.CorpusServer`.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``http://127.0.0.1:8765``.  A path prefix is
        honoured (``http://host:port/corpus`` requests ``/corpus/records/…``).
    timeout:
        Socket timeout per request, in seconds.
    compress:
        Advertise ``Accept-Encoding: deflate`` so the server may compress
        batch and stream responses (inflated transparently).  Identity
        responses are always accepted either way.
    retry:
        The :class:`~repro.server.retry.RetryPolicy` governing the
        connect/send phase (the only phase where resending is safe).  The
        default matches the historical behaviour: one transparent retry
        with a short backoff.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = DEFAULT_TIMEOUT,
        compress: bool = True,
        retry: Optional[RetryPolicy] = None,
    ):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", "https"):
            raise ServerError(f"unsupported URL scheme {parsed.scheme!r} in {base_url!r}")
        if not parsed.hostname:
            raise ServerError(f"no host in server URL {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self._https = parsed.scheme == "https"
        self._host = parsed.hostname
        self._port = parsed.port
        self._prefix = parsed.path.rstrip("/")
        self.timeout = timeout
        self.compress = compress
        self.retry = retry if retry is not None else RetryPolicy()
        self._conn: Optional[http.client.HTTPConnection] = None
        # Serializes request/response cycles on the shared keep-alive
        # connection (http.client forbids interleaving them); the local
        # readers' ShardReader._io_lock plays the same role.
        self._lock = threading.RLock()
        self._total: Optional[int] = None
        registry = _metrics.get_registry()
        self._metric_requests = registry.counter(
            "zsmiles_client_requests_total",
            "HTTP requests issued by the corpus clients",
        )
        self._metric_reconnects = registry.counter(
            "zsmiles_client_reconnects_total",
            "Keep-alive connections dropped and reopened after a transport failure",
        )
        self._metric_stream_records = registry.counter(
            "zsmiles_client_stream_records_total",
            "Records delivered by range streams (counts partial streams too)",
        )

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _new_connection(self) -> http.client.HTTPConnection:
        factory = (
            http.client.HTTPSConnection if self._https else http.client.HTTPConnection
        )
        return factory(self._host, self._port, timeout=self.timeout)

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is not None and self._conn.sock is not None:
            # Keep-alive staleness probe: a server that closed this idle
            # connection has already sent its FIN, so the socket selects
            # readable with no response outstanding.  Reopening *before*
            # sending keeps that race inside the retry-safe connect phase —
            # the alternative (retrying after a failed read) can resend a
            # request whose first attempt was already processed.
            try:
                readable, _, _ = select.select([self._conn.sock], [], [], 0)
            except (OSError, ValueError):
                readable = [self._conn.sock]
            if readable:
                self._drop_connection()
        if self._conn is None:
            self._conn = self._new_connection()
        return self._conn

    def _drop_connection(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    @staticmethod
    def _stamp_trace(request_headers: Dict[str, str]) -> None:
        """Stamp ``X-Request-Id``/``X-Trace-Id`` from the ambient trace.

        Inside a :func:`repro.telemetry.trace_context` every request of the
        operation (including failover re-sends) carries the same id; outside
        one, each request mints a fresh id so server logs are still joinable
        per request.
        """
        trace_id = _tracing.current_trace_id()
        request_id = trace_id or _tracing.new_trace_id()
        request_headers[_tracing.HEADER_REQUEST_ID] = request_id
        request_headers[_tracing.HEADER_TRACE_ID] = trace_id or request_id

    def _request(
        self,
        method: str,
        target: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> http.client.HTTPResponse:
        """One request over the kept-alive connection.

        The reconnect retries (governed by the client's
        :class:`~repro.server.retry.RetryPolicy`) cover ONLY the
        connect/send phase — before any response byte could have been
        received, when resending is safe.  Once the request is on the wire,
        a failure while reading the response raises
        :class:`ServerConnectionError` immediately: retrying there would
        silently issue the request twice.  The classic keep-alive race is
        handled up front by :meth:`_connection`'s staleness probe, which is
        what makes the narrow retry window sufficient in practice.
        """
        target = self._prefix + target
        request_headers = {"Accept": protocol.CONTENT_TYPE_JSON}
        if self.compress:
            request_headers["Accept-Encoding"] = protocol.CONTENT_ENCODING_DEFLATE
        self._stamp_trace(request_headers)
        if headers:
            request_headers.update(headers)
        self._metric_requests.inc()
        last_error: Optional[Exception] = None
        conn: Optional[http.client.HTTPConnection] = None
        retry_state = self.retry.start()
        while True:
            try:
                conn = self._connection()
                conn.request(method, target, body=body, headers=request_headers)
                break
            except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as exc:
                last_error = exc
                self._drop_connection()
                self._metric_reconnects.inc()
                conn = None
                if not retry_state.wait():
                    break
        if conn is None:
            raise ServerConnectionError(
                f"request {method} {target} to {self.base_url} failed: {last_error}"
            ) from last_error
        try:
            return conn.getresponse()
        except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as exc:
            self._drop_connection()
            raise ServerConnectionError(
                f"server at {self.base_url} died before answering "
                f"{method} {target}: {exc}"
            ) from exc

    def _read_body(self, response: http.client.HTTPResponse) -> bytes:
        try:
            return response.read()
        except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as exc:
            self._drop_connection()
            raise ServerConnectionError(
                f"server at {self.base_url} died mid-response: {exc}"
            ) from exc

    def _call(
        self,
        method: str,
        target: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        # The lock spans the whole request/response cycle: another thread
        # starting a request before this response is fully read would tear
        # the keep-alive connection (http.client CannotSendRequest) or, at
        # worst, read the wrong response.
        with self._lock:
            response = self._request(method, target, body=body, headers=headers)
            payload = self._read_body(response)
        encoding = (response.getheader("Content-Encoding") or "").strip().lower()
        if encoding == protocol.CONTENT_ENCODING_DEFLATE:
            payload = protocol.inflate_body(payload)
        elif encoding and encoding != "identity":
            raise ProtocolError(
                f"server sent unsupported Content-Encoding {encoding!r}"
            )
        if response.status != 200:
            raise protocol.exception_from_envelope(payload, response.status)
        return response.status, payload

    # ------------------------------------------------------------------ #
    # Service endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, object]:
        """The server's liveness payload."""
        _, body = self._call("GET", protocol.ROUTE_HEALTH)
        return self._json_object(body, protocol.ROUTE_HEALTH)

    def stats(self, trace: bool = False) -> Dict[str, object]:
        """The server's ``/stats`` payload (manifest, cache and counters)."""
        target = protocol.ROUTE_STATS + ("?trace=recent" if trace else "")
        _, body = self._call("GET", target)
        payload = self._json_object(body, protocol.ROUTE_STATS)
        records = payload.get("records")
        if isinstance(records, int):
            self._total = records
        return payload

    def metrics(self) -> str:
        """The server's ``GET /metrics`` Prometheus text exposition.

        Against a fleet, whichever worker answers merges every live
        sibling's registry first, so one call sees the whole fleet.
        """
        _, body = self._call("GET", protocol.ROUTE_METRICS)
        return body.decode("utf-8")

    def metrics_snapshot(self) -> Dict[str, object]:
        """The same data as :meth:`metrics`, as the JSON snapshot shape."""
        _, body = self._call("GET", f"{protocol.ROUTE_METRICS}?format=json")
        return self._json_object(body, protocol.ROUTE_METRICS)

    @staticmethod
    def _json_object(body: bytes, route: str) -> Dict[str, object]:
        obj = protocol.decode_json(body)
        if not isinstance(obj, dict):
            raise ProtocolError(f"{route} response must be a JSON object")
        return obj

    # ------------------------------------------------------------------ #
    # RecordReader surface
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Record count, fetched from ``/stats`` once and cached."""
        if self._total is None:
            self.stats()
            if self._total is None:
                raise ProtocolError("/stats response carried no integer 'records'")
        return self._total

    def get(self, index: int) -> str:
        """The record at *index* (one ``GET /records/{i}``)."""
        _, body = self._call("GET", f"{protocol.RECORD_PREFIX}{index}")
        return body.decode("utf-8")

    def __getitem__(self, index: int) -> str:
        return self.get(index)

    def get_many(self, indices: Sequence[int]) -> List[str]:
        """Fetch several records in one ``POST /records:batch`` round trip."""
        indices = list(indices)
        if not indices:
            return []
        _, body = self._call(
            "POST",
            protocol.ROUTE_BATCH,
            body=protocol.encode_batch_request(indices),
            headers={"Content-Type": protocol.CONTENT_TYPE_JSON},
        )
        records = body.decode("utf-8").split("\n")
        if records and records[-1] == "":
            records.pop()
        if len(records) != len(indices):
            raise ProtocolError(
                f"batch response carried {len(records)} records for {len(indices)} indices"
            )
        return records

    def sample(self, n: int, seed: Optional[int] = None) -> Tuple[List[int], List[str]]:
        """Uniform random records without replacement (``GET /records:sample``).

        Returns ``(indices, records)`` in ascending index order; a fixed
        *seed* makes the draw deterministic across calls and processes.
        """
        query = {"n": str(n)}
        if seed is not None:
            query["seed"] = str(seed)
        _, body = self._call(
            "GET", f"{protocol.ROUTE_SAMPLE}?{urllib.parse.urlencode(query)}"
        )
        payload = self._json_object(body, protocol.ROUTE_SAMPLE)
        indices = payload.get("indices")
        records = payload.get("records")
        if not isinstance(indices, list) or not isinstance(records, list):
            raise ProtocolError("sample response must carry 'indices' and 'records' lists")
        if len(indices) != len(records):
            raise ProtocolError(
                f"sample response carried {len(records)} records for {len(indices)} indices"
            )
        total = payload.get("total")
        if isinstance(total, int):
            self._total = total
        return [int(i) for i in indices], [str(r) for r in records]

    def iter_range(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[str]:
        """Stream records ``start`` … ``stop`` (exclusive) lazily.

        One ``GET /records?start=&stop=`` request; the server answers with
        chunked transfer encoding and records are yielded as lines arrive,
        so a range larger than memory streams in constant space.  If the
        server dies or stalls mid-stream, :class:`ServerConnectionError` is
        raised at the point of interruption with its ``delivered``
        attribute set to the number of records already yielded — enough for
        a caller (e.g. the failover client) to resume at
        ``start + delivered`` elsewhere.

        Each stream runs on a *dedicated* connection: other threads keep
        using the shared keep-alive socket while a stream is in flight, and
        abandoning the generator mid-way just closes the stream's own
        socket instead of desynchronizing the shared one.
        """
        query = {"start": str(start)}
        if stop is not None:
            query["stop"] = str(stop)
        target = (
            self._prefix
            + f"{protocol.ROUTE_RECORDS}?{urllib.parse.urlencode(query)}"
        )
        stream_headers = {"Accept": protocol.CONTENT_TYPE_TEXT}
        if self.compress:
            stream_headers["Accept-Encoding"] = protocol.CONTENT_ENCODING_DEFLATE
        self._stamp_trace(stream_headers)
        self._metric_requests.inc()
        delivered = 0
        conn = self._new_connection()
        try:
            try:
                conn.request("GET", target, headers=stream_headers)
                response = conn.getresponse()
                if response.status != 200:
                    payload = response.read()
                    raise protocol.exception_from_envelope(payload, response.status)
            except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as exc:
                raise ServerConnectionError(
                    f"request GET {target} to {self.base_url} failed: {exc}"
                ) from exc
            encoding = (response.getheader("Content-Encoding") or "").strip().lower()
            inflater = None
            if encoding == protocol.CONTENT_ENCODING_DEFLATE:
                inflater = zlib.decompressobj()
            elif encoding and encoding != "identity":
                raise ProtocolError(
                    f"server sent unsupported Content-Encoding {encoding!r}"
                )
            pending = b""
            try:
                while True:
                    # read1, not read: read(n) buffers until n bytes or EOF
                    # and discards the partial tail when the stream is cut,
                    # whereas read1 hands over each transfer chunk as it
                    # arrives — so records received before a mid-stream
                    # death are delivered.  The server sync-flushes the
                    # deflate stream per chunk for the same reason, so the
                    # incremental inflater below preserves the guarantee.
                    chunk = response.read1(DEFAULT_READ_BATCH)
                    if not chunk:
                        break
                    if inflater is not None:
                        try:
                            chunk = inflater.decompress(chunk)
                        except zlib.error as exc:
                            raise ProtocolError(
                                f"corrupt deflate stream from {self.base_url}: {exc}"
                            ) from exc
                        if not chunk:
                            continue
                    pending += chunk
                    lines = pending.split(b"\n")
                    pending = lines.pop()
                    for line in lines:
                        yield line.decode("utf-8")
                        delivered += 1
            except socket.timeout as exc:
                raise ServerConnectionError(
                    f"server at {self.base_url} stalled mid-stream "
                    f"(no data within {self.timeout}s): {exc}",
                    delivered=delivered,
                ) from exc
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                raise ServerConnectionError(
                    f"server at {self.base_url} died mid-stream: {exc}",
                    delivered=delivered,
                ) from exc
            if inflater is not None:
                try:
                    pending += inflater.flush()
                except zlib.error as exc:
                    raise ProtocolError(
                        f"corrupt deflate stream from {self.base_url}: {exc}"
                    ) from exc
                if pending:
                    lines = pending.split(b"\n")
                    pending = lines.pop()
                    for line in lines:
                        yield line.decode("utf-8")
                        delivered += 1
            if pending:
                # The protocol terminates every record with \n; a dangling
                # tail means the stream was cut (e.g. the connection dropped
                # cleanly at a chunk boundary before the terminating chunk).
                raise ServerConnectionError(
                    f"record stream from {self.base_url} ended mid-record",
                    delivered=delivered,
                )
        finally:
            if delivered:
                self._metric_stream_records.inc(delivered)
            conn.close()

    def slice(self, start: int, stop: int) -> List[str]:
        """Records ``start`` (inclusive) to ``stop`` (exclusive, clamped)."""
        return list(self.iter_range(start, stop))

    def iter_all(self) -> Iterator[str]:
        """Stream every record in order."""
        return self.iter_range(0, None)

    # Compatibility aliases with RandomAccessReader's historical names.
    def line(self, index: int) -> str:
        """Alias of :meth:`get`."""
        return self.get(index)

    def lines(self, indices: Sequence[int]) -> List[str]:
        """Alias of :meth:`get_many`."""
        return self.get_many(indices)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the kept-alive connection (idempotent; calls reopen it)."""
        self._drop_connection()

    def __enter__(self) -> "CorpusClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FailoverCorpusClient:
    """Replica-aware reads over several servers of the *same* corpus.

    Presents the same ``RecordReader`` surface as :class:`CorpusClient` but
    routes each call across a set of replica URLs:

    - Calls start at a rotating cursor (client-side round-robin, so load
      spreads across replicas even from a single consumer).
    - A *retryable* failure — :class:`~repro.errors.ServerConnectionError`
      (refused, died mid-response) or
      :class:`~repro.errors.ServerBusyError` (HTTP 503) — fails over to the
      next replica in rotation; see :func:`repro.server.protocol.is_retryable`.
    - A *fatal* typed error (404 out-of-range, 400 malformed, a named
      library error) propagates immediately: every replica serves the same
      corpus, so the next one would answer identically.
    - When one full rotation yields no progress, a
      :class:`~repro.errors.ServerConnectionError` reports the exhaustion
      (chained to the last replica's error).

    Range streams resume: if a replica dies mid-stream the iterator
    continues on the next replica at the first *undelivered* record, so a
    SIGKILLed replica costs latency, never records — and never duplicates.

    Parameters
    ----------
    urls:
        The replica URLs — a sequence, or one comma-separated string
        (``"http://a:8765,http://b:8765"``, the CLI-friendly spelling).
    timeout, compress:
        Forwarded to each per-replica :class:`CorpusClient`.
    retry:
        The :class:`~repro.server.retry.RetryPolicy` governing full
        *rotations*: when every replica fails one pass, the policy decides
        whether (and after what backoff) to sweep the fleet again before
        raising exhaustion.  Per-replica connect retries are separate and
        stay at the per-client default.
    """

    def __init__(
        self,
        urls: Union[str, Sequence[str]],
        timeout: float = DEFAULT_TIMEOUT,
        compress: bool = True,
        retry: Optional[RetryPolicy] = None,
    ):
        replica_urls = protocol.split_replica_urls(urls)
        if not replica_urls:
            raise ServerError(f"no replica URLs in {urls!r}")
        self.urls: Tuple[str, ...] = tuple(replica_urls)
        self.retry = retry if retry is not None else RetryPolicy()
        self._clients = [
            CorpusClient(url, timeout=timeout, compress=compress)
            for url in replica_urls
        ]
        self._cursor = 0
        self._cursor_lock = threading.Lock()
        registry = _metrics.get_registry()
        self._metric_rotations = registry.counter(
            "zsmiles_client_rotations_total",
            "Replica rotations started by the failover client",
        )
        self._metric_failovers = registry.counter(
            "zsmiles_client_failovers_total",
            "Retryable per-replica failures that moved a call to the next replica",
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _rotation(self) -> List[CorpusClient]:
        """The replicas in try-order, starting at (and advancing) the cursor."""
        with self._cursor_lock:
            start = self._cursor
            self._cursor = (self._cursor + 1) % len(self._clients)
        self._metric_rotations.inc()
        n = len(self._clients)
        return [self._clients[(start + i) % n] for i in range(n)]

    def _fan(self, op):
        """Run *op* against replicas in rotation until one answers.

        One rotation tries every replica once; the failover retry policy
        decides how many rotations (with backoff in between) to spend
        before raising exhaustion.
        """
        last_error: Optional[ReproError] = None
        retry_state = self.retry.start()
        # One trace id spans the whole failover chain: every replica tried
        # (and every reconnect inside each replica's client) stamps the same
        # X-Request-Id, so the chain is one trace across all access logs.
        with _tracing.trace_context():
            while True:
                for client in self._rotation():
                    try:
                        return op(client)
                    except ReproError as exc:
                        if not protocol.is_retryable(exc):
                            raise
                        self._metric_failovers.inc()
                        last_error = exc
                if not retry_state.wait():
                    raise ServerConnectionError(
                        f"all {len(self._clients)} replicas failed "
                        f"({', '.join(self.urls)}); last error: {last_error}"
                    ) from last_error

    # ------------------------------------------------------------------ #
    # Service endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, object]:
        """Liveness payload from the first replica that answers."""
        return self._fan(lambda c: c.healthz())

    def stats(self, trace: bool = False) -> Dict[str, object]:
        """``/stats`` payload from the first replica that answers."""
        return self._fan(lambda c: c.stats(trace=trace))

    def metrics(self) -> str:
        """Prometheus exposition from the first replica that answers."""
        return self._fan(lambda c: c.metrics())

    def metrics_snapshot(self) -> Dict[str, object]:
        """JSON metrics snapshot from the first replica that answers."""
        return self._fan(lambda c: c.metrics_snapshot())

    # ------------------------------------------------------------------ #
    # RecordReader surface
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._fan(len)

    def get(self, index: int) -> str:
        """The record at *index*, from the first replica that answers."""
        return self._fan(lambda c: c.get(index))

    def __getitem__(self, index: int) -> str:
        return self.get(index)

    def get_many(self, indices: Sequence[int]) -> List[str]:
        """One batch round trip, failing over between replicas."""
        indices = list(indices)
        if not indices:
            return []
        return self._fan(lambda c: c.get_many(indices))

    def sample(self, n: int, seed: Optional[int] = None) -> Tuple[List[int], List[str]]:
        """Seed-deterministic uniform sample (identical on every replica)."""
        return self._fan(lambda c: c.sample(n, seed))

    def iter_range(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[str]:
        """Stream ``start`` … ``stop``, resuming across replica deaths.

        The stream tracks how many records it has already yielded; when the
        serving replica dies, the next replica picks up at
        ``start + delivered`` — exactly-once delivery without buffering.
        Any progress resets the retry budget (a long stream may outlive
        many replica deaths); only rotations with *zero* progress consume
        it, and exhausting the policy with no progress raises.
        """
        delivered = 0
        retry_state = self.retry.start()
        # The resumed segments share one trace id (the context is entered in
        # the generator frame, so it follows wherever the stream is consumed).
        trace_id = _tracing.current_trace_id() or _tracing.new_trace_id()
        while True:
            progressed = False
            last_error: Optional[ReproError] = None
            for client in self._rotation():
                try:
                    with _tracing.trace_context(trace_id):
                        stream = client.iter_range(start + delivered, stop)
                        first = next(stream, _STREAM_DONE)
                    for record in _chain_first(first, stream):
                        delivered += 1
                        progressed = True
                        yield record
                    return
                except ReproError as exc:
                    if not protocol.is_retryable(exc):
                        raise
                    self._metric_failovers.inc()
                    last_error = exc
                    if progressed:
                        # Partial delivery: restart the rotation with a
                        # fresh failure budget rather than burning the
                        # remaining replicas of this one.
                        break
            if progressed:
                retry_state.reset_progress()
                continue
            if not retry_state.wait():
                raise ServerConnectionError(
                    f"all {len(self._clients)} replicas failed streaming "
                    f"[{start + delivered}, {stop}) ({', '.join(self.urls)}); "
                    f"last error: {last_error}",
                    delivered=delivered,
                ) from last_error

    def slice(self, start: int, stop: int) -> List[str]:
        """Records ``start`` (inclusive) to ``stop`` (exclusive, clamped)."""
        return list(self.iter_range(start, stop))

    def iter_all(self) -> Iterator[str]:
        """Stream every record in order (failover included)."""
        return self.iter_range(0, None)

    # Compatibility aliases with RandomAccessReader's historical names.
    def line(self, index: int) -> str:
        """Alias of :meth:`get`."""
        return self.get(index)

    def lines(self, indices: Sequence[int]) -> List[str]:
        """Alias of :meth:`get_many`."""
        return self.get_many(indices)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close every replica's kept-alive connection (idempotent)."""
        for client in self._clients:
            client.close()

    def __enter__(self) -> "FailoverCorpusClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
