"""The serving tier's unified retry discipline: :class:`RetryPolicy`.

Every component that re-issues work after a transient failure — the sync
and async corpus clients, both failover clients, and the campaign driver's
remote reads — shares this one policy object instead of hand-rolled
``for _attempt in (0, 1)`` loops.  A policy is a frozen value: attempts,
exponential backoff with jitter, and an optional total deadline budget.
Per-call bookkeeping lives in the mutable :class:`RetryState` the policy
mints, so one policy instance can safely govern many concurrent calls.

::

    policy = RetryPolicy(max_attempts=4, base_delay=0.05, deadline=10.0)
    state = policy.start()
    while True:
        try:
            return do_call()
        except ServerConnectionError:
            delay = state.next_delay()
            if delay is None:          # attempts or deadline exhausted
                raise
            time.sleep(delay)
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from ..telemetry import metrics as _metrics

#: Matches the clients' historical behaviour: one transparent retry.
DEFAULT_MAX_ATTEMPTS = 2


def _retry_instruments():
    """The shared retry counters (looked up per call: registration is
    idempotent and the registry may be swapped between calls by tests)."""
    registry = _metrics.get_registry()
    attempts = registry.counter(
        "zsmiles_retry_attempts_total",
        "Retry attempts granted by RetryState.next_delay",
    )
    backoff = registry.counter(
        "zsmiles_retry_backoff_seconds_total",
        "Total backoff sleep handed out by the retry policy",
    )
    exhausted = registry.counter(
        "zsmiles_retry_exhausted_total",
        "Calls that gave up retrying, by reason",
        labels=("reason",),
    )
    return attempts, backoff, exhausted


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (``2`` = the historical
        "retry once" behaviour; ``1`` disables retries).
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Exponential growth factor between consecutive retries.
    max_delay:
        Upper clamp on any single sleep.
    jitter:
        Fraction of the computed delay added as uniform random noise
        (``0.1`` → up to +10%), de-synchronising retry storms across
        clients.  ``0`` makes delays fully deterministic.
    deadline:
        Optional total budget in seconds across all attempts of one call,
        measured from :meth:`start`.  When the budget is spent,
        :meth:`RetryState.next_delay` returns ``None`` even if attempts
        remain.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError("RetryPolicy.max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("RetryPolicy delays must be >= 0")
        if self.multiplier < 1.0:
            raise ReproError("RetryPolicy.multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ReproError("RetryPolicy.jitter must be within [0, 1]")
        if self.deadline is not None and self.deadline <= 0:
            raise ReproError("RetryPolicy.deadline must be positive")

    def start(self) -> "RetryState":
        """Begin one call's retry bookkeeping (starts the deadline clock)."""
        return RetryState(self)

    def delay_for(self, retry_number: int) -> float:
        """The base (jitter-free) delay before the Nth retry (0-based)."""
        return min(self.max_delay, self.base_delay * (self.multiplier ** retry_number))


class RetryState:
    """Mutable per-call companion of a :class:`RetryPolicy`.

    Tracks how many attempts have been consumed and how much of the
    deadline budget remains; hands out the next sleep via
    :meth:`next_delay` (``None`` = stop retrying) or sleeps itself via
    :meth:`wait`.
    """

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self.attempts = 1  # the caller is about to make the first attempt
        self.started = time.monotonic()

    @property
    def exhausted(self) -> bool:
        return self.attempts >= self.policy.max_attempts

    def remaining_budget(self) -> Optional[float]:
        """Seconds left of the deadline, or ``None`` when unbounded."""
        if self.policy.deadline is None:
            return None
        return self.policy.deadline - (time.monotonic() - self.started)

    def next_delay(self) -> Optional[float]:
        """Consume one retry; the sleep before it, or ``None`` to give up.

        ``None`` means either attempts are exhausted or the deadline budget
        cannot cover the computed sleep.
        """
        attempts, backoff, exhausted = _retry_instruments()
        if self.exhausted:
            exhausted.labels("attempts").inc()
            return None
        delay = self.policy.delay_for(self.attempts - 1)
        if self.policy.jitter:
            delay += delay * self.policy.jitter * random.random()
        budget = self.remaining_budget()
        if budget is not None and delay >= budget:
            exhausted.labels("deadline").inc()
            return None
        self.attempts += 1
        attempts.inc()
        backoff.inc(delay)
        return delay

    def wait(self) -> bool:
        """Sleep before the next retry; ``False`` when retries are spent."""
        delay = self.next_delay()
        if delay is None:
            return False
        if delay > 0:
            time.sleep(delay)
        return True

    def reset_progress(self) -> None:
        """Refill attempts after forward progress (streams that advanced)."""
        self.attempts = 1
