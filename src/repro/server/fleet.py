"""Multi-process serving: :class:`ServerFleet` (``zsmiles serve --workers N``).

One process tops out near ~2.8k single-get req/s (``BENCH_server.json``);
"millions of users" needs more *processes*, not a faster loop.  The fleet
tier pre-forks N worker processes, each running the same
:class:`~repro.server.app.CorpusServer` over its own
:class:`~repro.library.AsyncCorpusLibrary` of the same on-disk corpus
(shards are immutable, so N readers share nothing but the page cache), and
presents them behind a single URL two ways:

**SO_REUSEPORT mode** (Linux/BSD, the default where available)
    Every worker binds the *same* host:port with ``SO_REUSEPORT`` and the
    kernel load-balances incoming connections across the listening sockets.
    The parent reserves the port first with a bound-but-*not*-listening
    placeholder socket: binding resolves an ephemeral port 0 up front so
    workers can be told the real port, and a non-listening socket never
    joins the kernel's dispatch group, so the placeholder cannot eat
    connections — there is no window where a connection can be lost to it.

**Proxy fallback mode** (everywhere else, or ``prefer_reuse_port=False``)
    Workers bind loopback ephemeral ports; the parent runs a tiny asyncio
    TCP proxy on the public port that round-robins *connections* across
    worker backends, skipping backends that refuse (a crashed worker) and
    answering with a typed 503 :class:`~repro.errors.ServerBusyError`
    envelope when none accept — the retryable signal the failover clients
    understand.

Worker lifecycle: workers are ``multiprocessing`` *spawn* processes (the
repo's pool idiom — no forked locks, CI-friendly) that report
``("ready", worker_id, port, records)`` or ``("error", worker_id, message)``
on a queue, serve until SIGTERM, then drain in flight requests via
:meth:`CorpusServer.shutdown` and exit 0.  A SIGKILLed worker drops out of
the reuseport dispatch group (or starts refusing proxy connects) and the
survivors keep serving — the crash-tolerance the fleet tests pin.

:func:`run_fleet` is the blocking foreground entry point behind
``zsmiles serve --workers N``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
import threading
import time
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..core.codec import ZSmilesCodec
from ..errors import ServerBusyError, ServerError
from ..library import DEFAULT_POOL_SIZE, DEFAULT_STREAM_BATCH, AsyncCorpusLibrary
from ..store.reader import DEFAULT_CACHE_BLOCKS
from ..telemetry.logs import open_access_log
from . import protocol
from .app import DEFAULT_GRACE, DEFAULT_HOST, CorpusServer

PathLike = Union[str, Path]

#: Seconds the parent waits for every worker to report ready.
DEFAULT_READY_TIMEOUT = 60.0
#: Seconds a SIGTERMed worker gets to drain before SIGKILL.
DEFAULT_STOP_TIMEOUT = 15.0

_PROXY_PIPE_BYTES = 65536


def _reuse_port_supported() -> bool:
    """Whether this platform can share one listening port across processes."""
    return hasattr(socket, "SO_REUSEPORT")


# --------------------------------------------------------------------------- #
# Worker process body (module-level: spawn pickles it by reference)
# --------------------------------------------------------------------------- #
def _worker_main(
    worker_id: int,
    source: str,
    codec: Optional[ZSmilesCodec],
    host: str,
    port: int,
    reuse_port: bool,
    readers: int,
    cache_blocks: int,
    use_mmap: bool,
    stream_batch: int,
    ready_queue: "multiprocessing.Queue",
    peers_queue: "multiprocessing.Queue",
    access_log: Optional[str],
) -> None:
    """One fleet worker: open the library, serve until SIGTERM, drain, exit.

    ``port`` is the shared fleet port in reuseport mode (every worker binds
    it) and ``0`` in proxy mode (each worker reports its own ephemeral port
    back through *ready_queue*).  Each worker also binds a private *admin*
    listener on an ephemeral port (same handler, same routes) and reports it
    in the ready tuple; once the parent has every admin port it posts one
    ``("peers", ports)`` message per worker on *peers_queue* so any worker
    can aggregate ``/stats`` and ``/metrics`` across the whole fleet.
    """
    import functools
    import queue as queue_mod
    import signal

    async def _main() -> None:
        try:
            library = AsyncCorpusLibrary.open(
                source,
                codec=codec,
                pool_size=readers,
                cache_blocks=cache_blocks,
                use_mmap=use_mmap,
            )
        except BaseException as exc:
            ready_queue.put(("error", worker_id, f"{type(exc).__name__}: {exc}"))
            return
        log = open_access_log(access_log, worker_id=worker_id)
        try:
            server = CorpusServer(
                library,
                host,
                port,
                stream_batch=stream_batch,
                reuse_port=reuse_port,
                access_log=log,
                worker_id=worker_id,
            )
            await server.start()
            admin_port = await server.start_admin()
        except BaseException as exc:
            library.close()
            if log is not None:
                log.close()
            ready_queue.put(("error", worker_id, f"{type(exc).__name__}: {exc}"))
            return
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platforms without loop signal handlers

        async def _adopt_peers() -> None:
            # Poll (short blocking gets in the executor) so shutdown never
            # waits on a long queue.get if the parent dies mid-handshake.
            deadline = time.monotonic() + DEFAULT_READY_TIMEOUT
            while time.monotonic() < deadline and not stop.is_set():
                try:
                    message = await loop.run_in_executor(
                        None, functools.partial(peers_queue.get, True, 0.25)
                    )
                except queue_mod.Empty:
                    continue
                if message[0] == "peers":
                    server.peer_admin_ports = list(message[1])
                    ready_queue.put(("peers-ok", worker_id))
                return

        try:
            ready_queue.put(
                ("ready", worker_id, server.port, len(library), admin_port)
            )
            peers_task = asyncio.ensure_future(_adopt_peers())
            await stop.wait()
            peers_task.cancel()
            try:
                await peers_task
            except asyncio.CancelledError:
                pass
            await server.shutdown(grace=DEFAULT_GRACE)
        finally:
            library.close()
            if log is not None:
                log.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover — SIGINT race on teardown
        pass


# --------------------------------------------------------------------------- #
# The fleet
# --------------------------------------------------------------------------- #
class ServerFleet:
    """N pre-fork :class:`CorpusServer` workers behind one URL.

    Use as a context manager (mirrors :class:`BackgroundServer`)::

        with ServerFleet("corpus.library", workers=4) as fleet:
            client = CorpusClient(fleet.url)
            ...

    Attributes of note once started: :attr:`url` (the single public URL),
    :attr:`mode` (``"reuseport"`` or ``"proxy"``), :attr:`records` (corpus
    size as reported by the workers), and :meth:`worker_pids` /
    :meth:`kill_worker` for the crash-tolerance tests.
    """

    def __init__(
        self,
        source: PathLike,
        workers: int = 2,
        codec: Optional[ZSmilesCodec] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        readers: int = DEFAULT_POOL_SIZE,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        use_mmap: bool = False,
        stream_batch: int = DEFAULT_STREAM_BATCH,
        prefer_reuse_port: bool = True,
        ready_timeout: float = DEFAULT_READY_TIMEOUT,
        access_log: Optional[str] = None,
    ):
        if workers < 1:
            raise ServerError(f"workers must be >= 1, got {workers}")
        self._source = str(source)
        self._codec = codec
        self._host = host
        self._port = port
        self._readers = readers
        self._cache_blocks = cache_blocks
        self._use_mmap = use_mmap
        self._stream_batch = stream_batch
        self._ready_timeout = ready_timeout
        self._access_log = access_log
        self.admin_ports: List[int] = []
        self.workers = workers
        self.mode = (
            "reuseport" if prefer_reuse_port and _reuse_port_supported() else "proxy"
        )
        self.records: Optional[int] = None
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._backend_ports: List[int] = []
        self._placeholder: Optional[socket.socket] = None
        self._proxy_thread: Optional[threading.Thread] = None
        self._proxy_loop: Optional[asyncio.AbstractEventLoop] = None
        self._proxy_stop: Optional[asyncio.Event] = None
        self._proxy_ready = threading.Event()
        self._proxy_error: Optional[BaseException] = None
        self._proxy_rr = 0
        self._started = False
        self._stop_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServerFleet":
        if self._started or self._processes:
            raise ServerError("ServerFleet cannot be restarted; create a new instance")
        ctx = multiprocessing.get_context("spawn")
        ready_queue = ctx.Queue()
        peers_queue = ctx.Queue()
        if self.mode == "reuseport":
            # Reserve the port with a bound-but-NOT-listening placeholder:
            # bind resolves port 0 so every worker can be told the real
            # port, and a socket that never listens never joins the
            # kernel's reuseport dispatch group — no connection can be
            # routed to the parent by mistake.
            placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                placeholder.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
                placeholder.bind((self._host, self._port))
            except OSError:
                placeholder.close()
                raise
            self._placeholder = placeholder
            self._port = placeholder.getsockname()[1]
            worker_port, worker_reuse = self._port, True
        else:
            worker_port, worker_reuse = 0, False
        # Everything from the first spawn onward runs under the teardown
        # guard: a failure while spawning worker k (or while awaiting
        # readiness) must terminate and join workers 0..k-1 — and release
        # the placeholder port — instead of leaking live processes behind
        # the raised startup error.
        try:
            for worker_id in range(self.workers):
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        worker_id,
                        self._source,
                        self._codec,
                        self._host,
                        worker_port,
                        worker_reuse,
                        self._readers,
                        self._cache_blocks,
                        self._use_mmap,
                        self._stream_batch,
                        ready_queue,
                        peers_queue,
                        self._access_log,
                    ),
                    name=f"zsmiles-fleet-worker-{worker_id}",
                    daemon=True,
                )
                process.start()
                self._processes.append(process)
            self._await_ready(ready_queue)
            self._share_admin_ports(ready_queue, peers_queue)
            if self.mode == "proxy":
                self._start_proxy()
        except BaseException:
            self._teardown(force=True)
            raise
        self._started = True
        return self

    def _await_ready(self, ready_queue: "multiprocessing.Queue") -> None:
        """Collect one ready/error report per worker, in any order."""
        import queue as queue_mod

        deadline = time.monotonic() + self._ready_timeout
        ports: dict = {}
        admin_ports: dict = {}
        while len(ports) < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServerError(
                    f"fleet startup timed out: {len(ports)}/{self.workers} "
                    f"workers ready after {self._ready_timeout}s"
                )
            try:
                message = ready_queue.get(timeout=min(remaining, 0.5))
            except queue_mod.Empty:
                dead = [p for p in self._processes if not p.is_alive()]
                if dead and len(ports) < self.workers:
                    raise ServerError(
                        f"fleet worker {dead[0].name} exited during startup "
                        f"(exitcode {dead[0].exitcode})"
                    )
                continue
            if message[0] == "error":
                _, worker_id, detail = message
                raise ServerError(f"fleet worker {worker_id} failed to start: {detail}")
            _, worker_id, port, records, admin_port = message
            ports[worker_id] = port
            admin_ports[worker_id] = admin_port
            self.records = records
        self._backend_ports = [ports[i] for i in range(self.workers)]
        self.admin_ports = [admin_ports[i] for i in range(self.workers)]

    def _share_admin_ports(
        self,
        ready_queue: "multiprocessing.Queue",
        peers_queue: "multiprocessing.Queue",
    ) -> None:
        """Post the admin-port roster to every worker and collect the acks.

        Runs only after :meth:`_await_ready` collected all N ready tuples, so
        every message on *ready_queue* from here on is a ``peers-ok`` ack —
        the handshake is deterministic, no races.  A worker that dies before
        acking is surfaced as a startup error (its peers would silently serve
        per-worker numbers otherwise).
        """
        import queue as queue_mod

        for _ in range(self.workers):
            peers_queue.put(("peers", list(self.admin_ports)))
        deadline = time.monotonic() + self._ready_timeout
        acked: set = set()
        while len(acked) < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServerError(
                    f"fleet peers handshake timed out: {len(acked)}/"
                    f"{self.workers} workers acked"
                )
            try:
                message = ready_queue.get(timeout=min(remaining, 0.5))
            except queue_mod.Empty:
                dead = [p for p in self._processes if not p.is_alive()]
                if dead:
                    raise ServerError(
                        f"fleet worker {dead[0].name} exited during the peers "
                        f"handshake (exitcode {dead[0].exitcode})"
                    )
                continue
            if message[0] == "peers-ok":
                acked.add(message[1])

    # -- proxy fallback -------------------------------------------------- #
    def _start_proxy(self) -> None:
        self._proxy_thread = threading.Thread(
            target=lambda: asyncio.run(self._proxy_main()),
            name="zsmiles-fleet-proxy",
            daemon=True,
        )
        self._proxy_thread.start()
        self._proxy_ready.wait()
        if self._proxy_error is not None:
            raise ServerError(
                f"fleet proxy failed to start: {self._proxy_error}"
            ) from self._proxy_error

    async def _proxy_main(self) -> None:
        try:
            server = await asyncio.start_server(
                self._proxy_connection, self._host, self._port
            )
        except BaseException as exc:
            self._proxy_error = exc
            self._proxy_ready.set()
            return
        self._port = server.sockets[0].getsockname()[1]
        self._proxy_loop = asyncio.get_running_loop()
        self._proxy_stop = asyncio.Event()
        self._proxy_ready.set()
        async with server:
            await self._proxy_stop.wait()

    async def _proxy_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Round-robin one client connection onto a live worker backend."""
        n = len(self._backend_ports)
        start = self._proxy_rr
        self._proxy_rr = (start + 1) % n  # single loop: plain int is safe
        backend = None
        for offset in range(n):
            port = self._backend_ports[(start + offset) % n]
            try:
                backend = await asyncio.open_connection(self._host, port)
                break
            except OSError:
                continue  # dead worker: skip to the next backend
        if backend is None:
            # Every backend refused: answer with the typed, *retryable*
            # envelope so failover clients treat the whole fleet as busy.
            status, body = protocol.encode_error(
                ServerBusyError("no live fleet workers")
            )
            head = (
                f"HTTP/1.1 {status} {protocol.STATUS_REASONS[status]}\r\n"
                f"Content-Type: {protocol.CONTENT_TYPE_JSON}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            try:
                writer.write(head.encode("ascii") + body)
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        backend_reader, backend_writer = backend
        await asyncio.gather(
            self._pipe(reader, backend_writer),
            self._pipe(backend_reader, writer),
            return_exceptions=True,
        )
        for w in (backend_writer, writer):
            w.close()

    @staticmethod
    async def _pipe(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                chunk = await reader.read(_PROXY_PIPE_BYTES)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
            if writer.can_write_eof():
                writer.write_eof()
        except (ConnectionError, OSError):
            pass  # one side vanished; the gather tears the pair down

    # ------------------------------------------------------------------ #
    # Introspection / fault injection
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        """The fleet's single public URL (valid once :meth:`start` returned)."""
        return f"http://{self._host}:{self._port}"

    @property
    def port(self) -> int:
        return self._port

    @property
    def backend_ports(self) -> List[int]:
        """Per-worker ports (all equal in reuseport mode)."""
        if self.mode == "reuseport":
            return [self._port] * len(self._processes)
        return list(self._backend_ports)

    def worker_pids(self) -> List[int]:
        return [p.pid for p in self._processes if p.pid is not None]

    def alive_workers(self) -> int:
        return sum(1 for p in self._processes if p.is_alive())

    def kill_worker(self, index: int = 0) -> int:
        """SIGKILL worker *index* (fault injection for the crash tests).

        Returns the killed worker's pid.  The kernel removes its listening
        socket from the reuseport group (or the proxy starts skipping it),
        so new connections only ever reach survivors.
        """
        process = self._processes[index]
        pid = process.pid
        process.kill()
        process.join(timeout=DEFAULT_STOP_TIMEOUT)
        return pid  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Graceful, idempotent shutdown: SIGTERM, drain, join, clean up."""
        with self._stop_lock:
            if not self._processes and self._placeholder is None:
                return
            self._teardown(force=False)

    def _teardown(self, force: bool) -> None:
        for process in self._processes:
            if process.is_alive():
                if force:
                    process.kill()
                else:
                    process.terminate()  # SIGTERM → graceful worker drain
        for process in self._processes:
            process.join(timeout=DEFAULT_STOP_TIMEOUT)
            if process.is_alive():  # pragma: no cover — drain overran
                process.kill()
                process.join(timeout=DEFAULT_STOP_TIMEOUT)
        self._processes = []
        if self._proxy_thread is not None:
            if self._proxy_loop is not None and self._proxy_stop is not None:
                try:
                    self._proxy_loop.call_soon_threadsafe(self._proxy_stop.set)
                except RuntimeError:
                    pass  # loop already closed
            self._proxy_thread.join(timeout=DEFAULT_STOP_TIMEOUT)
            self._proxy_thread = None
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None

    def __enter__(self) -> "ServerFleet":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


# --------------------------------------------------------------------------- #
# Blocking foreground entry point (``zsmiles serve --workers N``)
# --------------------------------------------------------------------------- #
def run_fleet(
    source: PathLike,
    workers: int,
    codec: Optional[ZSmilesCodec] = None,
    host: str = DEFAULT_HOST,
    port: int = 0,
    readers: int = DEFAULT_POOL_SIZE,
    cache_blocks: int = DEFAULT_CACHE_BLOCKS,
    use_mmap: bool = False,
    access_log: Optional[str] = None,
) -> int:
    """Serve *source* with a worker fleet until SIGINT/SIGTERM.

    Prints the same machine-readable first line as
    :func:`repro.server.app.run_server` (``serving <records> records at
    <url> ...``) so callers that parse the URL work against either entry
    point.
    """
    import signal

    fleet = ServerFleet(
        source,
        workers=workers,
        codec=codec,
        host=host,
        port=port,
        readers=readers,
        cache_blocks=cache_blocks,
        use_mmap=use_mmap,
        access_log=access_log,
    )
    fleet.start()
    try:
        print(
            f"serving {fleet.records} records at {fleet.url} "
            f"(workers={workers}, mode={fleet.mode}, pool={readers}, "
            f"cache_blocks={cache_blocks}{', mmap' if use_mmap else ''}) "
            "— Ctrl-C to stop",
            flush=True,
        )
        stop = threading.Event()

        def _signalled(signum, frame):  # noqa: ARG001 — signal signature
            stop.set()

        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _signalled)
            except (ValueError, OSError):  # pragma: no cover — exotic hosts
                pass
        try:
            stop.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        print("shutting down fleet (draining workers)...", flush=True)
    finally:
        fleet.stop()
    return 0
