"""The wire schema shared by the corpus server and its clients.

One module pins everything both sides must agree on, so the server
(:mod:`repro.server.app`) and the blocking client
(:mod:`repro.server.client`) cannot drift apart:

* **Routes** — ``/healthz``, ``/stats``, ``/records/{i}``,
  ``/records:batch`` and the ``/records?start=&stop=`` range stream.
* **Content types** — single records and streamed ranges travel as
  ``text/plain; charset=utf-8`` (one record per line, exactly the ``.smi``
  framing every other layer uses); structured payloads travel as
  ``application/json``.
* **The error envelope** — every non-2xx response is a JSON object
  ``{"error": {"type": ..., "message": ...}}`` whose ``type`` is the
  :mod:`repro.errors` class name.  :func:`status_for_exception` maps
  exceptions to HTTP statuses on the way out;
  :func:`exception_from_envelope` maps envelopes back to the *same*
  exception classes on the way in, so ``client.get(10**9)`` raises the
  :class:`~repro.errors.RandomAccessError` a direct
  :meth:`CorpusLibrary.get` would — the parity the failure-path tests pin.
* **Body limits** — request bodies and batch sizes are bounded so a
  misbehaving client cannot balloon server memory.
* **Content-Encoding negotiation** — ``/records:batch`` and range-stream
  responses travel zlib-deflated when the request advertises
  ``Accept-Encoding: deflate`` (and the identity body clears
  :data:`MIN_COMPRESS_BYTES`); :func:`negotiate_encoding` /
  :func:`inflate_body` keep both sides byte-identical to the identity path.
* **Retry classification** — :func:`is_retryable` is the one policy the
  replica-aware failover clients apply: transport failures
  (:class:`~repro.errors.ServerConnectionError`) and HTTP 503
  (:class:`~repro.errors.ServerBusyError`) mean "try another replica";
  everything else (404, 400, 500) is the *request's* fault or a corpus
  fault every replica shares, so failing over would only repeat it.
"""

from __future__ import annotations

import json
import re
import zlib
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from ..errors import (
    BlockCorruptionError,
    LibraryError,
    ManifestError,
    ProtocolError,
    RandomAccessError,
    ReproError,
    ServerBusyError,
    ServerConnectionError,
    ServerError,
    StoreError,
    StoreFormatError,
)

#: Wire-protocol version reported by ``/healthz`` and ``/stats``.
PROTOCOL_VERSION = 1

# --------------------------------------------------------------------------- #
# Routes
# --------------------------------------------------------------------------- #
ROUTE_HEALTH = "/healthz"
ROUTE_STATS = "/stats"
ROUTE_METRICS = "/metrics"
ROUTE_RECORDS = "/records"
ROUTE_BATCH = "/records:batch"
ROUTE_SAMPLE = "/records:sample"
#: Prefix of the single-record route (``/records/{index}``).
RECORD_PREFIX = ROUTE_RECORDS + "/"

# --------------------------------------------------------------------------- #
# Content types
# --------------------------------------------------------------------------- #
CONTENT_TYPE_JSON = "application/json"
CONTENT_TYPE_TEXT = "text/plain; charset=utf-8"
#: The Prometheus text exposition format version ``GET /metrics`` serves.
CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

#: Hard cap on request body bytes (a batch of ~1M indices fits comfortably).
MAX_BODY_BYTES = 16 * 1024 * 1024
#: Hard cap on indices per ``/records:batch`` request.
MAX_BATCH_INDICES = 100_000
#: Hard cap on records per ``/records:sample`` request.
MAX_SAMPLE_RECORDS = 100_000

#: The one compression coding the protocol negotiates ("deflate" is the zlib
#: format, RFC 9110 §8.4.1.2 — stdlib ``zlib`` on both sides).
CONTENT_ENCODING_DEFLATE = "deflate"
#: Identity bodies below this size are never compressed: the zlib header +
#: dictionary warm-up costs more than it saves on tiny payloads.
MIN_COMPRESS_BYTES = 256
#: zlib level for response bodies (6 is zlib's default speed/ratio balance).
COMPRESS_LEVEL = 6

#: Reason phrases for the statuses the protocol emits.
STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


# --------------------------------------------------------------------------- #
# Error envelope
# --------------------------------------------------------------------------- #
#: Exception classes that may legitimately cross the wire, by envelope name.
#: Order matters for :func:`status_for_exception`: first match wins.
_STATUS_BY_EXCEPTION: Tuple[Tuple[Type[BaseException], int], ...] = (
    (RandomAccessError, 404),  # out-of-range index: the resource does not exist
    (ProtocolError, 400),      # the caller sent something malformed
    (ServerBusyError, 503),    # transient: try again / try another replica
    (ManifestError, 500),      # server-side corpus trouble from here down
    (StoreFormatError, 500),
    (LibraryError, 500),
    (StoreError, 500),
    (ServerError, 500),
    (ReproError, 500),
)

_EXCEPTION_BY_NAME: Dict[str, Type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        RandomAccessError,
        ProtocolError,
        ManifestError,
        BlockCorruptionError,
        StoreFormatError,
        LibraryError,
        StoreError,
        ServerBusyError,
        ServerConnectionError,
        ServerError,
    )
}


def status_for_exception(exc: BaseException) -> int:
    """The HTTP status an exception maps to (500 for anything unexpected)."""
    for cls, status in _STATUS_BY_EXCEPTION:
        if isinstance(exc, cls):
            return status
    return 500


def error_envelope(
    exc: BaseException, status: int, request_id: Optional[str] = None
) -> Dict[str, object]:
    """The JSON-serializable error body for *exc*.

    *request_id* — the id the server adopted from the client's
    ``X-Request-Id`` header (or minted) — is echoed inside the envelope,
    so a failing request can be matched against the server's access log.
    """
    error: Dict[str, object] = {
        "type": type(exc).__name__,
        "message": str(exc),
        "status": status,
    }
    if request_id is not None:
        error["request_id"] = request_id
    return {"error": error}


def encode_error(
    exc: BaseException, request_id: Optional[str] = None
) -> Tuple[int, bytes]:
    """Render *exc* as ``(status, envelope bytes)`` for the response."""
    status = status_for_exception(exc)
    return status, encode_json(error_envelope(exc, status, request_id))


def exception_from_envelope(body: bytes, status: int) -> ReproError:
    """Rebuild the typed exception an error response carries.

    Unknown types (and unparsable bodies) degrade to :class:`ServerError`
    so the client always raises something from the :mod:`repro.errors`
    hierarchy, never a bare ``KeyError`` over a malformed envelope.
    """
    message = f"server returned HTTP {status}"
    name = ""
    request_id: Optional[str] = None
    try:
        obj = json.loads(body.decode("utf-8"))
        error = obj.get("error", {}) if isinstance(obj, dict) else {}
        if isinstance(error, dict):
            name = str(error.get("type", ""))
            message = str(error.get("message", message))
            if isinstance(error.get("request_id"), str):
                request_id = error["request_id"]
    except (ValueError, UnicodeDecodeError):
        pass
    # A 503 whose envelope is untyped (a proxy, a load balancer) is still a
    # "try another replica" signal — degrade to ServerBusyError, not the
    # fatal ServerError, so failover clients keep their retry classification.
    default = ServerBusyError if status == 503 else ServerError
    cls = _EXCEPTION_BY_NAME.get(name, default)
    exc = cls(message)
    # The id the server echoed, for log correlation (None when absent).
    exc.request_id = request_id  # type: ignore[attr-defined]
    return exc


def is_retryable(exc: BaseException) -> bool:
    """Whether a failover client may retry *exc* against another replica.

    Transport failures (:class:`ServerConnectionError`: refused, died
    mid-stream), HTTP 503 (:class:`ServerBusyError`), and block corruption
    (:class:`BlockCorruptionError`) are replica-local — another replica may
    well answer; in the corruption case the other replica holds its own
    copy of the shard bytes, so a degraded read can be healed transparently
    by fail-over.  Everything else (404 out-of-range, 400 malformed, 500
    corpus trouble) would fail identically everywhere, so it propagates
    immediately.
    """
    return isinstance(
        exc, (ServerBusyError, ServerConnectionError, BlockCorruptionError)
    )


# --------------------------------------------------------------------------- #
# Bodies
# --------------------------------------------------------------------------- #
def encode_json(obj: object) -> bytes:
    """Deterministic JSON bytes (sorted keys, compact separators)."""
    return (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def decode_json(body: bytes) -> object:
    """Parse a JSON request/response body, raising :class:`ProtocolError`."""
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"body is not valid JSON: {exc}") from exc


def encode_batch_request(indices: List[int]) -> bytes:
    """The ``/records:batch`` request body for *indices*."""
    return encode_json({"indices": list(indices)})


def parse_batch_request(body: bytes) -> List[int]:
    """Validate a ``/records:batch`` body into a list of indices.

    Raises :class:`ProtocolError` (HTTP 400) for anything malformed: bad
    JSON, a missing or non-list ``indices`` key, non-integer entries (bools
    included), or more than :data:`MAX_BATCH_INDICES` entries.
    """
    obj = decode_json(body)
    if not isinstance(obj, dict) or "indices" not in obj:
        raise ProtocolError('batch body must be a JSON object with an "indices" key')
    indices = obj["indices"]
    if not isinstance(indices, list):
        raise ProtocolError('"indices" must be a JSON array')
    if len(indices) > MAX_BATCH_INDICES:
        raise ProtocolError(
            f"batch of {len(indices)} indices exceeds the {MAX_BATCH_INDICES} cap"
        )
    for value in indices:
        # bool is an int subclass; reject it explicitly.
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProtocolError(f"batch indices must be integers, got {value!r}")
    return list(indices)


def encode_records_body(records: List[str]) -> bytes:
    """A batch/stream payload: one record per line (``.smi`` framing)."""
    return "".join(record + "\n" for record in records).encode("utf-8")


#: The only integer spelling the wire accepts.  Python's ``int()`` is far
#: laxer — it swallows ``"+5"``, ``" 5 "``, ``"1_0"`` and non-ASCII digits —
#: and the laxest inputs used to reach handlers as values no local call could
#: ever produce.  Strict decimal keeps remote inputs inside the local domain.
_STRICT_INT_RE = re.compile(r"^-?[0-9]+$")


def parse_query_int(name: str, raw: str) -> int:
    """Parse one query/path integer strictly, or raise :class:`ProtocolError`.

    Every malformed value — non-numeric, underscore separators, leading
    ``+``, surrounding whitespace, non-ASCII digits — is an HTTP 400
    envelope, never a 500 out of a surprised handler.
    """
    if not _STRICT_INT_RE.match(raw):
        raise ProtocolError(f"{name} must be a decimal integer, got {raw!r}")
    return int(raw)


def parse_range_query(query: Dict[str, str], total: int) -> Tuple[int, int]:
    """Validate ``start``/``stop`` query parameters for the range stream.

    Mirrors the local ``slice`` contract of
    :class:`~repro.store.reader.RecordAccessMixin` exactly, so remote and
    local reads fail (and succeed) identically: a negative ``start`` or an
    inverted range — judged on the *raw* values, before clamping — raises
    :class:`RandomAccessError` (HTTP 404, the class a direct
    ``reader.slice`` raises); ``stop`` then defaults to *total* and is
    clamped to it, so a ``start`` past the end yields an empty stream, not
    an error.  Only non-integer values are :class:`ProtocolError` (HTTP
    400) — those cannot occur locally.
    """
    start = parse_query_int("start", query.get("start", "0"))
    stop = parse_query_int("stop", query["stop"]) if "stop" in query else total
    if start < 0 or stop < start:
        raise RandomAccessError(f"invalid slice [{start}, {stop})")
    return start, min(stop, total)


def parse_sample_query(query: Dict[str, str], total: int) -> Tuple[int, "int | None"]:
    """Validate ``n``/``seed`` query parameters for ``/records:sample``.

    ``n`` is required, must be a non-negative integer, and is capped at
    :data:`MAX_SAMPLE_RECORDS`; it is clamped to *total* (sampling is
    without replacement, so you cannot draw more records than exist).
    ``seed`` is optional; when present it must be an integer and makes the
    draw deterministic.  Every violation is :class:`ProtocolError`
    (HTTP 400) — there is no local slice analogue to mirror.
    """
    if "n" not in query:
        raise ProtocolError('sample requires an "n" query parameter')
    n = parse_query_int("n", query["n"])
    if n < 0:
        raise ProtocolError(f"n must be >= 0, got {n}")
    if n > MAX_SAMPLE_RECORDS:
        raise ProtocolError(
            f"sample of {n} records exceeds the {MAX_SAMPLE_RECORDS} cap"
        )
    seed = None
    if "seed" in query:
        seed = parse_query_int("seed", query["seed"])
    return min(n, total), seed


def sample_payload(indices: List[int], records: List[str], total: int, seed) -> Dict[str, object]:
    """The ``/records:sample`` JSON response body."""
    return {
        "indices": list(indices),
        "records": list(records),
        "total": total,
        "seed": seed,
    }


# --------------------------------------------------------------------------- #
# Content-Encoding negotiation
# --------------------------------------------------------------------------- #
def accepts_deflate(headers: Dict[str, str]) -> bool:
    """Whether a request's ``Accept-Encoding`` admits the deflate coding.

    Understands the comma list and ``;q=`` weights just enough to honour an
    explicit opt-out (``deflate;q=0``); anything unparsable reads as "no",
    so a garbled header degrades to identity, never to a broken body.
    """
    accept = headers.get("accept-encoding", "")
    for part in accept.split(","):
        coding, _, params = part.partition(";")
        if coding.strip().lower() != CONTENT_ENCODING_DEFLATE:
            continue
        q = params.replace(" ", "").lower()
        if q.startswith("q="):
            try:
                return float(q[2:]) > 0.0
            except ValueError:
                return False
        return True
    return False


def negotiate_encoding(
    headers: Dict[str, str], body: bytes
) -> Tuple[bytes, Optional[str]]:
    """Deflate *body* when the request asked for it and it actually pays.

    Returns ``(body, None)`` untouched unless the request advertises
    ``deflate``, the identity body clears :data:`MIN_COMPRESS_BYTES`, and
    compression genuinely shrinks it — a response must never grow because
    the client offered an encoding.
    """
    if len(body) < MIN_COMPRESS_BYTES or not accepts_deflate(headers):
        return body, None
    compressed = zlib.compress(body, COMPRESS_LEVEL)
    if len(compressed) >= len(body):
        return body, None
    return compressed, CONTENT_ENCODING_DEFLATE


def inflate_body(body: bytes, source: str = "response") -> bytes:
    """Reverse :func:`negotiate_encoding` on the client side.

    A body that does not inflate is a malformed response —
    :class:`ProtocolError`, typed like every other wire violation.
    """
    try:
        return zlib.decompress(body)
    except zlib.error as exc:
        raise ProtocolError(f"undecodable deflate {source}: {exc}") from exc


def is_url(path: object) -> bool:
    """Whether *path* is an HTTP(S) URL rather than a filesystem path.

    Checked against the raw string: ``pathlib`` would collapse ``//`` and
    destroy the scheme, so callers must test *before* any ``Path(...)``.
    """
    return isinstance(path, str) and path.startswith(("http://", "https://"))


def split_replica_urls(source: Union[str, Sequence[str]]) -> List[str]:
    """Normalize a replica spec into a list of base URLs.

    Accepts one URL, a comma-separated URL list (the CLI/env spelling:
    ``http://a:1,http://b:2``), or a sequence of URLs.  Returns ``[]`` when
    *source* is not URL-shaped at all, so callers can use it as the
    dispatch test; raises :class:`~repro.errors.ServerError` when a
    *mixed* spec names both URLs and non-URLs (silently dropping entries
    would route reads to fewer replicas than the caller listed).
    """
    if isinstance(source, str):
        parts = [part.strip() for part in source.split(",") if part.strip()]
    elif isinstance(source, (list, tuple)):
        parts = [str(part).strip() for part in source]
    else:
        return []
    if not parts or not any(is_url(part) for part in parts):
        return []
    bad = [part for part in parts if not is_url(part)]
    if bad:
        raise ServerError(f"replica list mixes URLs with non-URLs: {bad!r}")
    return parts
