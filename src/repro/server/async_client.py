"""Asyncio corpus clients: :class:`AsyncCorpusClient` and its failover twin.

The blocking :class:`~repro.server.client.CorpusClient` serializes unit
requests over one keep-alive socket — exactly right for thread-based
consumers, useless inside an event loop.  These clients speak the same
pinned wire schema (:mod:`repro.server.protocol`: routes, typed error
envelope, deflate negotiation) over raw ``asyncio`` streams, so async
consumers (the server's own tests, future async screening drivers) read a
corpus without a thread pool.

Surface notes versus the blocking client:

* ``__len__`` cannot await, so the record count is ``await client.total()``.
* :meth:`iter_range` is an *async* generator with the same
  delivered-before-death guarantee: each transfer chunk is decoded as it
  arrives (sync-flushed deflate included), so records received before a
  mid-stream death are yielded before :class:`ServerConnectionError`.
* :class:`AsyncFailoverCorpusClient` applies the same retry classification
  as the blocking failover client (:func:`repro.server.protocol.is_retryable`)
  and the same stream-resume arithmetic — one policy, two execution models.

Unit requests hold an ``asyncio.Lock`` for their request/response cycle on
the shared connection; streams open a dedicated connection, mirroring the
blocking client's thread-safety contract.
"""

from __future__ import annotations

import asyncio
import urllib.parse
import zlib
from typing import AsyncIterator, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ProtocolError, ReproError, ServerConnectionError, ServerError
from ..telemetry import metrics as _metrics
from ..telemetry import tracing as _tracing
from . import protocol
from .retry import RetryPolicy, RetryState

#: Default per-I/O-operation timeout (seconds).
DEFAULT_TIMEOUT = 30.0
#: Bytes per stream read (mirrors the blocking client's read batch).
DEFAULT_READ_BATCH = 8192

_TRANSPORT_ERRORS = (
    ConnectionError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
    TimeoutError,
    OSError,
    EOFError,
)


async def _await_retry(state: RetryState) -> bool:
    """Async twin of :meth:`RetryState.wait` (no blocking sleep)."""
    delay = state.next_delay()
    if delay is None:
        return False
    if delay > 0:
        await asyncio.sleep(delay)
    return True


class _Response:
    """One parsed response head plus the reader positioned at its body."""

    __slots__ = ("status", "headers", "reader")

    def __init__(self, status: int, headers: Dict[str, str], reader: asyncio.StreamReader):
        self.status = status
        self.headers = headers
        self.reader = reader

    @property
    def chunked(self) -> bool:
        return self.headers.get("transfer-encoding", "").lower() == "chunked"

    @property
    def content_encoding(self) -> str:
        return self.headers.get("content-encoding", "").strip().lower()

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


class AsyncCorpusClient:
    """Asyncio record access to a :class:`~repro.server.app.CorpusServer`.

    Parameters mirror :class:`~repro.server.client.CorpusClient`; use as an
    async context manager::

        async with AsyncCorpusClient(url) as client:
            records = await client.get_many([0, 5, 7])
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = DEFAULT_TIMEOUT,
        compress: bool = True,
        retry: Optional[RetryPolicy] = None,
    ):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http":
            raise ServerError(
                f"AsyncCorpusClient speaks plain http, got {parsed.scheme!r} "
                f"in {base_url!r}"
            )
        if not parsed.hostname:
            raise ServerError(f"no host in server URL {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._prefix = parsed.path.rstrip("/")
        self.timeout = timeout
        self.compress = compress
        self.retry = retry if retry is not None else RetryPolicy()
        self._conn: Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = None
        self._lock = asyncio.Lock()
        self._total: Optional[int] = None
        registry = _metrics.get_registry()
        self._metric_requests = registry.counter(
            "zsmiles_client_requests_total",
            "HTTP requests issued by the corpus clients",
        )
        self._metric_reconnects = registry.counter(
            "zsmiles_client_reconnects_total",
            "Keep-alive connections dropped and reopened after a transport failure",
        )

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    async def _open(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port), self.timeout
        )

    async def _drop_connection(self) -> None:
        if self._conn is not None:
            _, writer = self._conn
            self._conn = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _request_bytes(
        self,
        method: str,
        target: str,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]],
        accept: str,
    ) -> bytes:
        request_headers = {
            "Host": f"{self._host}:{self._port}",
            "Accept": accept,
        }
        if self.compress:
            request_headers["Accept-Encoding"] = protocol.CONTENT_ENCODING_DEFLATE
        # contextvars flow through asyncio tasks, so a trace_context opened
        # by the caller (or the failover wrapper) stamps every send it makes.
        trace_id = _tracing.current_trace_id()
        request_id = trace_id or _tracing.new_trace_id()
        request_headers[_tracing.HEADER_REQUEST_ID] = request_id
        request_headers[_tracing.HEADER_TRACE_ID] = trace_id or request_id
        if headers:
            request_headers.update(headers)
        if body is not None:
            request_headers["Content-Length"] = str(len(body))
        head = f"{method} {self._prefix + target} HTTP/1.1\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in request_headers.items()
        )
        return head.encode("ascii") + b"\r\n" + (body or b"")

    async def _read_head(self, reader: asyncio.StreamReader) -> _Response:
        line = await asyncio.wait_for(reader.readline(), self.timeout)
        if not line:
            raise ConnectionError("server closed the connection before answering")
        try:
            _version, status_text, _reason = line.decode("ascii").split(None, 2)
            status = int(status_text)
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"malformed status line: {line[:80]!r}") from exc
        headers: Dict[str, str] = {}
        while True:
            raw = await asyncio.wait_for(reader.readline(), self.timeout)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return _Response(status, headers, reader)

    async def _read_fixed_body(self, response: _Response) -> bytes:
        length_raw = response.headers.get("content-length")
        if length_raw is None:
            raise ProtocolError("response carries neither Content-Length nor chunks")
        try:
            length = int(length_raw)
        except ValueError as exc:
            raise ProtocolError(f"bad Content-Length {length_raw!r}") from exc
        return await asyncio.wait_for(response.reader.readexactly(length), self.timeout)

    async def _call(
        self,
        method: str,
        target: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        """One unit request/response on the shared keep-alive connection.

        The reconnect retry is restricted to the connect/send phase — the
        same no-silent-duplicates contract as the blocking client; a
        failure once the response may be under way raises
        :class:`ServerConnectionError`.
        """
        payload_out = self._request_bytes(
            method, target, body, headers, protocol.CONTENT_TYPE_JSON
        )
        self._metric_requests.inc()
        async with self._lock:
            last_error: Optional[Exception] = None
            conn = None
            retry_state = self.retry.start()
            while True:
                try:
                    if self._conn is None:
                        self._conn = await self._open()
                    reader, writer = self._conn
                    writer.write(payload_out)
                    await asyncio.wait_for(writer.drain(), self.timeout)
                    conn = self._conn
                    break
                except _TRANSPORT_ERRORS as exc:
                    last_error = exc
                    await self._drop_connection()
                    self._metric_reconnects.inc()
                    if not await _await_retry(retry_state):
                        break
            if conn is None:
                raise ServerConnectionError(
                    f"request {method} {target} to {self.base_url} failed: {last_error}"
                ) from last_error
            reader, _writer = conn
            try:
                response = await self._read_head(reader)
                payload = await self._read_fixed_body(response)
            except _TRANSPORT_ERRORS as exc:
                await self._drop_connection()
                raise ServerConnectionError(
                    f"server at {self.base_url} died before answering "
                    f"{method} {target}: {exc}"
                ) from exc
            if not response.keep_alive:
                await self._drop_connection()
        if response.content_encoding == protocol.CONTENT_ENCODING_DEFLATE:
            payload = protocol.inflate_body(payload)
        elif response.content_encoding and response.content_encoding != "identity":
            raise ProtocolError(
                f"server sent unsupported Content-Encoding "
                f"{response.content_encoding!r}"
            )
        if response.status != 200:
            raise protocol.exception_from_envelope(payload, response.status)
        return response.status, payload

    # ------------------------------------------------------------------ #
    # Service endpoints
    # ------------------------------------------------------------------ #
    async def healthz(self) -> Dict[str, object]:
        """The server's liveness payload."""
        _, body = await self._call("GET", protocol.ROUTE_HEALTH)
        return self._json_object(body, protocol.ROUTE_HEALTH)

    async def stats(self) -> Dict[str, object]:
        """The server's ``/stats`` payload."""
        _, body = await self._call("GET", protocol.ROUTE_STATS)
        payload = self._json_object(body, protocol.ROUTE_STATS)
        records = payload.get("records")
        if isinstance(records, int):
            self._total = records
        return payload

    async def metrics(self) -> str:
        """The server's ``GET /metrics`` Prometheus text exposition."""
        _, body = await self._call("GET", protocol.ROUTE_METRICS)
        return body.decode("utf-8")

    @staticmethod
    def _json_object(body: bytes, route: str) -> Dict[str, object]:
        obj = protocol.decode_json(body)
        if not isinstance(obj, dict):
            raise ProtocolError(f"{route} response must be a JSON object")
        return obj

    # ------------------------------------------------------------------ #
    # Record access
    # ------------------------------------------------------------------ #
    async def total(self) -> int:
        """Record count (``__len__`` cannot await); fetched once, cached."""
        if self._total is None:
            await self.stats()
            if self._total is None:
                raise ProtocolError("/stats response carried no integer 'records'")
        return self._total

    async def get(self, index: int) -> str:
        """The record at *index*."""
        _, body = await self._call("GET", f"{protocol.RECORD_PREFIX}{index}")
        return body.decode("utf-8")

    async def get_many(self, indices: Sequence[int]) -> List[str]:
        """Several records in one batch round trip."""
        indices = list(indices)
        if not indices:
            return []
        _, body = await self._call(
            "POST",
            protocol.ROUTE_BATCH,
            body=protocol.encode_batch_request(indices),
            headers={"Content-Type": protocol.CONTENT_TYPE_JSON},
        )
        records = body.decode("utf-8").split("\n")
        if records and records[-1] == "":
            records.pop()
        if len(records) != len(indices):
            raise ProtocolError(
                f"batch response carried {len(records)} records for "
                f"{len(indices)} indices"
            )
        return records

    async def sample(
        self, n: int, seed: Optional[int] = None
    ) -> Tuple[List[int], List[str]]:
        """Seed-deterministic uniform sample without replacement."""
        query = {"n": str(n)}
        if seed is not None:
            query["seed"] = str(seed)
        _, body = await self._call(
            "GET", f"{protocol.ROUTE_SAMPLE}?{urllib.parse.urlencode(query)}"
        )
        payload = self._json_object(body, protocol.ROUTE_SAMPLE)
        indices = payload.get("indices")
        records = payload.get("records")
        if not isinstance(indices, list) or not isinstance(records, list):
            raise ProtocolError("sample response must carry 'indices' and 'records' lists")
        if len(indices) != len(records):
            raise ProtocolError(
                f"sample response carried {len(records)} records for "
                f"{len(indices)} indices"
            )
        total = payload.get("total")
        if isinstance(total, int):
            self._total = total
        return [int(i) for i in indices], [str(r) for r in records]

    async def iter_range(
        self, start: int = 0, stop: Optional[int] = None
    ) -> AsyncIterator[str]:
        """Stream records ``start`` … ``stop`` on a dedicated connection.

        Chunks (and sync-flushed deflate segments) decode as they arrive,
        so everything the server delivered before dying is yielded before
        the :class:`ServerConnectionError`.
        """
        query = {"start": str(start)}
        if stop is not None:
            query["stop"] = str(stop)
        target = f"{protocol.ROUTE_RECORDS}?{urllib.parse.urlencode(query)}"
        payload_out = self._request_bytes(
            "GET", target, None, None, protocol.CONTENT_TYPE_TEXT
        )
        self._metric_requests.inc()
        try:
            reader, writer = await self._open()
        except _TRANSPORT_ERRORS as exc:
            raise ServerConnectionError(
                f"request GET {target} to {self.base_url} failed: {exc}"
            ) from exc
        try:
            try:
                writer.write(payload_out)
                await asyncio.wait_for(writer.drain(), self.timeout)
                response = await self._read_head(reader)
            except _TRANSPORT_ERRORS as exc:
                raise ServerConnectionError(
                    f"request GET {target} to {self.base_url} failed: {exc}"
                ) from exc
            if response.status != 200:
                payload = await self._read_fixed_body(response)
                if response.content_encoding == protocol.CONTENT_ENCODING_DEFLATE:
                    payload = protocol.inflate_body(payload)
                raise protocol.exception_from_envelope(payload, response.status)
            if not response.chunked:
                raise ProtocolError("range stream response must be chunked")
            inflater = None
            if response.content_encoding == protocol.CONTENT_ENCODING_DEFLATE:
                inflater = zlib.decompressobj()
            elif response.content_encoding and response.content_encoding != "identity":
                raise ProtocolError(
                    f"server sent unsupported Content-Encoding "
                    f"{response.content_encoding!r}"
                )
            pending = b""
            delivered = 0
            try:
                while True:
                    size_line = await asyncio.wait_for(reader.readline(), self.timeout)
                    if not size_line:
                        raise ConnectionError("stream cut before terminating chunk")
                    try:
                        size = int(size_line.strip(), 16)
                    except ValueError as exc:
                        raise ProtocolError(
                            f"malformed chunk size {size_line[:20]!r}"
                        ) from exc
                    if size == 0:
                        await asyncio.wait_for(reader.readline(), self.timeout)
                        break
                    chunk = await asyncio.wait_for(
                        reader.readexactly(size + 2), self.timeout
                    )
                    chunk = chunk[:-2]  # strip the CRLF chunk trailer
                    if inflater is not None:
                        try:
                            chunk = inflater.decompress(chunk)
                        except zlib.error as exc:
                            raise ProtocolError(
                                f"corrupt deflate stream from {self.base_url}: {exc}"
                            ) from exc
                        if not chunk:
                            continue
                    pending += chunk
                    lines = pending.split(b"\n")
                    pending = lines.pop()
                    for line in lines:
                        yield line.decode("utf-8")
                        delivered += 1
            except (asyncio.TimeoutError, TimeoutError) as exc:
                raise ServerConnectionError(
                    f"server at {self.base_url} stalled mid-stream "
                    f"(no data within {self.timeout}s): {exc}",
                    delivered=delivered,
                ) from exc
            except _TRANSPORT_ERRORS as exc:
                raise ServerConnectionError(
                    f"server at {self.base_url} died mid-stream: {exc}",
                    delivered=delivered,
                ) from exc
            if inflater is not None:
                try:
                    pending += inflater.flush()
                except zlib.error as exc:
                    raise ProtocolError(
                        f"corrupt deflate stream from {self.base_url}: {exc}"
                    ) from exc
                if pending:
                    lines = pending.split(b"\n")
                    pending = lines.pop()
                    for line in lines:
                        yield line.decode("utf-8")
                        delivered += 1
            if pending:
                raise ServerConnectionError(
                    f"record stream from {self.base_url} ended mid-record",
                    delivered=delivered,
                )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def slice(self, start: int, stop: int) -> List[str]:
        """Records ``start`` (inclusive) to ``stop`` (exclusive, clamped)."""
        return [record async for record in self.iter_range(start, stop)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def close(self) -> None:
        """Close the kept-alive connection (idempotent; calls reopen it)."""
        await self._drop_connection()

    async def __aenter__(self) -> "AsyncCorpusClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


class AsyncFailoverCorpusClient:
    """The async twin of :class:`~repro.server.client.FailoverCorpusClient`.

    Same routing policy — rotating-cursor round-robin, failover on
    :func:`repro.server.protocol.is_retryable` outcomes, immediate
    propagation of fatal typed errors, stream resume at the first
    undelivered record — executed over :class:`AsyncCorpusClient` replicas.
    """

    def __init__(
        self,
        urls: Union[str, Sequence[str]],
        timeout: float = DEFAULT_TIMEOUT,
        compress: bool = True,
        retry: Optional[RetryPolicy] = None,
    ):
        replica_urls = protocol.split_replica_urls(urls)
        if not replica_urls:
            raise ServerError(f"no replica URLs in {urls!r}")
        self.urls: Tuple[str, ...] = tuple(replica_urls)
        self.retry = retry if retry is not None else RetryPolicy()
        self._clients = [
            AsyncCorpusClient(url, timeout=timeout, compress=compress)
            for url in replica_urls
        ]
        self._cursor = 0

    def _rotation(self) -> List[AsyncCorpusClient]:
        start = self._cursor  # single event loop: plain int cursor is safe
        self._cursor = (start + 1) % len(self._clients)
        n = len(self._clients)
        return [self._clients[(start + i) % n] for i in range(n)]

    async def _fan(self, op):
        last_error: Optional[ReproError] = None
        retry_state = self.retry.start()
        # One trace id spans the whole failover chain (see the blocking twin).
        with _tracing.trace_context():
            return await self._fan_traced(op, retry_state, last_error)

    async def _fan_traced(self, op, retry_state, last_error):
        while True:
            for client in self._rotation():
                try:
                    return await op(client)
                except ReproError as exc:
                    if not protocol.is_retryable(exc):
                        raise
                    last_error = exc
            if not await _await_retry(retry_state):
                raise ServerConnectionError(
                    f"all {len(self._clients)} replicas failed "
                    f"({', '.join(self.urls)}); last error: {last_error}"
                ) from last_error

    async def healthz(self) -> Dict[str, object]:
        """Liveness payload from the first replica that answers."""
        return await self._fan(lambda c: c.healthz())

    async def stats(self) -> Dict[str, object]:
        """``/stats`` payload from the first replica that answers."""
        return await self._fan(lambda c: c.stats())

    async def total(self) -> int:
        """Record count from the first replica that answers."""
        return await self._fan(lambda c: c.total())

    async def get(self, index: int) -> str:
        """The record at *index*, failing over between replicas."""
        return await self._fan(lambda c: c.get(index))

    async def get_many(self, indices: Sequence[int]) -> List[str]:
        """One batch round trip, failing over between replicas."""
        indices = list(indices)
        if not indices:
            return []
        return await self._fan(lambda c: c.get_many(indices))

    async def sample(
        self, n: int, seed: Optional[int] = None
    ) -> Tuple[List[int], List[str]]:
        """Seed-deterministic uniform sample (identical on every replica)."""
        return await self._fan(lambda c: c.sample(n, seed))

    async def iter_range(
        self, start: int = 0, stop: Optional[int] = None
    ) -> AsyncIterator[str]:
        """Stream ``start`` … ``stop``, resuming across replica deaths."""
        delivered = 0
        retry_state = self.retry.start()
        while True:
            progressed = False
            last_error: Optional[ReproError] = None
            for client in self._rotation():
                try:
                    async for record in client.iter_range(start + delivered, stop):
                        delivered += 1
                        progressed = True
                        yield record
                    return
                except ReproError as exc:
                    if not protocol.is_retryable(exc):
                        raise
                    last_error = exc
                    if progressed:
                        break  # progress resets the rotation budget
            if progressed:
                retry_state.reset_progress()
                continue
            if not await _await_retry(retry_state):
                raise ServerConnectionError(
                    f"all {len(self._clients)} replicas failed streaming "
                    f"[{start + delivered}, {stop}) ({', '.join(self.urls)}); "
                    f"last error: {last_error}",
                    delivered=delivered,
                ) from last_error

    async def slice(self, start: int, stop: int) -> List[str]:
        """Records ``start`` (inclusive) to ``stop`` (exclusive, clamped)."""
        return [record async for record in self.iter_range(start, stop)]

    async def close(self) -> None:
        """Close every replica's kept-alive connection (idempotent)."""
        for client in self._clients:
            await client.close()

    async def __aenter__(self) -> "AsyncFailoverCorpusClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
