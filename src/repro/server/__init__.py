"""The network serving front: HTTP over the corpus library.

``repro.server`` turns a packed corpus — any layout
:meth:`~repro.library.CorpusLibrary.open` accepts — into a service, the
fourth tier of the serving ladder documented in :mod:`repro.library`
(flat → ``.zss`` → sharded library → **HTTP**):

* :class:`CorpusServer` (:mod:`repro.server.app`) — stdlib ``asyncio``
  HTTP/1.1 server mounting an :class:`~repro.library.AsyncCorpusLibrary`;
  the bounded reader pool is the backpressure.  Endpoints: ``/healthz``,
  ``/stats``, ``/records/{i}``, ``/records:batch``, and the chunked
  ``/records?start=&stop=`` range stream.
* :mod:`repro.server.protocol` — the wire schema both sides share: routes,
  content types, body limits, and the JSON error envelope that maps
  :mod:`repro.errors` to HTTP statuses *and back*.
* :class:`CorpusClient` (:mod:`repro.server.client`) — blocking
  ``http.client`` consumer mirroring the
  :class:`~repro.store.protocol.RecordReader` protocol, so
  :func:`repro.store.open_reader` serves ``http://`` URLs to existing
  consumers (screening, dataset loaders, the CLI) with no call-site change.
* :class:`BackgroundServer` / :func:`run_server` — the thread-hosted and
  foreground (``zsmiles serve``) lifecycles, both with graceful, draining
  shutdown.
* :class:`ServerFleet` / :func:`run_fleet` (:mod:`repro.server.fleet`) —
  multi-process scale-out: ``zsmiles serve --workers N`` pre-forks N
  worker processes over the same library behind one URL, via
  ``SO_REUSEPORT`` kernel load-balancing where available and a parent
  round-robin TCP proxy everywhere else.  A SIGKILLed worker drops out of
  rotation; survivors keep serving.
* :class:`FailoverCorpusClient` / :class:`AsyncFailoverCorpusClient` —
  replica-aware clients over several server URLs: round-robin routing,
  failover on retryable outcomes (connection loss, HTTP 503 — see
  :func:`repro.server.protocol.is_retryable`), immediate propagation of
  fatal typed errors, and mid-stream resume at the first undelivered
  record.
* :class:`AsyncCorpusClient` (:mod:`repro.server.async_client`) — the
  asyncio twin of :class:`CorpusClient` for event-loop consumers.
* :class:`RetryPolicy` (:mod:`repro.server.retry`) — the one retry
  discipline every client and the campaign driver share: attempts,
  exponential backoff with jitter, optional total deadline.  Pass it as
  ``retry=`` to any client (or :func:`repro.store.open_reader`) to tune
  how hard transient failures are ridden out.

Observability (see :mod:`repro.telemetry`): every server and fleet worker
exposes ``GET /metrics`` (Prometheus text; a fleet scrape is aggregated
across live workers, ``?scope=local`` opts out), clients stamp
``X-Request-Id``/``X-Trace-Id`` headers the server adopts, echoes and logs
(``--access-log``), and :func:`merge_stats_payloads` is the fleet's
``/stats`` roll-up.

Transport: ``/records:batch`` and range-stream responses negotiate zlib
``Content-Encoding: deflate`` (clients advertise it by default; identity
bodies stay byte-identical to the pre-compression wire).

Standing a service up::

    zsmiles pack corpus.smi -d shared.dct --shards 8
    zsmiles serve corpus.library --port 8765 --readers 8 --workers 4

Consuming it::

    with CorpusClient("http://127.0.0.1:8765") as client:
        client.get(123), client.get_many(batch)
        for record in client.iter_range(0, 10_000):
            ...
    # replicas behind one client (comma-spelling works in CLIs/envs too):
    with FailoverCorpusClient(["http://a:8765", "http://b:8765"]) as client:
        client.get_many(batch)   # fails over on refused/503, resumes streams
    # or, transparently:
    reader = open_reader("http://127.0.0.1:8765")
    reader = open_reader("http://a:8765,http://b:8765")  # failover reader
"""

from .app import (
    DEFAULT_GRACE,
    DEFAULT_HOST,
    DEFAULT_PORT,
    BackgroundServer,
    CorpusServer,
    merge_stats_payloads,
    run_server,
)
from .async_client import AsyncCorpusClient, AsyncFailoverCorpusClient
from .client import DEFAULT_TIMEOUT, CorpusClient, FailoverCorpusClient
from .fleet import ServerFleet, run_fleet
from .protocol import PROTOCOL_VERSION, is_retryable, is_url, split_replica_urls
from .retry import RetryPolicy, RetryState

__all__ = [
    "AsyncCorpusClient",
    "AsyncFailoverCorpusClient",
    "BackgroundServer",
    "CorpusClient",
    "CorpusServer",
    "DEFAULT_GRACE",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_TIMEOUT",
    "FailoverCorpusClient",
    "PROTOCOL_VERSION",
    "RetryPolicy",
    "RetryState",
    "ServerFleet",
    "is_retryable",
    "is_url",
    "merge_stats_payloads",
    "run_fleet",
    "run_server",
    "split_replica_urls",
]
