"""The network serving front: HTTP over the corpus library.

``repro.server`` turns a packed corpus — any layout
:meth:`~repro.library.CorpusLibrary.open` accepts — into a service, the
fourth tier of the serving ladder documented in :mod:`repro.library`
(flat → ``.zss`` → sharded library → **HTTP**):

* :class:`CorpusServer` (:mod:`repro.server.app`) — stdlib ``asyncio``
  HTTP/1.1 server mounting an :class:`~repro.library.AsyncCorpusLibrary`;
  the bounded reader pool is the backpressure.  Endpoints: ``/healthz``,
  ``/stats``, ``/records/{i}``, ``/records:batch``, and the chunked
  ``/records?start=&stop=`` range stream.
* :mod:`repro.server.protocol` — the wire schema both sides share: routes,
  content types, body limits, and the JSON error envelope that maps
  :mod:`repro.errors` to HTTP statuses *and back*.
* :class:`CorpusClient` (:mod:`repro.server.client`) — blocking
  ``http.client`` consumer mirroring the
  :class:`~repro.store.protocol.RecordReader` protocol, so
  :func:`repro.store.open_reader` serves ``http://`` URLs to existing
  consumers (screening, dataset loaders, the CLI) with no call-site change.
* :class:`BackgroundServer` / :func:`run_server` — the thread-hosted and
  foreground (``zsmiles serve``) lifecycles, both with graceful, draining
  shutdown.

Standing a service up::

    zsmiles pack corpus.smi -d shared.dct --shards 8
    zsmiles serve corpus.library --port 8765 --readers 8

Consuming it::

    with CorpusClient("http://127.0.0.1:8765") as client:
        client.get(123), client.get_many(batch)
        for record in client.iter_range(0, 10_000):
            ...
    # or, transparently:
    reader = open_reader("http://127.0.0.1:8765")
"""

from .app import (
    DEFAULT_GRACE,
    DEFAULT_HOST,
    DEFAULT_PORT,
    BackgroundServer,
    CorpusServer,
    run_server,
)
from .client import DEFAULT_TIMEOUT, CorpusClient
from .protocol import PROTOCOL_VERSION, is_url

__all__ = [
    "BackgroundServer",
    "CorpusClient",
    "CorpusServer",
    "DEFAULT_GRACE",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_TIMEOUT",
    "PROTOCOL_VERSION",
    "is_url",
    "run_server",
]
