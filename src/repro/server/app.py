"""The asyncio HTTP serving front: :class:`CorpusServer`.

The server mounts an :class:`~repro.library.AsyncCorpusLibrary` — the
bounded reader pool *is* the backpressure: at most ``readers`` blocking
block-decodes run at once, no matter how many sockets are open — and speaks
a deliberately small slice of HTTP/1.1 over plain ``asyncio`` streams
(stdlib only, no frameworks):

==========================  ================================================
``GET /healthz``            liveness + record count
``GET /stats``              manifest summary, pool/cache counters, request
                            tallies (the observable the load harness reads)
``GET /records/{i}``        one record, ``text/plain``
``POST /records:batch``     ``{"indices": [...]}`` → one record per line,
                            served through ``get_many``'s pool fan-out
``GET /records:sample``     ``?n=&seed=`` → JSON of uniform random records
                            (without replacement, seed-deterministic)
``GET /records?start=&stop=``  range stream over chunked transfer encoding,
                            one :meth:`AsyncCorpusLibrary.stream` batch per
                            chunk so the event loop interleaves requests
==========================  ================================================

Connections are keep-alive by default; every error is the JSON envelope of
:mod:`repro.server.protocol`, typed so clients re-raise the exact
:mod:`repro.errors` class.  :meth:`CorpusServer.shutdown` is graceful: the
listener closes first, in-flight requests run to completion (bounded by a
grace period), then idle keep-alive connections are torn down.

:class:`BackgroundServer` wraps the whole lifecycle in a thread with its own
event loop — the harness the tests, the latency benchmark and the quickstart
all use to stand a server up next to blocking client code.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
import urllib.parse
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.codec import ZSmilesCodec
from ..errors import ProtocolError, ReproError, ServerError
from ..library import DEFAULT_POOL_SIZE, DEFAULT_STREAM_BATCH, AsyncCorpusLibrary
from ..store.reader import DEFAULT_CACHE_BLOCKS
from ..telemetry import metrics as _metrics
from ..telemetry import tracing as _tracing
from ..telemetry.logs import AccessLogger, open_access_log
from . import protocol

PathLike = Union[str, Path]

#: Default bind address (loopback: exposing a corpus is an explicit choice).
DEFAULT_HOST = "127.0.0.1"
#: Default port (0 = ephemeral, reported by ``CorpusServer.port`` once bound).
DEFAULT_PORT = 8765
#: Seconds in-flight requests get to finish during a graceful shutdown.
DEFAULT_GRACE = 10.0

_REQUEST_METHODS = ("GET", "POST")


class _ConnectionAbort(Exception):
    """Internal: tear the connection down without writing anything more.

    Raised when a response is already partially on the wire (a chunked
    stream) and failed mid-way — injecting an error envelope would corrupt
    the framing, so the only honest signal left is closing the socket.
    """


class _Request:
    """One parsed HTTP request (the few fields the routes need)."""

    __slots__ = (
        "method", "path", "query", "headers", "body",
        "request_id", "route", "status", "response_bytes",
    )

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        # Telemetry bookkeeping, filled in as the request travels:
        # the adopted/minted id, the route label, and what went out.
        self.request_id: Optional[str] = None
        self.route = "other"
        self.status = 0
        self.response_bytes = 0

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


class CorpusServer:
    """Serve one :class:`AsyncCorpusLibrary` over HTTP on an asyncio loop.

    The server borrows the library (it does not close it): callers own both
    lifecycles, which lets one library back a server *and* in-process
    consumers at once.
    """

    def __init__(
        self,
        library: AsyncCorpusLibrary,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        stream_batch: int = DEFAULT_STREAM_BATCH,
        reuse_port: bool = False,
        access_log: Optional[AccessLogger] = None,
        worker_id: Optional[int] = None,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ):
        if stream_batch < 1:
            raise ServerError("stream_batch must be >= 1")
        self.library = library
        self.host = host
        self.port = port
        self.stream_batch = stream_batch
        #: Bind with SO_REUSEPORT so several worker processes can share one
        #: port and let the kernel balance connections (the fleet tier).
        self.reuse_port = reuse_port
        self.access_log = access_log
        self.worker_id = worker_id
        self.registry = registry if registry is not None else _metrics.get_registry()
        #: Per-worker admin port (a second listener on an ephemeral port)
        #: and the fleet-wide list of every sibling's admin port.  Set by
        #: the fleet tier; a lone server leaves both None and serves
        #: local-only /stats and /metrics.
        self.admin_port: Optional[int] = None
        self.peer_admin_ports: Optional[List[int]] = None
        self._admin_server: Optional[asyncio.base_events.Server] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._busy: set = set()
        self._closing = False
        # Startedness is an explicit flag, not a truthiness test on the
        # monotonic stamp: time.monotonic() may legitimately be 0.0 at
        # start (it counts from an unspecified epoch), and a falsy stamp
        # must not make stats() report a never-started server.
        self._started = False
        self._started_at = 0.0
        #: Request tally per route plus error count (single loop: plain ints).
        self.counters: Dict[str, int] = {
            "requests": 0,
            "errors": 0,
            "records_served": 0,
            "deflated": 0,
            "healthz": 0,
            "stats": 0,
            "metrics": 0,
            "single": 0,
            "batch": 0,
            "stream": 0,
            "sample": 0,
        }
        reg = self.registry
        self._metric_requests = reg.counter(
            "zsmiles_server_requests_total",
            "Requests served, by route and response status",
            labels=("route", "status"),
        )
        self._metric_latency = reg.histogram(
            "zsmiles_server_request_seconds",
            "Wall time from parsed request to response written",
            labels=("route",),
        )
        self._metric_response_bytes = reg.histogram(
            "zsmiles_server_response_bytes",
            "Response body bytes, by route",
            labels=("route",),
            buckets=_metrics.DEFAULT_SIZE_BUCKETS,
        )
        self._metric_errors = reg.counter(
            "zsmiles_server_errors_total",
            "Requests answered with an error envelope, by exception type",
            labels=("type",),
        )
        self._metric_records = reg.counter(
            "zsmiles_server_records_served_total",
            "Records delivered across all routes",
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections; resolves ``self.port``."""
        if self._server is not None:
            raise ServerError("server already started")
        if self.reuse_port:
            self._server = await asyncio.start_server(
                self._serve_connection, self.host, self.port, reuse_port=True
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, self.host, self.port
            )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._started = True

    async def start_admin(self) -> int:
        """Bind the per-worker admin listener (same routes, own port).

        Fleet workers in SO_REUSEPORT mode all share the public port, so a
        sibling that wants *this* worker's counters needs a way to address
        it individually — the admin listener is that address.  It serves
        the same handler (so ``/stats?scope=local`` and
        ``/metrics?scope=local`` work), just never via the shared port.
        """
        if self._admin_server is None:
            self._admin_server = await asyncio.start_server(
                self._serve_connection, self.host, 0
            )
            self.admin_port = self._admin_server.sockets[0].getsockname()[1]
        assert self.admin_port is not None
        return self.admin_port

    @property
    def url(self) -> str:
        """The server's base URL (valid once :meth:`start` returned)."""
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def shutdown(self, grace: float = DEFAULT_GRACE) -> None:
        """Stop accepting, drain in-flight requests, then drop idle connections.

        A request already being processed (including a chunked range stream)
        gets up to *grace* seconds to complete; keep-alive connections that
        are merely idle between requests are cancelled after the drain.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()
        # Drain: only connections actually processing a request get the grace
        # period; handlers re-check _closing after each response and exit
        # instead of waiting for another one, so this is "drain", not
        # "linger".  Idle keep-alive connections are torn down immediately.
        in_flight = {task for task in self._connections if task in self._busy}
        if in_flight:
            await asyncio.wait(in_flight, timeout=grace)
        leftovers = set(self._connections)
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while not self._closing:
                try:
                    request = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    # readline() reports an over-limit request line / header
                    # as ValueError (it swallows the LimitOverrunError).
                    await self._write_error(writer, ProtocolError("request line/header too long"))
                    break
                except ProtocolError as exc:
                    # A framing error leaves the stream unsynchronized; answer
                    # and close rather than misparse the next request.
                    await self._write_error(writer, exc)
                    break
                if request is None:  # clean EOF between requests
                    break
                # Adopt the caller's request id (X-Request-Id, falling back
                # to X-Trace-Id) or mint one: every response and log line
                # carries it, so a client-side trace matches server-side.
                request.request_id = (
                    request.headers.get("x-request-id")
                    or request.headers.get("x-trace-id")
                    or _tracing.new_trace_id()
                )
                keep_alive = request.keep_alive and not self._closing
                if task is not None:
                    self._busy.add(task)
                started = time.perf_counter()
                try:
                    try:
                        await self._dispatch(request, writer, keep_alive)
                    except (ConnectionError, asyncio.CancelledError):
                        raise
                    except _ConnectionAbort:
                        # A partially-written response cannot be followed by
                        # an envelope; the close below is the error signal.
                        break
                    except ReproError as exc:
                        self.counters["errors"] += 1
                        self._metric_errors.labels(type(exc).__name__).inc()
                        await self._write_error(writer, exc, keep_alive, request)
                    except Exception as exc:  # noqa: BLE001 — envelope, don't kill the loop
                        self.counters["errors"] += 1
                        self._metric_errors.labels(type(exc).__name__).inc()
                        await self._write_error(
                            writer, ServerError(f"internal error: {exc}"), False, request
                        )
                        break
                finally:
                    if task is not None:
                        self._busy.discard(task)
                    self._finish_request(request, started)
                if not keep_alive:
                    break
        except (asyncio.CancelledError, ConnectionError):
            pass  # shutdown tear-down, or the peer vanished mid-write
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, version = line.decode("ascii").split()
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"malformed request line: {line[:80]!r}") from exc
        if method not in _REQUEST_METHODS:
            raise ProtocolError(f"unsupported method {method!r}")
        if not version.startswith("HTTP/1."):
            raise ProtocolError(f"unsupported protocol version {version!r}")
        headers: Dict[str, str] = {}
        header_lines = 0
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            # Count lines read, not dict entries: repeated names overwrite
            # their dict slot, so len(headers) would never trip the guard.
            header_lines += 1
            if header_lines > 100:
                raise ProtocolError("too many headers")
            try:
                name, _, value = raw.decode("latin-1").partition(":")
            except UnicodeDecodeError as exc:  # pragma: no cover — latin-1 total
                raise ProtocolError("undecodable header") from exc
            headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError as exc:
                raise ProtocolError("content-length is not an integer") from exc
            if length < 0 or length > protocol.MAX_BODY_BYTES:
                raise ProtocolError(
                    f"body of {length} bytes exceeds the {protocol.MAX_BODY_BYTES} cap"
                )
            body = await reader.readexactly(length)
        parsed = urllib.parse.urlsplit(target)
        query = dict(urllib.parse.parse_qsl(parsed.query, keep_blank_values=True))
        return _Request(method, parsed.path, query, headers, body)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _dispatch(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        self.counters["requests"] += 1
        path = request.path
        if path == protocol.ROUTE_HEALTH:
            self.counters["healthz"] += 1
            request.route = "healthz"
            await self._write_json(writer, self._health_payload(), keep_alive, request)
        elif path == protocol.ROUTE_STATS:
            self.counters["stats"] += 1
            request.route = "stats"
            await self._handle_stats(request, writer, keep_alive)
        elif path == protocol.ROUTE_METRICS:
            self.counters["metrics"] += 1
            request.route = "metrics"
            await self._handle_metrics(request, writer, keep_alive)
        elif path == protocol.ROUTE_BATCH:
            request.route = "batch"
            if request.method != "POST":
                raise ProtocolError(f"{path} requires POST, got {request.method}")
            await self._handle_batch(request, writer, keep_alive)
        elif path == protocol.ROUTE_SAMPLE:
            request.route = "sample"
            if request.method != "GET":
                raise ProtocolError(f"{path} requires GET, got {request.method}")
            await self._handle_sample(request, writer, keep_alive)
        elif path.startswith(protocol.RECORD_PREFIX):
            request.route = "single"
            await self._handle_single(request, writer, keep_alive)
        elif path == protocol.ROUTE_RECORDS:
            request.route = "stream"
            await self._handle_stream(request, writer, keep_alive)
        else:
            self.counters["errors"] += 1
            self._metric_errors.labels("NotFound").inc()
            envelope = {
                "error": {
                    "type": "NotFound",
                    "message": f"no route {path}",
                    "status": 404,
                }
            }
            if request.request_id is not None:
                envelope["error"]["request_id"] = request.request_id
            status, body = 404, protocol.encode_json(envelope)
            await self._write_response(
                writer, status, body, protocol.CONTENT_TYPE_JSON, keep_alive,
                request=request,
            )

    async def _handle_single(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        raw = request.path[len(protocol.RECORD_PREFIX):]
        try:
            index = int(raw)
        except ValueError as exc:
            raise ProtocolError(f"record index must be an integer, got {raw!r}") from exc
        record = await self.library.get(index)
        self.counters["single"] += 1
        self.counters["records_served"] += 1
        self._metric_records.inc()
        await self._write_response(
            writer,
            200,
            record.encode("utf-8"),
            protocol.CONTENT_TYPE_TEXT,
            keep_alive,
            request=request,
        )

    async def _handle_batch(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        indices = protocol.parse_batch_request(request.body)
        records = await self.library.get_many(indices)
        self.counters["batch"] += 1
        self.counters["records_served"] += len(records)
        self._metric_records.inc(len(records))
        body, encoding = protocol.negotiate_encoding(
            request.headers, protocol.encode_records_body(records)
        )
        if encoding:
            self.counters["deflated"] += 1
        await self._write_response(
            writer,
            200,
            body,
            protocol.CONTENT_TYPE_TEXT,
            keep_alive,
            content_encoding=encoding,
            request=request,
        )

    async def _handle_sample(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        """Uniform random records without replacement, seedable.

        The draw is over *indices* (cheap even for huge corpora); records
        come back through the pooled ``get_many``.  A fixed ``seed`` fully
        determines the sample, which is what lets remote curation runs be
        reproduced.
        """
        count, seed = protocol.parse_sample_query(request.query, len(self.library))
        rng = random.Random(seed)
        indices = sorted(rng.sample(range(len(self.library)), count))
        records = await self.library.get_many(indices)
        self.counters["sample"] += 1
        self.counters["records_served"] += len(records)
        self._metric_records.inc(len(records))
        await self._write_json(
            writer,
            protocol.sample_payload(indices, records, len(self.library), seed),
            keep_alive,
            request,
        )

    async def _handle_stream(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        """Range streaming over chunked transfer encoding.

        Each chunk is one reader-pool batch, so a slow consumer only ever
        holds ``stream_batch`` decoded records in the send path and the
        event loop is free between chunks.
        """
        start, stop = protocol.parse_range_query(request.query, len(self.library))
        self.counters["stream"] += 1
        # Streams deflate whenever the request advertises it (no size gate:
        # the range's size is unknown up front and streams are the bulk
        # path).  One zlib stream spans the whole response; every chunk is
        # sync-flushed so records decoded before a mid-stream death are
        # still deliverable — the compressed twin of the read1 guarantee.
        compressor = None
        if protocol.accepts_deflate(request.headers):
            compressor = zlib.compressobj(protocol.COMPRESS_LEVEL)
            self.counters["deflated"] += 1
        headers = (
            f"HTTP/1.1 200 {protocol.STATUS_REASONS[200]}\r\n"
            f"Content-Type: {protocol.CONTENT_TYPE_TEXT}\r\n"
            "Transfer-Encoding: chunked\r\n"
            + (
                f"Content-Encoding: {protocol.CONTENT_ENCODING_DEFLATE}\r\n"
                if compressor is not None
                else ""
            )
            + (
                f"{_tracing.HEADER_REQUEST_ID}: {request.request_id}\r\n"
                if request.request_id is not None
                else ""
            )
            + f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        request.status = 200
        writer.write(headers.encode("ascii"))
        # From here the response is on the wire: a failure can no longer be
        # answered with an error envelope (it would be injected into the
        # chunked body and desynchronize the framing), so it aborts the
        # connection instead — the truncated stream is the client's signal
        # (CorpusClient raises ServerConnectionError on it).
        try:
            cursor = start
            while cursor < stop:
                upper = min(cursor + self.stream_batch, stop)
                batch = await self.library.get_many(list(range(cursor, upper)))
                payload = protocol.encode_records_body(batch)
                if compressor is not None:
                    payload = compressor.compress(payload) + compressor.flush(
                        zlib.Z_SYNC_FLUSH
                    )
                if payload:
                    writer.write(
                        f"{len(payload):x}\r\n".encode("ascii") + payload + b"\r\n"
                    )
                    await writer.drain()
                    request.response_bytes += len(payload)
                self.counters["records_served"] += len(batch)
                self._metric_records.inc(len(batch))
                cursor = upper
            if compressor is not None:
                tail = compressor.flush()
                if tail:
                    writer.write(f"{len(tail):x}\r\n".encode("ascii") + tail + b"\r\n")
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:
            self.counters["errors"] += 1
            self._metric_errors.labels(type(exc).__name__).inc()
            raise _ConnectionAbort from exc

    # ------------------------------------------------------------------ #
    # Observability routes (stats / metrics, fleet-aware)
    # ------------------------------------------------------------------ #
    def _fleet_scoped(self, request: _Request) -> bool:
        """Whether this request should merge sibling workers' state."""
        return (
            request.query.get("scope") != "local"
            and self.peer_admin_ports is not None
            and len(self.peer_admin_ports) > 1
        )

    async def _handle_stats(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        if self._fleet_scoped(request):
            payload = await self._aggregate_stats()
        else:
            payload = self.stats()
        if request.query.get("trace") == "recent":
            # The most recent finished spans of *this* worker's ring (trace
            # peeks are a debugging aid, not part of the fleet aggregate).
            payload["trace"] = _tracing.get_exporter().recent(limit=32)
        await self._write_json(writer, payload, keep_alive, request)

    async def _handle_metrics(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        if self._fleet_scoped(request):
            snapshots = [self.registry.snapshot()]
            snapshots.extend(
                await self._peer_payloads(
                    f"{protocol.ROUTE_METRICS}?format=json&scope=local"
                )
            )
            snapshot = _metrics.merge_snapshots(snapshots)
        else:
            snapshot = self.registry.snapshot()
        if request.query.get("format") == "json":
            await self._write_response(
                writer,
                200,
                _metrics.snapshot_to_json(snapshot),
                protocol.CONTENT_TYPE_JSON,
                keep_alive,
                request=request,
            )
            return
        body = _metrics.render_prometheus(snapshot).encode("utf-8")
        await self._write_response(
            writer,
            200,
            body,
            protocol.CONTENT_TYPE_PROMETHEUS,
            keep_alive,
            request=request,
        )

    async def _aggregate_stats(self) -> Dict[str, object]:
        payloads: List[Dict[str, object]] = [self.stats()]
        payloads.extend(
            await self._peer_payloads(f"{protocol.ROUTE_STATS}?scope=local")
        )
        return merge_stats_payloads(payloads)

    async def _peer_payloads(self, target: str) -> List[Dict[str, object]]:
        """Fetch *target* from every live sibling's admin port (skip self).

        A dead sibling (crashed worker) is skipped rather than failing the
        scrape — the aggregate then describes the surviving fleet, which
        is exactly what an operator wants mid-incident.
        """
        ports = [
            port
            for port in (self.peer_admin_ports or [])
            if port != self.admin_port
        ]
        if not ports:
            return []
        results = await asyncio.gather(
            *(self._fetch_peer_json(port, target) for port in ports)
        )
        return [payload for payload in results if payload is not None]

    async def _fetch_peer_json(
        self, port: int, target: str, timeout: float = 2.0
    ) -> Optional[Dict[str, object]]:
        """One minimal HTTP GET against a sibling worker; None on failure."""
        try:
            reader, peer_writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, port), timeout
            )
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            peer_writer.write(
                (
                    f"GET {target} HTTP/1.1\r\n"
                    f"Host: {self.host}:{port}\r\n"
                    f"Accept: {protocol.CONTENT_TYPE_JSON}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("ascii")
            )
            await asyncio.wait_for(peer_writer.drain(), timeout)
            status_line = await asyncio.wait_for(reader.readline(), timeout)
            parts = status_line.split()
            if len(parts) < 2 or parts[1] != b"200":
                return None
            length = None
            while True:
                raw = await asyncio.wait_for(reader.readline(), timeout)
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            if length is None:
                return None
            body = await asyncio.wait_for(reader.readexactly(length), timeout)
            payload = json.loads(body.decode("utf-8"))
            return payload if isinstance(payload, dict) else None
        except (OSError, ValueError, asyncio.TimeoutError, asyncio.IncompleteReadError):
            return None
        finally:
            peer_writer.close()
            try:
                await peer_writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------ #
    # Payloads
    # ------------------------------------------------------------------ #
    def _health_payload(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "protocol": protocol.PROTOCOL_VERSION,
            "records": len(self.library),
        }

    def stats(self) -> Dict[str, object]:
        """The ``/stats`` payload (also handy for in-process inspection)."""
        manifest = self.library.manifest
        identity = self.library.dictionary_identity()
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "dictionary": identity.to_json_obj() if identity is not None else None,
            "records": len(self.library),
            "shards": manifest.shard_count,
            "pool_size": self.library.pool_size,
            # The key is always present; 0.0 before start(), never omitted.
            "uptime_seconds": round(time.monotonic() - self._started_at, 3)
            if self._started
            else 0.0,
            "cache": self.library.cache_stats(),
            "counters": dict(self.counters),
            # Degraded-read visibility: which blocks this replica has
            # quarantined after integrity failures, and how often reads
            # hit them (each hit was served by failover or failed typed).
            "quarantine": self.library.quarantine_stats(),
            "manifest": {
                "total_records": manifest.total_records,
                "shard_count": manifest.shard_count,
                "metadata": manifest.metadata,
            },
        }

    # ------------------------------------------------------------------ #
    # Response plumbing
    # ------------------------------------------------------------------ #
    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        keep_alive: bool,
        content_encoding: Optional[str] = None,
        request: Optional[_Request] = None,
    ) -> None:
        reason = protocol.STATUS_REASONS.get(status, "Unknown")
        request_id = request.request_id if request is not None else None
        headers = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            + (
                f"Content-Encoding: {content_encoding}\r\n"
                if content_encoding
                else ""
            )
            + (
                f"{_tracing.HEADER_REQUEST_ID}: {request_id}\r\n"
                if request_id is not None
                else ""
            )
            + f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        if request is not None:
            request.status = status
            request.response_bytes += len(body)
        writer.write(headers.encode("ascii") + body)
        await writer.drain()

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        payload: Dict[str, object],
        keep_alive: bool,
        request: Optional[_Request] = None,
    ) -> None:
        await self._write_response(
            writer, 200, protocol.encode_json(payload), protocol.CONTENT_TYPE_JSON,
            keep_alive, request=request,
        )

    async def _write_error(
        self,
        writer: asyncio.StreamWriter,
        exc: BaseException,
        keep_alive: bool = False,
        request: Optional[_Request] = None,
    ) -> None:
        status, body = protocol.encode_error(
            exc, request.request_id if request is not None else None
        )
        try:
            await self._write_response(
                writer, status, body, protocol.CONTENT_TYPE_JSON, keep_alive,
                request=request,
            )
        except ConnectionError:
            pass  # the peer is gone; nothing to tell them

    def _finish_request(self, request: _Request, started: float) -> None:
        """Record one finished request: metrics always, access log if on."""
        elapsed = time.perf_counter() - started
        route = request.route
        self._metric_requests.labels(route, request.status).inc()
        self._metric_latency.labels(route).observe(elapsed)
        if request.response_bytes:
            self._metric_response_bytes.labels(route).observe(request.response_bytes)
        if self.registry.enabled and request.request_id is not None:
            # One finished span per request feeds ``/stats?trace=recent``:
            # a failover chain shows up as several spans sharing a trace id.
            span = _tracing.Span(
                f"server.{route}", request.request_id, {"status": request.status}
            )
            span.duration_ms = round(elapsed * 1000.0, 3)
            _tracing.get_exporter().export(span)
        if self.access_log is not None:
            self.access_log.log(
                request_id=request.request_id,
                method=request.method,
                path=request.path,
                route=route,
                status=request.status,
                bytes=request.response_bytes,
                duration_ms=round(elapsed * 1000.0, 3),
            )


# --------------------------------------------------------------------------- #
# Fleet stats aggregation
# --------------------------------------------------------------------------- #
def merge_stats_payloads(
    payloads: Sequence[Dict[str, object]]
) -> Dict[str, object]:
    """Merge per-worker ``/stats`` payloads into one fleet-wide payload.

    Counters sum, the cache counters sum (with the hit rate recomputed
    over the summed counters), quarantine shard maps union (a block two
    workers both quarantined counts once), pool sizes sum (the fleet's
    total decode concurrency) and uptime is the oldest worker's.  Identity
    fields (protocol, dictionary, records, manifest) come from the first
    payload — every worker serves the same corpus.
    """
    if not payloads:
        raise ServerError("merge_stats_payloads needs at least one payload")
    merged = dict(payloads[0])
    counters: Dict[str, int] = {}
    for payload in payloads:
        for key, value in payload.get("counters", {}).items():  # type: ignore[union-attr]
            counters[key] = counters.get(key, 0) + int(value)
    merged["counters"] = counters
    cache: Dict[str, object] = {}
    for payload in payloads:
        for key, value in payload.get("cache", {}).items():  # type: ignore[union-attr]
            if key == "hit_rate":
                continue
            cache[key] = cache.get(key, 0) + int(value)
    lookups = int(cache.get("hits", 0)) + int(cache.get("misses", 0))
    cache["hit_rate"] = round(int(cache.get("hits", 0)) / lookups, 6) if lookups else 0.0
    merged["cache"] = cache
    shards: Dict[str, set] = {}
    quarantine_hits = 0
    for payload in payloads:
        quarantine = payload.get("quarantine", {})
        quarantine_hits += int(quarantine.get("quarantine_hits", 0))  # type: ignore[union-attr]
        for name, blocks in quarantine.get("shards", {}).items():  # type: ignore[union-attr]
            shards.setdefault(str(name), set()).update(blocks)
    quarantined = sum(len(blocks) for blocks in shards.values())
    merged["quarantine"] = {
        "quarantined_blocks": quarantined,
        "total_blocks_quarantined": quarantined,
        "quarantine_hits": quarantine_hits,
        "shards": {name: sorted(blocks) for name, blocks in sorted(shards.items())},
    }
    merged["pool_size"] = sum(int(p.get("pool_size", 0)) for p in payloads)
    merged["uptime_seconds"] = max(
        float(p.get("uptime_seconds", 0.0)) for p in payloads
    )
    merged["workers"] = len(payloads)
    merged["aggregated"] = True
    return merged


# --------------------------------------------------------------------------- #
# Blocking entry points
# --------------------------------------------------------------------------- #
class BackgroundServer:
    """A :class:`CorpusServer` on its own thread + event loop.

    The bridge between the async server and blocking consumers: tests, the
    latency benchmark, the quickstart, and ``cli serve``'s signal-driven
    foreground loop all run the same lifecycle.

    Use as a context manager::

        with BackgroundServer("corpus.library", readers=8) as server:
            client = CorpusClient(server.url)
            ...
    """

    def __init__(
        self,
        source: PathLike,
        codec: Optional[ZSmilesCodec] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        readers: int = DEFAULT_POOL_SIZE,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        use_mmap: bool = False,
        stream_batch: int = DEFAULT_STREAM_BATCH,
        access_log: Optional[PathLike] = None,
    ):
        self._source = source
        self._codec = codec
        self._host = host
        self._port = port
        self._readers = readers
        self._cache_blocks = cache_blocks
        self._use_mmap = use_mmap
        self._stream_batch = stream_batch
        self._access_log = access_log
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self._stop_lock = threading.Lock()
        self.server: Optional[CorpusServer] = None

    # -- thread body ---------------------------------------------------- #
    async def _main(self) -> None:
        try:
            library = AsyncCorpusLibrary.open(
                self._source,
                codec=self._codec,
                pool_size=self._readers,
                cache_blocks=self._cache_blocks,
                use_mmap=self._use_mmap,
            )
        except BaseException as exc:  # startup failures surface in start()
            self._startup_error = exc
            self._ready.set()
            return
        access_log = open_access_log(self._access_log)
        try:
            server = CorpusServer(
                library,
                self._host,
                self._port,
                stream_batch=self._stream_batch,
                access_log=access_log,
            )
            await server.start()
            self.server = server
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            self._ready.set()
            await self._stop_event.wait()
            await server.shutdown()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        finally:
            library.close()
            if access_log is not None:
                access_log.close()

    # -- public surface -------------------------------------------------- #
    def start(self) -> "BackgroundServer":
        if self._thread is not None or self._ready.is_set():
            # One instance, one lifecycle: _ready/_startup_error/server all
            # belong to the first run, so a restart would report stale state
            # (the old port, a dead URL).  Create a new instance instead.
            raise ServerError(
                "BackgroundServer cannot be restarted; create a new instance"
            )
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="zsmiles-corpus-server",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise ServerError(
                f"corpus server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    @property
    def url(self) -> str:
        if self.server is None:
            raise ServerError("BackgroundServer is not running")
        return self.server.url

    def stop(self) -> None:
        """Graceful shutdown (idempotent): drain, then join the thread.

        Safe against the startup race: a ``stop()`` issued while the server
        thread is still binding waits for startup to resolve (success or
        error) before signalling, so ``_loop``/``_stop_event`` are never
        half-initialized and the thread cannot leak.  Concurrent and
        repeated ``stop()`` calls are no-ops after the first.
        """
        with self._stop_lock:
            thread = self._thread
            if thread is None:
                return
            # Wait for the thread body to either publish _loop/_stop_event
            # or record a startup error — signalling before that point
            # would be lost and leave the thread parked forever.
            self._ready.wait()
            if self._loop is not None and self._stop_event is not None:
                try:
                    self._loop.call_soon_threadsafe(self._stop_event.set)
                except RuntimeError:
                    pass  # loop already closed
            thread.join()
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def run_server(
    source: PathLike,
    codec: Optional[ZSmilesCodec] = None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    readers: int = DEFAULT_POOL_SIZE,
    cache_blocks: int = DEFAULT_CACHE_BLOCKS,
    use_mmap: bool = False,
    access_log: Optional[str] = None,
) -> int:
    """Serve *source* in the foreground until SIGINT/SIGTERM (``cli serve``).

    Prints the bound URL once serving (flushed, machine-readable first line:
    ``serving <records> records at <url> ...``) and shuts down gracefully —
    in-flight requests drain before the process exits.
    """
    import signal

    async def _main() -> None:
        library = AsyncCorpusLibrary.open(
            source,
            codec=codec,
            pool_size=readers,
            cache_blocks=cache_blocks,
            use_mmap=use_mmap,
        )
        log = open_access_log(access_log)
        try:
            server = CorpusServer(library, host, port, access_log=log)
            await server.start()
            print(
                f"serving {len(library)} records at {server.url} "
                f"(pool={readers}, cache_blocks={cache_blocks}"
                f"{', mmap' if use_mmap else ''}) — Ctrl-C to stop",
                flush=True,
            )
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # platforms without signal handler support
            await stop.wait()
            print("shutting down (draining in-flight requests)...", flush=True)
            await server.shutdown()
        finally:
            library.close()
            if log is not None:
                log.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover — signal handler races
        pass
    return 0
