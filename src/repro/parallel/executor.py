"""Process-pool backend for batch compression / decompression.

The paper accelerates ZSMILES with CUDA because virtual screening pipelines
already run on GPU nodes; in a pure-Python reproduction the analogous
real-hardware speedup comes from data parallelism across CPU cores.  The
executor chunks a record batch, ships each chunk to a worker process together
with the (picklable) codec, and reassembles the results in order — the same
"one record per work item, order preserved" decomposition as the CUDA grid.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.codec import ZSmilesCodec
from ..errors import ParallelExecutionError

# Module-level worker state: the codec is sent once per worker (initializer)
# instead of once per task, which matters because the trie is the largest
# object involved.
_WORKER_CODEC: Optional[ZSmilesCodec] = None


def _init_worker(codec: ZSmilesCodec) -> None:
    global _WORKER_CODEC
    _WORKER_CODEC = codec


def _compress_chunk(chunk: List[str]) -> List[str]:
    assert _WORKER_CODEC is not None, "worker initialized without a codec"
    return [_WORKER_CODEC.compress(record) for record in chunk]


def _decompress_chunk(chunk: List[str]) -> List[str]:
    assert _WORKER_CODEC is not None, "worker initialized without a codec"
    return [_WORKER_CODEC.decompress(record) for record in chunk]


def default_worker_count() -> int:
    """Number of worker processes used when none is specified (CPU count, ≥1)."""
    return max(1, os.cpu_count() or 1)


@dataclass
class ParallelStats:
    """Bookkeeping returned alongside parallel batch operations."""

    records: int
    workers: int
    chunks: int


class ParallelCodec:
    """Data-parallel wrapper around a :class:`ZSmilesCodec`.

    The wrapper does not change any output: ``compress_many`` /
    ``decompress_many`` return exactly what the serial codec would, in the
    same order.  Small batches fall back to the serial path to avoid paying
    process start-up for nothing.
    """

    def __init__(
        self,
        codec: ZSmilesCodec,
        workers: Optional[int] = None,
        chunk_size: int = 2048,
        serial_threshold: int = 4096,
    ):
        if workers is not None and workers < 1:
            raise ParallelExecutionError("workers must be >= 1")
        if chunk_size < 1:
            raise ParallelExecutionError("chunk_size must be >= 1")
        self.codec = codec
        self.workers = workers or default_worker_count()
        self.chunk_size = chunk_size
        self.serial_threshold = serial_threshold
        self.last_stats: Optional[ParallelStats] = None

    # ------------------------------------------------------------------ #
    def compress_many(self, records: Sequence[str]) -> List[str]:
        """Compress *records* across the worker pool (order preserved)."""
        return self._run(records, _compress_chunk, self.codec.compress)

    def decompress_many(self, records: Sequence[str]) -> List[str]:
        """Decompress *records* across the worker pool (order preserved)."""
        return self._run(records, _decompress_chunk, self.codec.decompress)

    # ------------------------------------------------------------------ #
    def _run(
        self,
        records: Sequence[str],
        chunk_fn: Callable[[List[str]], List[str]],
        serial_fn: Callable[[str], str],
    ) -> List[str]:
        records = list(records)
        if self.workers == 1 or len(records) <= self.serial_threshold:
            self.last_stats = ParallelStats(records=len(records), workers=1, chunks=1)
            return [serial_fn(record) for record in records]

        chunks = [
            records[start : start + self.chunk_size]
            for start in range(0, len(records), self.chunk_size)
        ]
        context = multiprocessing.get_context("spawn")
        try:
            with ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self.codec,),
            ) as pool:
                results = list(pool.map(chunk_fn, chunks))
        except Exception as exc:  # pragma: no cover - depends on runtime environment
            raise ParallelExecutionError(f"parallel batch failed: {exc}") from exc
        self.last_stats = ParallelStats(
            records=len(records), workers=self.workers, chunks=len(chunks)
        )
        return [record for chunk in results for record in chunk]
