"""Process-pool batch compression / decompression (deprecation shims).

The process-pool execution path now lives in
:class:`repro.engine.backends.ProcessPoolBackend`; this module keeps the
historical :class:`ParallelCodec` surface as a thin wrapper so existing
callers keep working.  New code should construct a
:class:`repro.engine.ZSmilesEngine` with ``backend="process"`` (or leave the
default ``"auto"``, which picks the pool for large batches) instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.codec import ZSmilesCodec
from ..engine.backends import (
    ProcessPoolBackend,
    _compress_chunk,
    _decompress_chunk,
    _init_worker,
    default_worker_count,
)
from ..engine.config import EngineConfig
from ..errors import ParallelExecutionError

__all__ = [
    "ParallelCodec",
    "ParallelStats",
    "default_worker_count",
]


@dataclass
class ParallelStats:
    """Bookkeeping returned alongside parallel batch operations."""

    records: int
    workers: int
    chunks: int


class ParallelCodec:
    """Data-parallel wrapper around a :class:`ZSmilesCodec` (legacy surface).

    The wrapper does not change any output: ``compress_many`` /
    ``decompress_many`` return exactly what the serial codec would, in the
    same order.  Small batches fall back to the serial path to avoid paying
    process start-up for nothing.  Deprecated shim over
    :class:`repro.engine.backends.ProcessPoolBackend`.
    """

    def __init__(
        self,
        codec: ZSmilesCodec,
        workers: Optional[int] = None,
        chunk_size: int = 2048,
        serial_threshold: int = 4096,
    ):
        if workers is not None and workers < 1:
            raise ParallelExecutionError("workers must be >= 1")
        if chunk_size < 1:
            raise ParallelExecutionError("chunk_size must be >= 1")
        self.codec = codec
        self.workers = workers or default_worker_count()
        self.chunk_size = chunk_size
        self.serial_threshold = serial_threshold
        self.last_stats: Optional[ParallelStats] = None

    # ------------------------------------------------------------------ #
    def compress_many(self, records: Sequence[str]) -> List[str]:
        """Compress *records* across the worker pool (order preserved)."""
        return self._run(records, compressing=True)

    def decompress_many(self, records: Sequence[str]) -> List[str]:
        """Decompress *records* across the worker pool (order preserved)."""
        return self._run(records, compressing=False)

    # ------------------------------------------------------------------ #
    def _run(self, records: Sequence[str], compressing: bool) -> List[str]:
        records = list(records)
        if self.workers == 1 or len(records) <= self.serial_threshold:
            self.last_stats = ParallelStats(records=len(records), workers=1, chunks=1)
            if compressing:
                return [self.codec.compress(record) for record in records]
            return [self.codec.decompress(record) for record in records]

        # The historical contract tears the pool down after every call
        # (callers never close a ParallelCodec); the engine's persistent-pool
        # behaviour is reserved for ProcessPoolBackend / ZSmilesEngine users.
        with ProcessPoolBackend(
            self.codec, EngineConfig(jobs=self.workers, chunk_size=self.chunk_size)
        ) as backend:
            if compressing:
                result = backend.compress_batch(records)
            else:
                result = backend.decompress_batch(records)
        self.last_stats = ParallelStats(
            records=len(records), workers=self.workers, chunks=result.chunks
        )
        return result.records
