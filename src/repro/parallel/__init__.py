"""Parallel backends: real process-pool execution and the simulated CUDA device."""

from .executor import ParallelCodec, ParallelStats, default_worker_count
from .gpu_model import (
    CPU_PROFILE,
    GPU_PROFILE,
    WARP_SIZE,
    DeviceProfile,
    KernelCounters,
    SimulatedDevice,
)
from .kernels import compression_kernel, decompression_kernel
from .performance_model import PerformancePoint, PerformanceSweep, run_performance_sweep

__all__ = [
    "ParallelCodec",
    "ParallelStats",
    "default_worker_count",
    "CPU_PROFILE",
    "GPU_PROFILE",
    "WARP_SIZE",
    "DeviceProfile",
    "KernelCounters",
    "SimulatedDevice",
    "compression_kernel",
    "decompression_kernel",
    "PerformancePoint",
    "PerformanceSweep",
    "run_performance_sweep",
]
