"""Simulated CUDA kernels for ZSMILES compression and decompression.

These functions mirror the kernel decomposition of Section IV-E:

* **compression** — one thread block (sized to a single 32-thread warp) per
  SMILES record; each thread takes input positions in a strided fashion and
  probes the dictionary trie for matches starting at its positions, building
  the match graph; the block then runs the backward shortest-path sweep and
  emits the compressed record.
* **decompression** — one block per record; each thread looks up the expansion
  length of the symbols at its positions, the block computes a prefix sum of
  write offsets (the "share how many characters they must write" step of the
  paper) and then writes its expansions.

The kernels do the *real* work (their outputs are byte-identical to the serial
codec, which is asserted in tests) while counting instructions and memory
traffic into :class:`~repro.parallel.gpu_model.KernelCounters`; the counters
drive the execution-time estimates of the simulated devices.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.escape import iter_compressed_units
from ..core.shortest_path import ESCAPE_COST, MATCH_COST
from ..dictionary.codec_table import CodecTable
from ..errors import DecompressionError
from ..smiles.alphabet import ESCAPE_CHAR
from .gpu_model import WARP_SIZE, KernelCounters

#: Approximate cost (scalar instructions) of one trie-node traversal step
#: (hash of the child map, pointer chase, bounds checks).
_TRIE_STEP_COST = 10
#: Cost of one dynamic-programming relaxation.
_RELAX_COST = 4
#: Cost of one output character emission during compression.
_EMIT_COST = 2
#: Cost of writing one expanded character during decompression (shared-offset
#: bookkeeping plus the copy itself).
_WRITE_COST = 3
#: Cost of one dictionary lookup during decompression (table fetch + copy setup).
_LOOKUP_COST = 16
#: Bytes touched per trie-node traversal (node fetch).
_TRIE_STEP_BYTES = 8
#: Bytes per dictionary lookup (symbol -> expansion pointer + length).
_LOOKUP_BYTES = 12


def compression_kernel(
    record: str, table: CodecTable, counters: Optional[KernelCounters] = None
) -> Tuple[str, KernelCounters]:
    """Compress one record the way a warp-sized CUDA block would.

    Returns the compressed record (identical to the serial compressor's
    output) and the accumulated work counters.
    """
    counters = counters if counters is not None else KernelCounters()
    n = len(record)
    counters.blocks += 1
    counters.storage_read_bytes += n + 1

    trie = table.trie
    # Phase 1 — every thread probes the trie at its strided positions.  The
    # probe work is identical to what the serial code does; only the
    # accounting reflects that 32 threads share it.
    matches_at: List[List[Tuple[int, str]]] = [[] for _ in range(n)]
    for start in range(n):
        # Thread (start % WARP_SIZE) handles this position.
        found = trie.matches_at(record, start)
        probe_depth = 0
        node_walk = 0
        for length, _pattern, payload in found:
            probe_depth = max(probe_depth, length)
            if payload is not None:
                matches_at[start].append((length, payload))
        # The walk visits one node per character until the deepest match (at
        # least one step even on an immediate mismatch).
        node_walk = max(1, probe_depth)
        counters.instructions += node_walk * _TRIE_STEP_COST
        counters.memory_bytes += node_walk * _TRIE_STEP_BYTES + 1

    # Phase 2 — backward shortest-path sweep over the match graph (done once
    # per block; in the CUDA version this is the warp-cooperative Dijkstra).
    INF = float("inf")
    cost: List[float] = [INF] * (n + 1)
    cost[n] = 0.0
    best: List[Optional[Tuple[int, Optional[str]]]] = [None] * n
    for i in range(n - 1, -1, -1):
        cost[i] = ESCAPE_COST + cost[i + 1]
        best[i] = (1, None)
        counters.instructions += _RELAX_COST
        for length, symbol in matches_at[i]:
            counters.instructions += _RELAX_COST
            counters.memory_bytes += 4
            candidate = MATCH_COST + cost[i + length]
            if candidate < cost[i]:
                cost[i] = candidate
                best[i] = (length, symbol)

    # Phase 3 — emit the compressed record.
    out: List[str] = []
    pos = 0
    while pos < n:
        step = best[pos]
        assert step is not None
        length, symbol = step
        if symbol is None:
            out.append(ESCAPE_CHAR + record[pos])
            counters.instructions += 2 * _EMIT_COST
        else:
            out.append(symbol)
            counters.instructions += _EMIT_COST
        pos += length
    compressed = "".join(out)
    counters.memory_bytes += len(compressed)
    counters.storage_write_bytes += len(compressed) + 1
    return compressed, counters


def decompression_kernel(
    compressed: str, table: CodecTable, counters: Optional[KernelCounters] = None
) -> Tuple[str, KernelCounters]:
    """Decompress one record the way a warp-sized CUDA block would.

    Each thread resolves the expansion lengths of its strided symbol
    positions, the block prefix-sums the write offsets, and every thread then
    copies its expansions to the output buffer.
    """
    counters = counters if counters is not None else KernelCounters()
    counters.blocks += 1
    counters.storage_read_bytes += len(compressed) + 1

    # Phase 1 — per-symbol lookup of expansion lengths.
    units: List[str] = []
    for unit, is_escape in iter_compressed_units(compressed):
        if is_escape:
            units.append(unit)
            counters.instructions += _LOOKUP_COST
            counters.memory_bytes += 2
        else:
            pattern = table.pattern_for(unit)
            if pattern is None:
                raise DecompressionError(
                    f"symbol {unit!r} (U+{ord(unit):04X}) is not in the dictionary"
                )
            units.append(pattern)
            counters.instructions += _LOOKUP_COST
            counters.memory_bytes += _LOOKUP_BYTES

    # Phase 2 — warp prefix sum over the expansion lengths (log2(32) rounds).
    counters.instructions += 5 * max(1, (len(units) + WARP_SIZE - 1) // WARP_SIZE)

    # Phase 3 — each thread writes its expansions.
    output = "".join(units)
    counters.instructions += len(output) * _WRITE_COST
    counters.memory_bytes += len(output)
    counters.storage_write_bytes += len(output) + 1
    return output, counters
