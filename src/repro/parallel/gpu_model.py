"""Simulated GPU execution model (substitute for the paper's CUDA backend).

No GPU is available in this reproduction environment, so the CUDA
implementation of Section IV-E is replaced by a cycle-and-byte accounting
model: the kernels in :mod:`repro.parallel.kernels` perform the *real*
compression / decompression work while counting the instructions and memory
transactions each simulated warp issues, and a :class:`DeviceProfile` converts
those counts — plus the storage traffic that the paper identifies as the true
bottleneck — into execution-time estimates.

Two calibrated profiles are shipped, matching the paper's test machine
(Section V-A): a single core of an AMD EPYC 7282 for the serial C++ version
and an NVIDIA A100 for the CUDA version.  The absolute constants are coarse
(public spec sheets), but the *structure* of the model — identical storage
traffic on both devices, vastly different compute throughput — is what makes
the reproduction show the paper's qualitative result: compression speeds up
≈7×, decompression only ≈2×, and both curves are nearly flat in ``Lmax``
because the kernels are memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Number of threads in a CUDA warp; the paper sizes each block to one warp.
WARP_SIZE = 32


@dataclass
class KernelCounters:
    """Work accounting produced by one simulated kernel execution.

    Attributes
    ----------
    instructions:
        Scalar instructions executed (per-thread work summed over threads).
    memory_bytes:
        Bytes moved through the device memory hierarchy (input characters
        read, dictionary/trie probes, output characters written).
    storage_read_bytes / storage_write_bytes:
        Bytes exchanged with storage (the ``.smi`` / ``.zsmi`` files); this
        traffic is identical for every backend and is what bounds the
        achievable speedup.
    blocks:
        Number of thread blocks launched (one per SMILES record).
    """

    instructions: int = 0
    memory_bytes: int = 0
    storage_read_bytes: int = 0
    storage_write_bytes: int = 0
    blocks: int = 0

    def merge(self, other: "KernelCounters") -> "KernelCounters":
        """Accumulate *other* into this counter set and return ``self``."""
        self.instructions += other.instructions
        self.memory_bytes += other.memory_bytes
        self.storage_read_bytes += other.storage_read_bytes
        self.storage_write_bytes += other.storage_write_bytes
        self.blocks += other.blocks
        return self

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by reports."""
        return {
            "instructions": self.instructions,
            "memory_bytes": self.memory_bytes,
            "storage_read_bytes": self.storage_read_bytes,
            "storage_write_bytes": self.storage_write_bytes,
            "blocks": self.blocks,
        }


@dataclass(frozen=True)
class DeviceProfile:
    """Analytic device description used to turn counters into seconds.

    Attributes
    ----------
    name:
        Human-readable device name.
    compute_throughput:
        Sustained scalar instructions per second the device can retire on this
        kind of branchy, byte-oriented kernel.
    memory_bandwidth:
        Sustained bytes per second of the device memory system.
    storage_bandwidth:
        Bytes per second to/from the storage holding the SMILES files.  The
        same storage serves both devices (the paper's point about the kernels
        being memory-bound).
    launch_overhead:
        Fixed per-launch cost in seconds (kernel launch / thread-pool wake-up).
    """

    name: str
    compute_throughput: float
    memory_bandwidth: float
    storage_bandwidth: float
    launch_overhead: float = 0.0

    def execution_time(self, counters: KernelCounters) -> float:
        """Estimated wall-clock seconds for a kernel with the given counters.

        Compute and in-device memory traffic overlap (the slower of the two
        governs), while storage traffic is serial with respect to the kernel —
        exactly the structure the paper describes when it attributes the
        limited speedup to read/write operations on storage.
        """
        compute_time = counters.instructions / self.compute_throughput
        memory_time = counters.memory_bytes / self.memory_bandwidth
        storage_time = (
            counters.storage_read_bytes + counters.storage_write_bytes
        ) / self.storage_bandwidth
        return max(compute_time, memory_time) + storage_time + self.launch_overhead


#: Serial C++ implementation on one core of the paper's AMD EPYC 7282 host.
CPU_PROFILE = DeviceProfile(
    name="C++ (EPYC 7282, 1 core)",
    compute_throughput=1.0e9,      # sustained useful ops/s on branchy string code
    memory_bandwidth=12e9,         # single-core streaming bandwidth
    storage_bandwidth=2.5e8,       # effective per-process share of the parallel filesystem
    launch_overhead=0.0,
)

#: CUDA implementation on one of the paper's NVIDIA A100 cards.
GPU_PROFILE = DeviceProfile(
    name="CUDA (NVIDIA A100)",
    compute_throughput=2.0e11,     # thousands of concurrent warps hide latency
    memory_bandwidth=1.2e12,       # HBM2e sustained
    storage_bandwidth=2.5e8,       # the same storage path feeds the GPU
    launch_overhead=2.0e-5,
)


class SimulatedDevice:
    """Accumulates kernel counters and reports execution-time estimates."""

    def __init__(self, profile: DeviceProfile):
        self.profile = profile
        self.counters = KernelCounters()
        self.launches = 0

    def record(self, counters: KernelCounters) -> None:
        """Add the counters of one kernel launch."""
        self.counters.merge(counters)
        self.launches += 1

    def elapsed_seconds(self) -> float:
        """Estimated execution time of everything recorded so far."""
        base = self.profile.execution_time(self.counters)
        # launch_overhead is charged once per launch; execution_time adds one.
        return base + self.profile.launch_overhead * max(0, self.launches - 1)

    def reset(self) -> None:
        """Clear all recorded work."""
        self.counters = KernelCounters()
        self.launches = 0
