"""Figure 5 performance model: serial C++ versus CUDA across ``Lmax``.

The driver in this module runs the simulated kernels over a corpus for a set
of ``Lmax`` values and both device profiles, producing exactly the series
plotted in Figure 5a (compression) and Figure 5b (decompression): execution
times normalized to the serial implementation at the largest ``Lmax``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.codec import ZSmilesCodec
from ..dictionary.prepopulation import PrePopulation
from .gpu_model import CPU_PROFILE, GPU_PROFILE, DeviceProfile, KernelCounters, SimulatedDevice
from .kernels import compression_kernel, decompression_kernel


@dataclass
class PerformancePoint:
    """One (device, Lmax, operation) measurement of the simulated run."""

    device: str
    lmax: int
    operation: str  # "compression" | "decompression"
    seconds: float
    normalized: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)


@dataclass
class PerformanceSweep:
    """All measurements of a Figure 5 style sweep, plus headline speedups."""

    points: List[PerformancePoint]

    def series(self, device: str, operation: str) -> List[PerformancePoint]:
        """Points for one curve, ordered by Lmax."""
        return sorted(
            (p for p in self.points if p.device == device and p.operation == operation),
            key=lambda p: p.lmax,
        )

    def speedup(self, operation: str, lmax: Optional[int] = None) -> float:
        """CPU time over GPU time for *operation* (at the largest Lmax by default)."""
        cpu = self.series(CPU_PROFILE.name, operation)
        gpu = self.series(GPU_PROFILE.name, operation)
        if not cpu or not gpu:
            raise ValueError(f"no measurements for operation {operation!r}")
        if lmax is None:
            lmax = cpu[-1].lmax
        cpu_point = next(p for p in cpu if p.lmax == lmax)
        gpu_point = next(p for p in gpu if p.lmax == lmax)
        return cpu_point.seconds / gpu_point.seconds


def _simulate(
    corpus: Sequence[str],
    codec: ZSmilesCodec,
    profile: DeviceProfile,
    operation: str,
) -> PerformancePoint:
    device = SimulatedDevice(profile)
    counters = KernelCounters()
    if operation == "compression":
        prepared = [codec.preprocess(s) for s in corpus]
        for record in prepared:
            _, counters = compression_kernel(record, codec.table, counters)
    elif operation == "decompression":
        compressed = [codec.compress(s) for s in corpus]
        for record in compressed:
            _, counters = decompression_kernel(record, codec.table, counters)
    else:
        raise ValueError(f"unknown operation {operation!r}")
    device.record(counters)
    return PerformancePoint(
        device=profile.name,
        lmax=int(codec.table.metadata.get("lmax", codec.table.max_pattern_length)),
        operation=operation,
        seconds=device.elapsed_seconds(),
        counters=counters.as_dict(),
    )


def run_performance_sweep(
    training_corpus: Sequence[str],
    evaluation_corpus: Sequence[str],
    lmax_values: Sequence[int] = (5, 8, 15),
    prepopulation: PrePopulation = PrePopulation.SMILES_ALPHABET,
    profiles: Sequence[DeviceProfile] = (CPU_PROFILE, GPU_PROFILE),
) -> PerformanceSweep:
    """Reproduce the Figure 5 sweep.

    A codec is trained per ``Lmax`` value (dictionaries differ, as in the
    paper), then compression and decompression of the evaluation corpus are
    simulated on every device profile.  Times are normalized to the serial
    profile at the largest ``Lmax``, separately for compression and
    decompression, matching the figure's axes.
    """
    from ..engine.engine import ZSmilesEngine

    points: List[PerformancePoint] = []
    for lmax in lmax_values:
        codec = ZSmilesEngine.train(
            training_corpus,
            preprocessing=True,
            prepopulation=prepopulation,
            lmax=lmax,
        ).codec
        for profile in profiles:
            for operation in ("compression", "decompression"):
                point = _simulate(evaluation_corpus, codec, profile, operation)
                point.lmax = lmax
                points.append(point)

    sweep = PerformanceSweep(points=points)
    reference_lmax = max(lmax_values)
    for operation in ("compression", "decompression"):
        reference = next(
            p
            for p in sweep.points
            if p.device == profiles[0].name
            and p.operation == operation
            and p.lmax == reference_lmax
        )
        for point in sweep.points:
            if point.operation == operation:
                point.normalized = point.seconds / reference.seconds
    return sweep
