"""Experiment drivers, one per table / figure of the paper's evaluation."""

from .common import ExperimentScale, component_corpora, mixed_corpus
from .figure4 import Figure4Result, run_figure4
from .figure5 import Figure5Result, run_figure5
from .summary import HeadlineClaims, SummaryResult, run_summary
from .table1 import Table1Result, run_table1
from .table2 import Table2Result, run_table2

__all__ = [
    "ExperimentScale",
    "component_corpora",
    "mixed_corpus",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "HeadlineClaims",
    "SummaryResult",
    "run_summary",
    "Table1Result",
    "run_table1",
    "Table2Result",
    "run_table2",
]
