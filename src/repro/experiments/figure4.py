"""Figure 4 — compression-ratio comparison against other tools.

The paper compares ZSMILES against SHOCO and FSST (short-string compressors)
and Bzip2 (file-based binary compressor) on the MIXED dataset, with the
ZSMILES dictionary trained on the same dataset (to be fair to FSST's
input-dependent symbol table), plus the combined "ZSMILES + Bzip2" pipeline.
Expected shape: file-based Bzip2 wins on raw ratio but gives up random access
and readability; ZSMILES is the best of the random-access options; SHOCO is
the weakest; stacking Bzip2 on the ZSMILES output wins overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.bzip2_codec import Bzip2FileCodec
from ..baselines.fsst import FsstCodec
from ..baselines.interface import CodecProperties
from ..baselines.shoco import ShocoCodec
from ..baselines.zsmiles_adapter import ZSmilesBaseline
from ..engine import BaselineBackend
from ..metrics.reporting import ResultTable, comparison_factor
from .common import ExperimentScale, evaluation_sample, mixed_corpus, training_sample

#: Approximate values read off the paper's Figure 4 bars (MIXED dataset).
PAPER_FIGURE4: Dict[str, float] = {
    "ZSMILES": 0.29,
    "SHOCO": 0.63,
    "FSST": 0.33,
    "Bzip2": 0.18,
    "ZSMILES + Bzip2": 0.15,
}

#: Bar order used by the figure (short-string tools first, then file-based).
TOOL_ORDER: List[str] = ["ZSMILES", "SHOCO", "FSST", "Bzip2", "ZSMILES + Bzip2"]


@dataclass
class Figure4Result:
    """Measured ratios and codec properties for each tool."""

    ratios: Dict[str, float]
    properties: Dict[str, CodecProperties]
    scale: ExperimentScale

    def zsmiles_vs_fsst_factor(self) -> float:
        """The paper's headline ×1.13 comparison (FSST ratio / ZSMILES ratio)."""
        return comparison_factor(self.ratios["FSST"], self.ratios["ZSMILES"])

    def best_random_access_tool(self) -> str:
        """The best-compressing tool among those that keep random access."""
        candidates = [
            name
            for name, props in self.properties.items()
            if props.random_access and name in self.ratios
        ]
        return min(candidates, key=lambda name: self.ratios[name])

    def to_table(self) -> ResultTable:
        """Render the bars with their qualitative properties."""
        table = ResultTable(
            title="Figure 4 — compression ratio of different tools on the MIXED dataset",
            columns=["Tool", "Compression Ratio", "Paper", "Random access", "Readable"],
        )
        for name in TOOL_ORDER:
            props = self.properties.get(name)
            table.add_row(
                name,
                self.ratios[name],
                PAPER_FIGURE4[name],
                "yes" if props and props.random_access else "no",
                "yes" if props and props.readable_output else "no",
            )
        table.add_note(
            "ZSMILES and FSST are both trained on the evaluated dataset, as in the paper."
        )
        return table


def run_figure4(
    scale: Optional[ExperimentScale] = None,
    lmax: int = 8,
    corpus: Optional[Sequence[str]] = None,
) -> Figure4Result:
    """Run the tool comparison and return the measured ratios."""
    scale = scale or ExperimentScale.benchmark()
    corpus = list(corpus) if corpus is not None else mixed_corpus(scale)
    # The paper compresses the MIXED dataset with every tool and trains the
    # ZSMILES dictionary "on the same dataset" to be fair to FSST's
    # input-dependent symbol table; every trainable tool therefore fits on the
    # evaluated sample itself.
    evaluate = evaluation_sample(corpus, scale)

    ratios: Dict[str, float] = {}
    properties: Dict[str, CodecProperties] = {}

    # Every tool is measured through the engine's backend protocol: the
    # baseline codec is fitted, wrapped in a BaselineBackend, and the ratio
    # read off its batch stats — one code path per bar.
    zsmiles = ZSmilesBaseline(preprocessing=True, lmax=lmax)
    bars = {
        "ZSMILES": zsmiles,
        "SHOCO": ShocoCodec(),
        "FSST": FsstCodec(),  # FSST builds its table from the input itself
        "Bzip2": Bzip2FileCodec(),
    }
    for name, codec in bars.items():
        backend = BaselineBackend.fitted(codec, evaluate)
        ratios[name] = backend.compression_ratio(evaluate)
        properties[name] = codec.properties

    ratios["ZSMILES + Bzip2"] = zsmiles.zsmiles_plus_bzip2_ratio(evaluate)
    properties["ZSMILES + Bzip2"] = CodecProperties(
        name="ZSMILES + Bzip2", readable_output=False, random_access=False,
        shared_dictionary=True,
    )

    return Figure4Result(ratios=ratios, properties=properties, scale=scale)
