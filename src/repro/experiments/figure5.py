"""Figure 5 — normalized execution time of the C++ and CUDA implementations.

The paper measures whole-application execution time of compression (5a) and
decompression (5b) on the MIXED dataset for ``Lmax`` ∈ {5, 8, 15}, normalized
to the serial C++ implementation at the largest ``Lmax``.  Expected shape:
both backends are nearly flat in ``Lmax`` (the kernels are memory-bound), the
CUDA backend is ≈7× faster in compression and ≈2× faster in decompression.

This reproduction replaces the real hardware with the simulated devices of
:mod:`repro.parallel` (see DESIGN.md for the substitution rationale); the
kernel work counts are measured from real executions of the compression /
decompression kernels, and the device profiles convert them to time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.reporting import ResultTable
from ..parallel.gpu_model import CPU_PROFILE, GPU_PROFILE
from ..parallel.performance_model import PerformanceSweep, run_performance_sweep
from .common import ExperimentScale, evaluation_sample, mixed_corpus, training_sample

#: Lmax values swept by the paper.
LMAX_VALUES: Tuple[int, ...] = (5, 8, 15)

#: Paper-reported speedups of the CUDA version over the serial C++ version.
PAPER_SPEEDUPS: Dict[str, float] = {"compression": 7.0, "decompression": 2.0}


@dataclass
class Figure5Result:
    """Normalized time series and headline speedups of the simulated sweep."""

    sweep: PerformanceSweep
    scale: ExperimentScale

    def speedups(self) -> Dict[str, float]:
        """CUDA-over-C++ speedup for compression and decompression."""
        return {
            op: self.sweep.speedup(op) for op in ("compression", "decompression")
        }

    def normalized_series(self, operation: str) -> Dict[str, List[Tuple[int, float]]]:
        """``device name → [(lmax, normalized time), ...]`` for one operation."""
        out: Dict[str, List[Tuple[int, float]]] = {}
        for profile in (CPU_PROFILE, GPU_PROFILE):
            out[profile.name] = [
                (p.lmax, p.normalized) for p in self.sweep.series(profile.name, operation)
            ]
        return out

    def flat_in_lmax(self, operation: str, tolerance: float = 0.25) -> bool:
        """True when each backend's normalized time varies less than *tolerance* across Lmax."""
        for series in self.normalized_series(operation).values():
            values = [v for _, v in series]
            if not values:
                return False
            if max(values) - min(values) > tolerance:
                return False
        return True

    def to_tables(self) -> List[ResultTable]:
        """One table per sub-figure (5a compression, 5b decompression)."""
        tables: List[ResultTable] = []
        for label, operation in (("Figure 5a — compression", "compression"),
                                 ("Figure 5b — decompression", "decompression")):
            table = ResultTable(
                title=f"{label}: normalized execution time vs Lmax",
                columns=["Backend", *[f"Lmax={v}" for v in LMAX_VALUES]],
            )
            for device, series in self.normalized_series(operation).items():
                by_lmax = dict(series)
                table.add_row(device, *[by_lmax.get(v, float("nan")) for v in LMAX_VALUES])
            speedup = self.sweep.speedup(operation)
            table.add_note(
                f"CUDA speedup at Lmax={max(LMAX_VALUES)}: {speedup:.2f}x "
                f"(paper: {PAPER_SPEEDUPS[operation]:.0f}x)."
            )
            tables.append(table)
        return tables


def run_figure5(
    scale: Optional[ExperimentScale] = None,
    lmax_values: Sequence[int] = LMAX_VALUES,
    corpus: Optional[Sequence[str]] = None,
) -> Figure5Result:
    """Run the simulated Figure 5 sweep."""
    scale = scale or ExperimentScale.benchmark()
    corpus = list(corpus) if corpus is not None else mixed_corpus(scale)
    train = training_sample(corpus, scale)
    evaluate = evaluation_sample(corpus, scale)
    sweep = run_performance_sweep(train, evaluate, lmax_values=lmax_values)
    return Figure5Result(sweep=sweep, scale=scale)
