"""Table II — cross-dictionary compression ratios.

The paper trains one dictionary per dataset (GDB-17, MEDIATE, EXSCALATE,
MIXED) and evaluates each dictionary on every dataset, producing a 4×4 matrix
of compression ratios.  Expected shape: the diagonal (train = test) is best,
the GDB-17-trained dictionary generalizes worst (it is the most homogeneous
corpus), and the MIXED-trained dictionary has the best average ratio — which
is why the paper adopts it as the shared dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..engine import EngineConfig, ZSmilesEngine
from ..metrics.reporting import ResultTable
from .common import ExperimentScale, component_corpora

#: Dataset order used by the paper's table.
DATASET_ORDER: Tuple[str, ...] = ("GDB-17", "MEDIATE", "EXSCALATE", "MIXED")

#: Paper-reported matrix: PAPER_TABLE2[(train, test)] = ratio.
PAPER_TABLE2: Dict[Tuple[str, str], float] = {
    ("GDB-17", "GDB-17"): 0.33, ("GDB-17", "MEDIATE"): 0.60,
    ("GDB-17", "EXSCALATE"): 0.60, ("GDB-17", "MIXED"): 0.55,
    ("MEDIATE", "GDB-17"): 0.46, ("MEDIATE", "MEDIATE"): 0.29,
    ("MEDIATE", "EXSCALATE"): 0.29, ("MEDIATE", "MIXED"): 0.35,
    ("EXSCALATE", "GDB-17"): 0.52, ("EXSCALATE", "MEDIATE"): 0.36,
    ("EXSCALATE", "EXSCALATE"): 0.31, ("EXSCALATE", "MIXED"): 0.38,
    ("MIXED", "GDB-17"): 0.39, ("MIXED", "MEDIATE"): 0.33,
    ("MIXED", "EXSCALATE"): 0.30, ("MIXED", "MIXED"): 0.29,
}
# Note: the paper's table is organised with the *training* set along the
# columns and the *test* set along the rows; this module uses (train, test)
# keys throughout and renders rows per training set for readability.


@dataclass
class Table2Result:
    """Measured cross-dictionary ratio matrix."""

    ratios: Dict[Tuple[str, str], float]
    scale: ExperimentScale

    def row_average(self, train: str, exclude_self: bool = True) -> float:
        """Average ratio obtained by the *train* dictionary across test sets.

        With ``exclude_self=True`` this is the paper's "average compression
        ratio obtained by compressing other datasets".
        """
        values = [
            ratio
            for (t, s), ratio in self.ratios.items()
            if t == train and (not exclude_self or s != train)
        ]
        return sum(values) / len(values) if values else float("nan")

    def best_training_set(self) -> str:
        """Training set whose dictionary has the lowest average ratio over all test sets."""
        return min(
            DATASET_ORDER, key=lambda train: self.row_average(train, exclude_self=False)
        )

    def diagonal_is_best_per_test(self) -> bool:
        """True when, for each test set, the matching training set is among the best.

        "Among the best" allows a 2% absolute tolerance: the MIXED dictionary
        legitimately ties the diagonal on its constituent datasets (it contains
        them), as it does in the paper's own table.
        """
        for test in DATASET_ORDER:
            diag = self.ratios[(test, test)]
            best = min(self.ratios[(train, test)] for train in DATASET_ORDER)
            if diag > best + 0.02:
                return False
        return True

    def to_table(self) -> ResultTable:
        """Render the matrix (one row per training set)."""
        table = ResultTable(
            title="Table II — cross-dictionary compression ratios (rows: training set)",
            columns=["Train \\ Test", *DATASET_ORDER, "Avg (others)"],
        )
        for train in DATASET_ORDER:
            cells: List[object] = [train]
            for test in DATASET_ORDER:
                cells.append(self.ratios[(train, test)])
            cells.append(self.row_average(train))
            table.add_row(*cells)
        table.add_note(
            "Paper values for the same matrix range from 0.29 (diagonal) to 0.60 "
            "(GDB-17-trained dictionary on other datasets)."
        )
        return table


def run_table2(
    scale: Optional[ExperimentScale] = None,
    lmax: int = 8,
    preprocessing: bool = True,
    via: str = "engine",
) -> Table2Result:
    """Run the cross-dictionary experiment and return the ratio matrix.

    ``via="engine"`` (default) evaluates each dictionary on each corpus
    in memory.  ``via="repack"`` drives the production migration path
    instead: each test corpus is packed into a real library with its own
    dictionary, then re-packed with every training dictionary through
    :func:`repro.curation.repack.repack_library`, and the cell ratio is the
    re-packed library's payload bytes over the raw corpus bytes.  Stored
    records are exact per-line codec outputs, so the two modes produce the
    *same* matrix — which is precisely what graduates ``repack`` from a
    report into a supported operation.
    """
    scale = scale or ExperimentScale.benchmark()
    corpora = component_corpora(scale)

    config = EngineConfig(preprocessing=preprocessing, lmax=lmax)
    engines: Dict[str, ZSmilesEngine] = {}
    for name in DATASET_ORDER:
        engines[name] = ZSmilesEngine.train(corpora[name], config)

    if via == "repack":
        ratios = _ratios_via_repack(corpora, engines)
    elif via == "engine":
        ratios = {}
        for train in DATASET_ORDER:
            for test in DATASET_ORDER:
                ratios[(train, test)] = engines[train].evaluate(corpora[test]).ratio
    else:
        raise ValueError(f"via must be 'engine' or 'repack', got {via!r}")
    return Table2Result(ratios=ratios, scale=scale)


def _ratios_via_repack(
    corpora: Dict[str, List[str]],
    engines: Dict[str, ZSmilesEngine],
) -> Dict[Tuple[str, str], float]:
    """The matrix measured through real library packs and cross-dict repacks."""
    import tempfile
    from pathlib import Path

    from ..core.compressor import record_bytes
    from ..curation.repack import repack_library
    from ..library.writer import pack_library

    ratios: Dict[Tuple[str, str], float] = {}
    with tempfile.TemporaryDirectory(prefix="zsmiles-table2-") as tmp_name:
        tmp = Path(tmp_name)
        for test in DATASET_ORDER:
            # +1 per record: the newline terminator, matching evaluate()'s
            # accounting on both sides of the ratio.
            raw_bytes = sum(record_bytes(s) + 1 for s in corpora[test])
            source = pack_library(
                tmp / f"{test}.library", corpora[test], engines[test], shards=2
            )
            for train in DATASET_ORDER:
                result = repack_library(
                    source.directory,
                    tmp / f"{test}--{train}.library",
                    engines[train].table,
                )
                ratios[(train, test)] = result.info.payload_bytes / raw_bytes
    return ratios
