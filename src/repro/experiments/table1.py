"""Table I — compression ratios under the dictionary optimizations.

The paper's Table I crosses the two proposed optimizations:

* pre-processing (ring-identifier reuse) on / off,
* dictionary pre-population with printable ASCII / the SMILES alphabet / none,

training each dictionary on a random sample of the MIXED dataset and
measuring the compression ratio on the same dataset.  Expected shape: every
pre-processed row beats its unprocessed counterpart, and the SMILES-alphabet
pre-population gives the best ratio overall (0.29 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dictionary.prepopulation import PrePopulation
from ..engine import EngineConfig, ZSmilesEngine
from ..metrics.reporting import ResultTable
from .common import ExperimentScale, evaluation_sample, mixed_corpus, training_sample

#: Paper-reported compression ratios, keyed by (preprocessing, prepopulation).
PAPER_TABLE1: Dict[Tuple[bool, PrePopulation], float] = {
    (True, PrePopulation.PRINTABLE): 0.32,
    (False, PrePopulation.PRINTABLE): 0.35,
    (True, PrePopulation.SMILES_ALPHABET): 0.29,
    (False, PrePopulation.SMILES_ALPHABET): 0.32,
    (True, PrePopulation.NONE): 0.33,
    (False, PrePopulation.NONE): 0.35,
}

#: Row order used by the paper's table.
ROW_ORDER: List[Tuple[bool, PrePopulation]] = [
    (True, PrePopulation.PRINTABLE),
    (False, PrePopulation.PRINTABLE),
    (True, PrePopulation.SMILES_ALPHABET),
    (False, PrePopulation.SMILES_ALPHABET),
    (True, PrePopulation.NONE),
    (False, PrePopulation.NONE),
]


@dataclass
class Table1Result:
    """Measured ratios for every optimization combination."""

    ratios: Dict[Tuple[bool, PrePopulation], float]
    scale: ExperimentScale

    def best(self) -> Tuple[Tuple[bool, PrePopulation], float]:
        """The best (lowest-ratio) configuration."""
        key = min(self.ratios, key=self.ratios.get)
        return key, self.ratios[key]

    def preprocessing_always_helps(self) -> bool:
        """True when, for every pre-population policy, preprocessing lowers the ratio."""
        for policy in PrePopulation:
            with_prep = self.ratios.get((True, policy))
            without = self.ratios.get((False, policy))
            if with_prep is None or without is None:
                continue
            if with_prep > without:
                return False
        return True

    def to_table(self) -> ResultTable:
        """Render in the paper's row order, with the paper's numbers alongside."""
        table = ResultTable(
            title="Table I — ZSMILES compression ratios with different dictionaries",
            columns=["Pre-processing", "Pre-population", "Compression Ratio", "Paper"],
        )
        names = {
            PrePopulation.PRINTABLE: "Printable",
            PrePopulation.SMILES_ALPHABET: "SMILES alphabet",
            PrePopulation.NONE: "None",
        }
        for key in ROW_ORDER:
            preprocessing, policy = key
            table.add_row(
                "Yes" if preprocessing else "No",
                names[policy],
                self.ratios[key],
                PAPER_TABLE1[key],
            )
        table.add_note(
            "Measured on the synthetic MIXED corpus "
            f"(train={self.scale.training_size}, eval={self.scale.evaluation_size})."
        )
        return table


def run_table1(
    scale: Optional[ExperimentScale] = None,
    lmax: int = 8,
    corpus: Optional[Sequence[str]] = None,
) -> Table1Result:
    """Run the Table I ablation and return the measured ratios.

    Parameters
    ----------
    scale:
        Corpus sizes; defaults to :meth:`ExperimentScale.benchmark`.
    lmax:
        Maximum pattern length used for every dictionary.
    corpus:
        Pre-generated MIXED corpus (generated from *scale* when omitted).
    """
    scale = scale or ExperimentScale.benchmark()
    corpus = list(corpus) if corpus is not None else mixed_corpus(scale)
    train = training_sample(corpus, scale)
    evaluate = evaluation_sample(corpus, scale)

    ratios: Dict[Tuple[bool, PrePopulation], float] = {}
    for preprocessing, policy in ROW_ORDER:
        config = EngineConfig(
            preprocessing=preprocessing, prepopulation=policy, lmax=lmax
        )
        engine = ZSmilesEngine.train(train, config)
        ratios[(preprocessing, policy)] = engine.evaluate(evaluate).ratio
    return Table1Result(ratios=ratios, scale=scale)
