"""Shared configuration for the experiment drivers.

Each driver reproduces one table or figure of the paper.  The paper runs on
corpora of 50 000+ SMILES; a pure-Python reproduction on a laptop scales the
corpus size down by default, with the knobs collected here so benchmarks,
tests and the CLI can all pick an appropriate size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..datasets import mixed
from ..datasets.sampling import random_sample


@dataclass(frozen=True)
class ExperimentScale:
    """How much data an experiment run uses.

    Attributes
    ----------
    training_size:
        Number of SMILES used to train dictionaries.
    evaluation_size:
        Number of SMILES used to measure compression ratios.
    per_dataset_size:
        Records generated per dataset for the cross-dictionary matrix.
    seed:
        Base RNG seed for dataset generation and sampling.
    """

    training_size: int = 2000
    evaluation_size: int = 2000
    per_dataset_size: int = 1500
    seed: int = 0

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Tiny scale used by the unit/integration tests (seconds, not minutes)."""
        return cls(training_size=300, evaluation_size=300, per_dataset_size=250, seed=0)

    @classmethod
    def benchmark(cls) -> "ExperimentScale":
        """Default scale used by the benchmark harness."""
        return cls(training_size=2000, evaluation_size=2000, per_dataset_size=1500, seed=0)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Paper-faithful scale (Table I trains on 50 000 sampled SMILES).

        Running at this scale takes tens of minutes in pure Python; it is
        provided for completeness and used by the CLI's ``--scale paper``.
        """
        return cls(training_size=50_000, evaluation_size=50_000, per_dataset_size=20_000, seed=0)


def mixed_corpus(scale: ExperimentScale) -> List[str]:
    """The MIXED corpus used by Table I, Figure 4 and Figure 5."""
    total = max(scale.training_size, scale.evaluation_size)
    return mixed.generate(total, seed=scale.seed)


def training_sample(corpus: Sequence[str], scale: ExperimentScale) -> List[str]:
    """Random training sample drawn from *corpus* (Table I trains on a sample)."""
    return random_sample(list(corpus), scale.training_size, seed=scale.seed)


def evaluation_sample(corpus: Sequence[str], scale: ExperimentScale) -> List[str]:
    """Evaluation sample drawn from *corpus* (the paper evaluates on the same set)."""
    return random_sample(list(corpus), scale.evaluation_size, seed=scale.seed + 1)


def component_corpora(scale: ExperimentScale) -> Dict[str, List[str]]:
    """The four datasets of Table II (GDB-17, MEDIATE, EXSCALATE, MIXED)."""
    return mixed.generate_components(scale.per_dataset_size, seed=scale.seed)
