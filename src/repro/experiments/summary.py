"""Headline-claim summary across all reproduced experiments.

The paper's abstract makes three quantitative claims:

* ZSMILES compresses up to a 0.29 ratio (Table I, best configuration),
* it compresses ×1.13 better than the comparable state of the art (FSST) in a
  like-for-like setting (Figure 4),
* the CUDA implementation is ≈7× faster in compression and ≈2× in
  decompression than the serial one (Figure 5).

This module runs the relevant experiments at one scale and collects the
measured counterparts of each claim, which EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..metrics.reporting import ResultTable
from .common import ExperimentScale, mixed_corpus
from .figure4 import Figure4Result, run_figure4
from .figure5 import Figure5Result, run_figure5
from .table1 import Table1Result, run_table1


@dataclass
class HeadlineClaims:
    """Measured values for the abstract's quantitative claims."""

    best_ratio: float
    zsmiles_vs_fsst: float
    compression_speedup: float
    decompression_speedup: float

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Headline claims — paper vs measured",
            columns=["Claim", "Paper", "Measured"],
        )
        table.add_row("Best compression ratio (Table I)", 0.29, self.best_ratio)
        table.add_row("ZSMILES vs FSST factor (Figure 4)", 1.13, self.zsmiles_vs_fsst)
        table.add_row("CUDA compression speedup (Figure 5a)", 7.0, self.compression_speedup)
        table.add_row("CUDA decompression speedup (Figure 5b)", 2.0, self.decompression_speedup)
        return table


@dataclass
class SummaryResult:
    """Everything the summary run produced, for reuse by callers."""

    table1: Table1Result
    figure4: Figure4Result
    figure5: Figure5Result
    claims: HeadlineClaims


def run_summary(scale: Optional[ExperimentScale] = None) -> SummaryResult:
    """Run Table I, Figure 4 and Figure 5 and derive the headline claims."""
    scale = scale or ExperimentScale.benchmark()
    corpus = mixed_corpus(scale)
    table1 = run_table1(scale=scale, corpus=corpus)
    figure4 = run_figure4(scale=scale, corpus=corpus)
    figure5 = run_figure5(scale=scale, corpus=corpus)
    _, best_ratio = table1.best()
    claims = HeadlineClaims(
        best_ratio=best_ratio,
        zsmiles_vs_fsst=figure4.zsmiles_vs_fsst_factor(),
        compression_speedup=figure5.speedups()["compression"],
        decompression_speedup=figure5.speedups()["decompression"],
    )
    return SummaryResult(table1=table1, figure4=figure4, figure5=figure5, claims=claims)
