"""Bounded samplers for single-pass dictionary training during ingest.

Training a dictionary wants a representative slice of the corpus, but the
ingest stream may be arbitrarily large and is consumed exactly once.  The
samplers here hold at most ``capacity`` records while the stream flows past
(tee'd in via :func:`repro.curation.pipeline.tee`):

* :class:`ReservoirSampler` — Vitter's algorithm R: every record seen has
  equal probability ``capacity / seen`` of being in the final sample,
  regardless of stream length.  Deterministic for a fixed seed and stream.
* :class:`HeadSampler` — first ``capacity`` records; cheapest, right when
  the source is already shuffled.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from ..errors import CurationError


class ReservoirSampler:
    """Uniform bounded sample of a stream (algorithm R), seedable."""

    def __init__(self, capacity: int, seed: int = 0):
        if capacity <= 0:
            raise CurationError("sampler capacity must be positive")
        self.capacity = capacity
        self.seen = 0
        self._rng = random.Random(seed)
        self._sample: List[str] = []

    def add(self, record: str) -> None:
        self.seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(record)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self._sample[slot] = record

    @property
    def sample(self) -> List[str]:
        """The current sample (a copy; order is reservoir order, not stream order)."""
        return list(self._sample)

    def __len__(self) -> int:
        return len(self._sample)


class HeadSampler:
    """Keep the first ``capacity`` records of the stream."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise CurationError("sampler capacity must be positive")
        self.capacity = capacity
        self.seen = 0
        self._sample: List[str] = []

    def add(self, record: str) -> None:
        self.seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(record)

    @property
    def sample(self) -> List[str]:
        return list(self._sample)

    def __len__(self) -> int:
        return len(self._sample)


def make_sampler(kind: str, capacity: int, seed: int = 0):
    """Factory used by the CLI: ``reservoir`` or ``head``."""
    if kind == "reservoir":
        return ReservoirSampler(capacity, seed=seed)
    if kind == "head":
        return HeadSampler(capacity)
    raise CurationError(f"unknown sampler kind {kind!r} (expected reservoir or head)")


def train_on_sample(
    records: Iterable[str],
    capacity: int,
    seed: int = 0,
    sampler: Optional[object] = None,
    **train_kwargs,
):
    """Drain *records* through a bounded sampler and train an engine on it.

    Returns ``(engine, sampler)`` — the sampler exposes ``seen`` (stream
    length) and the sample that trained the dictionary.  One pass, bounded
    memory: this is the ``zsmiles train-dict`` core.
    """
    from ..engine import ZSmilesEngine

    if sampler is None:
        sampler = ReservoirSampler(capacity, seed=seed)
    for record in records:
        sampler.add(record)
    sample = sampler.sample
    if not sample:
        raise CurationError("cannot train a dictionary: the stream yielded no records")
    engine = ZSmilesEngine.train(sample, **train_kwargs)
    return engine, sampler
