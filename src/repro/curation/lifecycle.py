"""Dictionary lifecycle: pin an identity, save/load with verification.

A dictionary's *identity* is its content hash (:func:`content_hash` over the
pre-population policy and every entry) plus optional human-facing name and
version labels.  Pinning writes the labels — and a declared ``entries``
count that doubles as a truncation tripwire — into the table metadata, so
they travel inside the ``.dct`` file; the hash itself is never stored in the
dictionary (it is recomputed on load) but *is* recorded in every
``library.json`` manifest and shard footer that was packed with it, which is
what lets loads verify agreement and raise
:class:`~repro.errors.DictionaryMismatchError` instead of silently decoding
garbage with the wrong table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

from ..dictionary.codec_table import CodecTable
from ..dictionary.serialization import (
    ENTRIES_META_KEY,
    NAME_META_KEY,
    VERSION_META_KEY,
    DictionaryIdentity,
    content_hash,
    load,
    save,
    verify_identity,
)

__all__ = [
    "DictionaryIdentity",
    "content_hash",
    "verify_identity",
    "pin_identity",
    "identity_of",
    "save_pinned",
    "load_verified",
]


def pin_identity(
    table: CodecTable,
    name: Optional[str] = None,
    version: Optional[str] = None,
) -> CodecTable:
    """A copy of *table* with name/version labels and a declared entry count.

    The declared ``entries`` count is validated on every subsequent load
    (see :func:`repro.dictionary.serialization.loads`), turning silent
    truncation into a typed error.  Pinning does not change the content
    hash — identity metadata is deliberately excluded from it.
    """
    metadata = table.metadata
    if name is not None:
        metadata[NAME_META_KEY] = name
    if version is not None:
        metadata[VERSION_META_KEY] = version
    metadata[ENTRIES_META_KEY] = str(len(table))
    return CodecTable(
        table.entries, prepopulation=table.prepopulation, metadata=metadata
    )


def identity_of(table: CodecTable) -> DictionaryIdentity:
    """The identity of *table* (content hash + metadata name/version)."""
    return DictionaryIdentity.of(table)


def save_pinned(
    table: CodecTable,
    path: Union[str, Path],
    name: Optional[str] = None,
    version: Optional[str] = None,
) -> DictionaryIdentity:
    """Pin *table*'s identity and save it; returns the pinned identity."""
    pinned = pin_identity(table, name=name, version=version)
    save(pinned, path)
    return DictionaryIdentity.of(pinned)


def load_verified(
    path: Union[str, Path],
    expected_hash: Optional[str] = None,
) -> Tuple[CodecTable, DictionaryIdentity]:
    """Load a ``.dct`` and (optionally) verify its content hash.

    Returns ``(table, identity)``.  With *expected_hash* set — typically the
    hash a ``library.json`` manifest pins — a disagreement raises
    :class:`~repro.errors.DictionaryMismatchError` naming the path.
    """
    table = load(path)
    if expected_hash is not None:
        identity = verify_identity(table, expected_hash, source=path)
    else:
        identity = DictionaryIdentity.of(table)
    return table, identity
