"""Corpus curation: streaming ingest, bounded sampling, dictionary lifecycle.

This subsystem turns raw, arbitrarily large SMILES dumps into packed,
dictionary-pinned corpus libraries, and migrates live libraries between
dictionaries.  Three pillars:

* **Streaming ingest** (:mod:`~repro.curation.pipeline`,
  :mod:`~repro.curation.filters`) — a single bounded-memory pass over any
  line source: composable filters (strip, largest fragment, charge/length/
  carbon gates, canonicalisation through :mod:`repro.smiles`), hash-based
  streaming dedup, and per-stage accept/reject counters that always tally
  against the lines seen.
* **Bounded sampling** (:mod:`~repro.curation.sampling`) — reservoir/head
  samplers tee'd into the same pass, so a dictionary can be trained on a
  uniform sample of a corpus that is only ever streamed once.
* **Dictionary lifecycle + re-pack** (:mod:`~repro.curation.lifecycle`,
  :mod:`~repro.curation.repack`) — content-hashed dictionary identities
  pinned in ``.dct`` metadata, ``library.json`` manifests and shard
  footers, verified on load; and loss-free migration of a packed library
  from dictionary A to dictionary B.

The dictionary lifecycle, end to end
------------------------------------

**1. Train** a dictionary on a bounded sample of the ingest stream::

    from repro.curation import IngestPipeline, default_filters, train_on_sample

    pipeline = IngestPipeline(default_filters(canonicalize=True))
    engine, sampler = train_on_sample(
        pipeline.process("chembl_dump.smi"), capacity=100_000, seed=7,
    )

**2. Pin** its identity — name, version and a declared entry count that
turns later truncation into a typed error — and save it::

    from repro.curation import save_pinned

    identity = save_pinned(engine.table, "chembl.dct",
                           name="chembl", version="2026.08")

**3. Serve**: pack libraries with the pinned dictionary; the manifest and
every shard footer record its content hash, loads verify agreement
(:class:`~repro.errors.DictionaryMismatchError` on a wrong or corrupt
dictionary), and ``CorpusServer /stats`` reports the identity::

    from repro.library import pack_library_file

    info = pack_library_file("curated.smi", engine=engine, shards=4)
    info.manifest.dictionary_identity()   # hash pinned, name='chembl'

**4. Migrate**: when a better dictionary lands, re-pack the live library —
old shards untouched until the new manifest validates, readback
byte-identical to the source::

    from repro.curation import repack_library

    result = repack_library("corpus.library", "corpus.v2.library",
                            "chembl-v2.dct", shard_jobs=4)
    result.target_identity.label()

The same loop is exposed on the command line as ``zsmiles ingest``,
``zsmiles train-dict`` and ``zsmiles repack``.
"""

from .filters import (
    RecordFilter,
    canonical_filter,
    carbon_filter,
    charge_filter,
    column_filter,
    count_carbons,
    default_filters,
    is_charged,
    largest_fragment_filter,
    length_filter,
    strip_filter,
)
from .lifecycle import (
    DictionaryIdentity,
    content_hash,
    identity_of,
    load_verified,
    pin_identity,
    save_pinned,
    verify_identity,
)
from .pipeline import (
    DEDUP_STAGE,
    IngestPipeline,
    IngestStats,
    StageCount,
    ingest_to_file,
    ingest_to_store,
    iter_source,
    tee,
)
from .repack import RepackResult, repack_engine, repack_library, resolve_dictionary
from .sampling import HeadSampler, ReservoirSampler, make_sampler, train_on_sample

__all__ = [
    "RecordFilter",
    "canonical_filter",
    "carbon_filter",
    "charge_filter",
    "column_filter",
    "count_carbons",
    "default_filters",
    "is_charged",
    "largest_fragment_filter",
    "length_filter",
    "strip_filter",
    "DictionaryIdentity",
    "content_hash",
    "identity_of",
    "load_verified",
    "pin_identity",
    "save_pinned",
    "verify_identity",
    "DEDUP_STAGE",
    "IngestPipeline",
    "IngestStats",
    "StageCount",
    "ingest_to_file",
    "ingest_to_store",
    "iter_source",
    "tee",
    "RepackResult",
    "repack_engine",
    "repack_library",
    "resolve_dictionary",
    "HeadSampler",
    "ReservoirSampler",
    "make_sampler",
    "train_on_sample",
]
