"""Composable record filters for the streaming ingest pipeline.

A filter is a *pure* callable ``(record: str) -> Optional[str]`` with a
``name``: it either returns the (possibly transformed) record to keep, or
``None`` to reject it.  Purity is a contract the property tests pin —
calling a filter twice on the same input must give the same answer, and a
filter's output must be a fixpoint of itself (``f(f(x)) == f(x)`` whenever
``f(x)`` is not ``None``) so that re-ingesting an already curated corpus is
a no-op.

The built-in filters mirror what real ingest pipelines (DrugEx-style
dataset construction) do to raw multi-source SMILES dumps:

* :func:`strip_filter` — trim surrounding whitespace, drop blank lines.
* :func:`column_filter` — pull the SMILES column out of delimited rows.
* :func:`largest_fragment_filter` — keep the largest ``.``-separated
  fragment of a multi-component record (salts, counter-ions).
* :func:`charge_filter` — drop records containing charged bracket atoms.
* :func:`length_filter` — bound record length.
* :func:`carbon_filter` — drop records with too few carbon atoms to be
  drug-like.
* :func:`canonical_filter` — parse through :mod:`repro.smiles` and rewrite,
  rejecting unparsable records; the written form is a fixpoint of the
  parser/writer pair, which is what makes dedup meaningful across sources
  that format the same molecule differently.
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Sequence

from ..errors import CurationError

FilterFn = Callable[[str], Optional[str]]


class RecordFilter:
    """One named, pure record transform/reject stage."""

    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn: FilterFn):
        if not name:
            raise CurationError("a filter needs a non-empty name")
        self.name = name
        self._fn = fn

    def __call__(self, record: str) -> Optional[str]:
        return self._fn(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordFilter({self.name!r})"


# --------------------------------------------------------------------------- #
# Built-in filters
# --------------------------------------------------------------------------- #
def strip_filter() -> RecordFilter:
    """Trim surrounding whitespace; reject records that are blank after it."""

    def apply(record: str) -> Optional[str]:
        stripped = record.strip()
        return stripped if stripped else None

    return RecordFilter("strip", apply)


def column_filter(index: int = 0, sep: Optional[str] = None) -> RecordFilter:
    """Keep column *index* of a delimited row (default: whitespace-split).

    Rows without that column are rejected.  Already single-column records
    pass through unchanged, so the filter is idempotent.
    """
    if index < 0:
        raise CurationError("column index must be >= 0")

    def apply(record: str) -> Optional[str]:
        fields = record.split(sep)
        if index >= len(fields) or not fields[index]:
            return None
        return fields[index]

    return RecordFilter(f"column[{index}]", apply)


def largest_fragment_filter() -> RecordFilter:
    """Keep the largest ``.``-separated fragment (leftmost wins ties)."""

    def apply(record: str) -> Optional[str]:
        if "." not in record:
            return record
        fragment = max(record.split("."), key=len)
        return fragment if fragment else None

    return RecordFilter("largest_fragment", apply)


_BRACKET_ATOM = re.compile(r"\[[^\]]*\]")


def is_charged(record: str) -> bool:
    """Whether *record* contains a charged bracket atom (``[O-]``, ``[N+2]``...).

    Charge in SMILES only ever appears inside bracket atoms; ``+``/``-``
    outside brackets are bond/direction symbols and do not count.
    """
    return any(
        "+" in atom or "-" in atom for atom in _BRACKET_ATOM.findall(record)
    )


def charge_filter() -> RecordFilter:
    """Reject records containing charged bracket atoms."""

    def apply(record: str) -> Optional[str]:
        return None if is_charged(record) else record

    return RecordFilter("uncharged", apply)


def length_filter(min_length: int = 1, max_length: Optional[int] = None) -> RecordFilter:
    """Reject records shorter than *min_length* or longer than *max_length*."""
    if min_length < 0:
        raise CurationError("min_length must be >= 0")
    if max_length is not None and max_length < min_length:
        raise CurationError("max_length must be >= min_length")

    def apply(record: str) -> Optional[str]:
        if len(record) < min_length:
            return None
        if max_length is not None and len(record) > max_length:
            return None
        return record

    return RecordFilter(f"length[{min_length},{max_length or '*'}]", apply)


#: Carbon atoms: aromatic ``c``, or ``C`` not starting the two-letter ``Cl``.
_CARBON = re.compile(r"c|C(?!l)")


def count_carbons(record: str) -> int:
    """Heuristic carbon count (``C``/``c`` occurrences, ``Cl`` excluded)."""
    return len(_CARBON.findall(record))


def carbon_filter(min_carbons: int = 2) -> RecordFilter:
    """Reject records with fewer than *min_carbons* carbon atoms.

    The DrugEx drug-likeness floor: a molecule with fewer than two carbons
    cannot be drug-like and only pollutes dictionary training.
    """
    if min_carbons < 0:
        raise CurationError("min_carbons must be >= 0")

    def apply(record: str) -> Optional[str]:
        return record if count_carbons(record) >= min_carbons else None

    return RecordFilter(f"carbon[{min_carbons}]", apply)


def canonical_filter() -> RecordFilter:
    """Canonicalise through :mod:`repro.smiles`; reject unparsable records.

    ``write(parse(record))`` is a fixpoint of the parser/writer pair (the
    property suite pins this), so two differently-formatted spellings of
    the same structure converge before dedup sees them.
    """
    from ..errors import SmilesError
    from ..smiles import parse, write

    def apply(record: str) -> Optional[str]:
        try:
            return write(parse(record))
        except SmilesError:
            return None

    return RecordFilter("canonicalize", apply)


def default_filters(
    canonicalize: bool = False,
    largest_fragment: bool = True,
    drop_charged: bool = False,
    min_length: int = 1,
    max_length: Optional[int] = None,
    min_carbons: int = 0,
) -> List[RecordFilter]:
    """The standard ingest filter chain, in the order real pipelines run it.

    Strip → column extraction is left to the caller (raw dumps vary); the
    chain here starts from a whitespace-trimmed record: largest fragment
    first (so later judgments see the kept fragment), then charge/length/
    carbon gates, then canonicalisation last (it is the expensive stage, so
    it only runs on records that survived the cheap gates).
    """
    filters: List[RecordFilter] = [strip_filter()]
    if largest_fragment:
        filters.append(largest_fragment_filter())
    if drop_charged:
        filters.append(charge_filter())
    if min_length > 1 or max_length is not None:
        filters.append(length_filter(min_length, max_length))
    if min_carbons > 0:
        filters.append(carbon_filter(min_carbons))
    if canonicalize:
        filters.append(canonical_filter())
    return filters


def validate_filters(filters: Sequence[RecordFilter]) -> None:
    """Reject filter chains with duplicate stage names (counters key on them)."""
    seen = set()
    for record_filter in filters:
        if record_filter.name in seen:
            raise CurationError(f"duplicate filter name {record_filter.name!r}")
        seen.add(record_filter.name)
