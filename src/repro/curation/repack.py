"""Cross-dictionary re-pack: migrate a live library to a new dictionary.

``repack_library`` decompresses every record of a source library with the
dictionary it was packed with (dictionary A, resolved from the embedded
``.dct`` per shard), recompresses with dictionary B and writes a brand-new
library — shard-parallel through the existing ``shard_jobs`` machinery —
whose manifest pins B's identity.  The destination must be a different
directory: the source shards are never touched, and the new library only
becomes addressable once its ``library.json`` has been written *and*
validated (record count, full readback when ``verify=True``, manifest
identity), so a failed or interrupted repack leaves both corpora intact.

Because stored records are exact decompression outputs and dictionary B is
applied through an *identity* preprocessing pipeline, the repacked library's
readback is byte-identical to the source corpus — and the shard bytes are
byte-identical to a fresh pack of the same records with dictionary B (the
parity tests pin both).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..core.codec import ZSmilesCodec
from ..dictionary.codec_table import CodecTable
from ..dictionary.serialization import DictionaryIdentity, load as load_dictionary
from ..engine.engine import ZSmilesEngine
from ..errors import CurationError
from ..library.facade import CorpusLibrary
from ..library.writer import LibraryInfo, LibraryWriter
from ..preprocess.pipeline import PreprocessingPipeline

PathLike = Union[str, Path]
DictionarySource = Union[str, Path, CodecTable, ZSmilesCodec, ZSmilesEngine]


@dataclass(frozen=True)
class RepackResult:
    """Outcome of one library re-pack.

    Attributes
    ----------
    info:
        The new library's :class:`~repro.library.writer.LibraryInfo`.
    records:
        Records migrated (equals the source library's length).
    source_identity:
        Dictionary identity the source manifest pinned (``None`` for
        pre-lifecycle libraries).
    target_identity:
        Identity of the dictionary the new library is packed with.
    """

    info: LibraryInfo
    records: int
    source_identity: Optional[DictionaryIdentity]
    target_identity: DictionaryIdentity

    @property
    def directory(self) -> Path:
        return self.info.directory

    @property
    def manifest_path(self) -> Path:
        return self.info.manifest_path


def resolve_dictionary(dictionary: DictionarySource) -> CodecTable:
    """A :class:`CodecTable` out of whatever names a dictionary.

    Accepts a ``.dct`` path, a table, a codec, or an engine.
    """
    if isinstance(dictionary, ZSmilesEngine):
        return dictionary.table
    if isinstance(dictionary, ZSmilesCodec):
        return dictionary.table
    if isinstance(dictionary, CodecTable):
        return dictionary
    return load_dictionary(dictionary)


def repack_engine(dictionary: DictionarySource, backend: Optional[str] = None) -> ZSmilesEngine:
    """An engine over *dictionary* with an **identity** preprocessing pipeline.

    Source records are exact decompression outputs — already preprocessed
    when they were first packed — so running them through a preprocessing
    pipeline again is at best a no-op and at worst a rewrite.  The identity
    pipeline guarantees ``decompress(compress(record)) == record`` byte for
    byte, which is what makes repack loss-free.
    """
    table = resolve_dictionary(dictionary)
    codec = ZSmilesCodec(table, pipeline=PreprocessingPipeline.identity())
    if backend is None:
        return ZSmilesEngine.from_codec(codec)
    return ZSmilesEngine.from_codec(codec, backend=backend)


def repack_library(
    source: PathLike,
    directory: PathLike,
    dictionary: DictionarySource,
    shards: Optional[int] = None,
    records_per_block: Optional[int] = None,
    backend: Optional[str] = None,
    shard_jobs: Optional[int] = None,
    verify: bool = True,
) -> RepackResult:
    """Re-pack the library at *source* into *directory* with a new dictionary.

    Parameters
    ----------
    source:
        Existing library (directory, ``library.json`` or bare ``.zss``).
    directory:
        Destination library directory; must differ from the source's root.
    dictionary:
        Dictionary B (path, table, codec or engine).
    shards / records_per_block:
        Layout of the new library; default: mirror the source layout.
    shard_jobs:
        Pack whole shards concurrently, as ``zsmiles pack --shard-jobs``.
    verify:
        Read the whole new library back and compare against the source
        records before returning (the safety net that keeps a bad repack
        from ever being handed to callers).

    Raises :class:`~repro.errors.CurationError` on a same-directory repack
    or a failed validation.
    """
    source = Path(source)
    directory = Path(directory)
    with CorpusLibrary.open(source) as library:
        source_root = library.path if library.path.is_dir() else library.path.parent
        if directory.resolve() == source_root.resolve():
            raise CurationError(
                "repack destination must be a different directory: the source "
                "library stays untouched until the new one validates"
            )
        records = list(library.iter_all())
        source_identity = library.dictionary_identity()
        if shards is None:
            shards = library.shard_count
        if records_per_block is None:
            records_per_block = library.manifest.shards[0].records_per_block
    with repack_engine(dictionary, backend=backend) as engine:
        target_identity = DictionaryIdentity.of(engine.table)
        writer = LibraryWriter(
            directory,
            engine,
            shards=shards,
            records_per_block=records_per_block,
            metadata={"repacked_from": str(source)},
            shard_jobs=shard_jobs,
        )
        info = writer.pack(records)
    _validate_repack(directory, records, target_identity, verify=verify)
    return RepackResult(
        info=info,
        records=len(records),
        source_identity=source_identity,
        target_identity=target_identity,
    )


def _validate_repack(
    directory: Path,
    records,
    target_identity: DictionaryIdentity,
    verify: bool,
) -> None:
    """Post-pack validation: count, pinned identity, optional full readback."""
    with CorpusLibrary.open(directory) as packed:
        if len(packed) != len(records):
            raise CurationError(
                f"repack wrote {len(packed)} records, expected {len(records)}"
            )
        pinned = packed.dictionary_identity()
        if pinned is None or pinned.hash != target_identity.hash:
            raise CurationError(
                "repacked manifest does not pin the target dictionary identity"
            )
        if verify:
            for index, (got, want) in enumerate(zip(packed.iter_all(), records)):
                if got != want:
                    raise CurationError(
                        f"repack readback diverges at record {index}: "
                        f"{got!r} != {want!r}"
                    )
