"""Bounded-memory streaming ingest: filters → dedup → sink.

The pipeline is a single forward pass over a line source of any size.  Each
record flows through the filter chain (:mod:`repro.curation.filters`), then
through hash-based streaming dedup, and out through a generator — nothing is
ever materialised except the dedup digest set (16 bytes per *unique* record)
and whatever sink the caller attaches.  Per-stage accept/reject counters are
kept for every run and must tally: each stage's ``seen`` equals the previous
stage's ``accepted``, and rejected + accepted == seen, so a full audit of
where every input line went is always available (:class:`IngestStats`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from ..core.streaming import read_lines, write_lines
from ..errors import CurationError
from .filters import RecordFilter, validate_filters

LineSource = Union[str, Path, Iterable[str]]

#: blake2b digest size for streaming dedup: 16 bytes keeps the set compact
#: while making accidental collisions over even billion-line corpora
#: vanishingly unlikely (~2^-64 at 2^32 records).
DEDUP_DIGEST_SIZE = 16

#: Stage name used for the dedup counters (reserved; filters may not use it).
DEDUP_STAGE = "dedup"


@dataclass
class StageCount:
    """Accept/reject tally for one pipeline stage."""

    seen: int = 0
    accepted: int = 0
    rejected: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"seen": self.seen, "accepted": self.accepted, "rejected": self.rejected}


@dataclass
class IngestStats:
    """Full accounting of one ingest run.

    ``lines_in`` counts every line drawn from the source; ``records_out``
    counts records the pipeline emitted.  ``stages`` maps stage name to its
    :class:`StageCount` in pipeline order; the counters are chained —
    ``stages[i].seen == stages[i-1].accepted`` — so the audit
    ``lines_in == records_out + sum(rejected)`` always holds
    (:meth:`check`).
    """

    lines_in: int = 0
    records_out: int = 0
    stages: Dict[str, StageCount] = field(default_factory=dict)

    def rejected_total(self) -> int:
        return sum(stage.rejected for stage in self.stages.values())

    def check(self) -> None:
        """Assert internal consistency; raises :class:`CurationError` if broken."""
        previous = self.lines_in
        for name, stage in self.stages.items():
            if stage.seen != previous:
                raise CurationError(
                    f"stage {name!r} saw {stage.seen} records but upstream "
                    f"accepted {previous}"
                )
            if stage.accepted + stage.rejected != stage.seen:
                raise CurationError(
                    f"stage {name!r} counters do not tally: "
                    f"{stage.accepted} + {stage.rejected} != {stage.seen}"
                )
            previous = stage.accepted
        if self.records_out != previous:
            raise CurationError(
                f"pipeline emitted {self.records_out} records but the last "
                f"stage accepted {previous}"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "lines_in": self.lines_in,
            "records_out": self.records_out,
            "rejected": self.rejected_total(),
            "stages": {name: stage.as_dict() for name, stage in self.stages.items()},
        }


def iter_source(source: LineSource) -> Iterator[str]:
    """Lines from a path (streamed off disk) or any iterable of strings."""
    if isinstance(source, (str, Path)):
        yield from read_lines(source)
        return
    for line in source:
        yield line.rstrip("\r\n")


class IngestPipeline:
    """Filters + streaming dedup over an arbitrarily large line source.

    Parameters
    ----------
    filters:
        Ordered :class:`~repro.curation.filters.RecordFilter` chain; records
        flow through them left to right.
    dedup:
        When true (default), drop records whose canonical-form digest has
        been seen before in this run.  Dedup is order-stable: the *first*
        occurrence wins, later duplicates are rejected, so output order is
        the order of first appearance.
    """

    def __init__(self, filters: Sequence[RecordFilter] = (), dedup: bool = True):
        validate_filters(filters)
        if any(record_filter.name == DEDUP_STAGE for record_filter in filters):
            raise CurationError(f"filter name {DEDUP_STAGE!r} is reserved")
        self.filters: List[RecordFilter] = list(filters)
        self.dedup = dedup
        self.stats = IngestStats()

    def process(self, source: LineSource) -> Iterator[str]:
        """Stream accepted records; ``self.stats`` tracks the run.

        A fresh :class:`IngestStats` is bound per call, so a pipeline object
        can be reused across runs; the generator is single-pass and not
        thread-safe.
        """
        stats = IngestStats()
        stats.stages = {f.name: StageCount() for f in self.filters}
        if self.dedup:
            stats.stages[DEDUP_STAGE] = StageCount()
        self.stats = stats
        return self._run(source, stats)

    def _run(self, source: LineSource, stats: IngestStats) -> Iterator[str]:
        seen_digests = set()
        dedup_count = stats.stages.get(DEDUP_STAGE)
        for line in iter_source(source):
            stats.lines_in += 1
            record: Optional[str] = line
            for record_filter in self.filters:
                count = stats.stages[record_filter.name]
                count.seen += 1
                record = record_filter(record)
                if record is None:
                    count.rejected += 1
                    break
                count.accepted += 1
            if record is None:
                continue
            if dedup_count is not None:
                dedup_count.seen += 1
                digest = hashlib.blake2b(
                    record.encode("utf-8"), digest_size=DEDUP_DIGEST_SIZE
                ).digest()
                if digest in seen_digests:
                    dedup_count.rejected += 1
                    continue
                seen_digests.add(digest)
                dedup_count.accepted += 1
            stats.records_out += 1
            yield record


def tee(records: Iterable[str], sampler) -> Iterator[str]:
    """Yield *records* unchanged while feeding each one to *sampler*.

    Lets a single ingest pass both fill a sink and collect the training
    sample (``sampler`` is any object with an ``add(record)`` method, e.g.
    :class:`~repro.curation.sampling.ReservoirSampler`).
    """
    for record in records:
        sampler.add(record)
        yield record


def ingest_to_file(
    source: LineSource,
    output: Union[str, Path],
    pipeline: IngestPipeline,
    sampler=None,
) -> IngestStats:
    """Run *pipeline* over *source*, writing accepted records to a flat file.

    Fully streaming: memory stays bounded by the dedup set regardless of
    source size.  Returns the run's :class:`IngestStats`.
    """
    records: Iterable[str] = pipeline.process(source)
    if sampler is not None:
        records = tee(records, sampler)
    write_lines(output, records)
    stats = pipeline.stats
    stats.check()
    return stats


def ingest_to_store(
    source: LineSource,
    output: Union[str, Path],
    pipeline: IngestPipeline,
    engine,
    records_per_block: int = 64,
    sampler=None,
) -> IngestStats:
    """Run *pipeline* over *source* straight into a single ``.zss`` shard.

    Streams through :class:`~repro.store.writer.ShardWriter` block by block,
    so like :func:`ingest_to_file` the memory footprint is bounded.  For a
    multi-shard library pack (which needs the record count up front), ingest
    to a flat file first and pack with ``LibraryWriter``.
    """
    from ..store.writer import ShardWriter

    records: Iterable[str] = pipeline.process(source)
    if sampler is not None:
        records = tee(records, sampler)
    with open(output, "wb") as handle:
        with ShardWriter(handle, engine=engine, records_per_block=records_per_block) as writer:
            writer.add_many(records)
            writer.close()
    stats = pipeline.stats
    stats.check()
    return stats
