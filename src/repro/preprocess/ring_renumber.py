"""Ring-identifier renumbering — the ZSMILES preprocessing step (Section IV-A).

SMILES generation pipelines frequently hand every ring a fresh identifier
(``C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2``), which fragments otherwise-identical
substrings and hurts dictionary-based compression.  Renumbering reuses
identifiers as soon as their ring closes, so both benzene rings above become
``C0=CC=C(C=C0)`` / ``C0=CC=CC=C0`` and share dictionary entries.

Two assignment policies are implemented:

``"innermost"`` (the paper's choice)
    When rings are nested, the innermost ring receives the smaller identifier.
    Simple, frequent rings tend to be the inner ones, so they converge on the
    same low digits across the whole corpus.

``"outermost"``
    The opposite preference, kept as an ablation (see DESIGN.md).

The transformation preserves validity: identifiers are only permuted/reused in
a way that keeps every pair unambiguous (no two simultaneously-open rings share
an identifier), so the renumbered string describes exactly the same molecule.
"""

from __future__ import annotations

from typing import Dict, List, Literal, Sequence

from ..errors import RingNumberingError
from ..smiles.rings import RingSpan, pair_ring_bonds
from ..smiles.tokenizer import Token, TokenType, tokenize

RingRenumberPolicy = Literal["innermost", "outermost"]


def _format_ring_token(ring_id: int, explicit_percent: bool) -> str:
    """Format *ring_id* as SMILES text, preserving ``%`` when needed."""
    if ring_id <= 9 and not explicit_percent:
        return str(ring_id)
    if ring_id <= 99:
        return f"%{ring_id:02d}"
    raise RingNumberingError(f"ring id {ring_id} exceeds the SMILES %nn limit")


def assign_ring_ids(
    spans: Sequence[RingSpan],
    policy: RingRenumberPolicy = "innermost",
    start_id: int = 0,
) -> Dict[RingSpan, int]:
    """Assign new identifiers to ring spans under the reuse policy.

    Parameters
    ----------
    spans:
        Ring spans as returned by :func:`repro.smiles.rings.pair_ring_bonds`.
    policy:
        ``"innermost"`` assigns the smallest identifiers to the rings that
        close first (the paper's choice); ``"outermost"`` to those that open
        first.
    start_id:
        First identifier value to hand out.  The paper's example uses ``0``.

    Returns
    -------
    dict
        Mapping from each span to its new identifier.  Two spans that are
        simultaneously open never share an identifier.
    """
    if policy == "innermost":
        # Rings that close earlier are (by construction of balanced spans)
        # never outside a ring that closes later and opened earlier; giving
        # them the smallest free identifier yields innermost-first numbering.
        ordered = sorted(spans, key=lambda s: (s.close_index, -s.open_index))
    elif policy == "outermost":
        ordered = sorted(spans, key=lambda s: (s.open_index, s.close_index))
    else:  # pragma: no cover - guarded by Literal type
        raise RingNumberingError(f"unknown ring renumbering policy {policy!r}")

    assignment: Dict[RingSpan, int] = {}
    for span in ordered:
        used = {
            assignment[other]
            for other in assignment
            if other.overlaps(span)
        }
        ring_id = start_id
        while ring_id in used:
            ring_id += 1
        if ring_id > 99:
            raise RingNumberingError(
                "renumbering requires more than 100 simultaneously open rings"
            )
        assignment[span] = ring_id
    return assignment


def renumber_tokens(
    tokens: Sequence[Token],
    policy: RingRenumberPolicy = "innermost",
    start_id: int = 0,
) -> List[str]:
    """Return the token texts with ring-bond tokens rewritten under *policy*."""
    spans = pair_ring_bonds(tokens)
    assignment = assign_ring_ids(spans, policy=policy, start_id=start_id)
    replacement: Dict[int, str] = {}
    for span, ring_id in assignment.items():
        # Preserve %nn formatting when the new id needs two digits; otherwise
        # always use the compact single-digit form (that is the whole point).
        text = _format_ring_token(ring_id, explicit_percent=ring_id > 9)
        replacement[span.open_index] = text
        replacement[span.close_index] = text
    texts: List[str] = []
    for index, tok in enumerate(tokens):
        if tok.type is TokenType.RING_BOND and index in replacement:
            texts.append(replacement[index])
        else:
            texts.append(tok.text)
    return texts


def renumber_rings(
    smiles: str,
    policy: RingRenumberPolicy = "innermost",
    start_id: int = 0,
) -> str:
    """Renumber the ring-bond identifiers of one SMILES string.

    This is the preprocessing transformation evaluated in Table I.  The output
    is a valid SMILES describing the same molecule; strings without ring bonds
    are returned unchanged.
    """
    if not any(ch.isdigit() or ch == "%" for ch in smiles):
        return smiles
    tokens = tokenize(smiles)
    return "".join(renumber_tokens(tokens, policy=policy, start_id=start_id))
