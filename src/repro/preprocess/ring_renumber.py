"""Ring-identifier renumbering — the ZSMILES preprocessing step (Section IV-A).

SMILES generation pipelines frequently hand every ring a fresh identifier
(``C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2``), which fragments otherwise-identical
substrings and hurts dictionary-based compression.  Renumbering reuses
identifiers as soon as their ring closes, so both benzene rings above become
``C0=CC=C(C=C0)`` / ``C0=CC=CC=C0`` and share dictionary entries.

Two assignment policies are implemented:

``"innermost"`` (the paper's choice)
    When rings are nested, the innermost ring receives the smaller identifier.
    Simple, frequent rings tend to be the inner ones, so they converge on the
    same low digits across the whole corpus.

``"outermost"``
    The opposite preference, kept as an ablation (see DESIGN.md).

The transformation preserves validity: identifiers are only permuted/reused in
a way that keeps every pair unambiguous (no two simultaneously-open rings share
an identifier), so the renumbered string describes exactly the same molecule.
"""

from __future__ import annotations

import re
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from ..errors import RingNumberingError
from ..smiles.rings import RingSpan, pair_ring_bonds
from ..smiles.tokenizer import BRACKET_ATOM_PATTERN, Token, TokenType, tokenize

RingRenumberPolicy = Literal["innermost", "outermost"]

# --------------------------------------------------------------------------- #
# Fast scan (structure-identical to the tokenizer path)
# --------------------------------------------------------------------------- #
# Ring-bond tokens are exactly the digits / %nn pairs *outside* bracket atoms,
# so renumbering does not need full tokenization — only their positions.  The
# fast path below first validates the whole line with one C-speed regex whose
# bracket-atom alternative is the tokenizer's own pattern (imported, so the
# two grammars cannot drift); anything the regex does not accept (malformed
# brackets, stray or non-ASCII characters, a dangling %) falls back to the
# token path so errors surface exactly as before.  Ring spans then carry
# character positions instead of token indices — a strictly monotone
# re-indexing, so every comparison :func:`assign_ring_ids` makes (span
# overlap, innermost/outermost ordering) is unchanged and the assigned
# identifiers are provably identical to the token path's.  All three regexes
# are ASCII-flagged: exotic digit-likes (Unicode Nd, superscripts) always
# take the token path, which reproduces the historical behaviour for them.

#: Whole-line validity gate for the fast path: bracket atoms, %nn / digit ring
#: bonds, two-char organics before their one-char prefixes, aromatics, bonds,
#: branches, dot and wildcard — the tokenizer's grammar, as one alternation.
_FAST_VALID_RE = re.compile(
    "(?:"
    + BRACKET_ATOM_PATTERN
    + r"|%\d\d|\d|Cl|Br|[BCNOPSFI]|[bcnops]|[-=#$:/\\~().*])*\Z",
    re.ASCII,
)

#: Candidate scan: bracket atoms are consumed (their digits are isotopes,
#: hydrogen counts, charges or atom classes — never ring bonds), leaving the
#: true ring-bond tokens.  Loose bracket contents are safe here because the
#: strict validity gate already ran, and both patterns end at the first ``]``.
_RING_TOKEN_RE = re.compile(r"\[[^\]]*\]|%\d\d|\d", re.ASCII)

#: Cheap "any ring identifier at all?" probe replacing a per-character loop.
_MAYBE_RING_RE = re.compile(r"[%\d]", re.ASCII)


def _fast_ring_positions(smiles: str) -> Optional[List[Tuple[int, int, int]]]:
    """Ring-bond tokens of *smiles* as ``(position, length, ring_id)`` triples.

    Returns ``None`` when the line is outside the fast path's validated
    grammar (the caller falls back to the tokenizer, which raises the
    canonical errors for genuinely malformed input).
    """
    if _FAST_VALID_RE.match(smiles) is None:
        return None
    out: List[Tuple[int, int, int]] = []
    for match in _RING_TOKEN_RE.finditer(smiles):
        text = match.group()
        if text[0] == "[":
            continue
        if text[0] == "%":
            out.append((match.start(), 3, int(text[1:])))
        else:
            out.append((match.start(), 1, int(text)))
    return out


def _format_ring_token(ring_id: int, explicit_percent: bool) -> str:
    """Format *ring_id* as SMILES text, preserving ``%`` when needed."""
    if ring_id <= 9 and not explicit_percent:
        return str(ring_id)
    if ring_id <= 99:
        return f"%{ring_id:02d}"
    raise RingNumberingError(f"ring id {ring_id} exceeds the SMILES %nn limit")


def assign_ring_ids(
    spans: Sequence[RingSpan],
    policy: RingRenumberPolicy = "innermost",
    start_id: int = 0,
) -> Dict[RingSpan, int]:
    """Assign new identifiers to ring spans under the reuse policy.

    Parameters
    ----------
    spans:
        Ring spans as returned by :func:`repro.smiles.rings.pair_ring_bonds`.
    policy:
        ``"innermost"`` assigns the smallest identifiers to the rings that
        close first (the paper's choice); ``"outermost"`` to those that open
        first.
    start_id:
        First identifier value to hand out.  The paper's example uses ``0``.

    Returns
    -------
    dict
        Mapping from each span to its new identifier.  Two spans that are
        simultaneously open never share an identifier.
    """
    if policy == "innermost":
        # Rings that close earlier are (by construction of balanced spans)
        # never outside a ring that closes later and opened earlier; giving
        # them the smallest free identifier yields innermost-first numbering.
        ordered = sorted(spans, key=lambda s: (s.close_index, -s.open_index))
    elif policy == "outermost":
        ordered = sorted(spans, key=lambda s: (s.open_index, s.close_index))
    else:  # pragma: no cover - guarded by Literal type
        raise RingNumberingError(f"unknown ring renumbering policy {policy!r}")

    assignment: Dict[RingSpan, int] = {}
    for span in ordered:
        used = {
            assignment[other]
            for other in assignment
            if other.overlaps(span)
        }
        ring_id = start_id
        while ring_id in used:
            ring_id += 1
        if ring_id > 99:
            raise RingNumberingError(
                "renumbering requires more than 100 simultaneously open rings"
            )
        assignment[span] = ring_id
    return assignment


def renumber_tokens(
    tokens: Sequence[Token],
    policy: RingRenumberPolicy = "innermost",
    start_id: int = 0,
) -> List[str]:
    """Return the token texts with ring-bond tokens rewritten under *policy*."""
    spans = pair_ring_bonds(tokens)
    assignment = assign_ring_ids(spans, policy=policy, start_id=start_id)
    replacement: Dict[int, str] = {}
    for span, ring_id in assignment.items():
        # Preserve %nn formatting when the new id needs two digits; otherwise
        # always use the compact single-digit form (that is the whole point).
        text = _format_ring_token(ring_id, explicit_percent=ring_id > 9)
        replacement[span.open_index] = text
        replacement[span.close_index] = text
    texts: List[str] = []
    for index, tok in enumerate(tokens):
        if tok.type is TokenType.RING_BOND and index in replacement:
            texts.append(replacement[index])
        else:
            texts.append(tok.text)
    return texts


def renumber_rings(
    smiles: str,
    policy: RingRenumberPolicy = "innermost",
    start_id: int = 0,
) -> str:
    """Renumber the ring-bond identifiers of one SMILES string.

    This is the preprocessing transformation evaluated in Table I.  The output
    is a valid SMILES describing the same molecule; strings without ring bonds
    are returned unchanged.

    Implementation note: lines matching the tokenizer's grammar run through a
    regex scan that locates ring-bond tokens without building ``Token``
    objects (this function sits on the batch compression hot path); output is
    byte-identical to the token path, which remains the fallback for anything
    unusual.
    """
    if _MAYBE_RING_RE.search(smiles) is None:
        # No ASCII ring identifier.  ASCII lines (the entire hot path) are
        # returned unchanged; non-ASCII lines may still contain exotic
        # digit-likes (Unicode Nd, superscripts) that the historical
        # ``str.isdigit`` probe accepted, so they keep the token-path
        # behaviour — including its errors — exactly.
        if smiles.isascii() or not any(ch.isdigit() for ch in smiles):
            return smiles
        tokens = tokenize(smiles)
        return "".join(renumber_tokens(tokens, policy=policy, start_id=start_id))
    positions = _fast_ring_positions(smiles)
    if positions is None:
        tokens = tokenize(smiles)
        return "".join(renumber_tokens(tokens, policy=policy, start_id=start_id))
    if not positions:
        return smiles
    # Pair identifiers: first occurrence opens, second closes, then reusable.
    open_rings: Dict[int, int] = {}
    spans: List[RingSpan] = []
    lengths: Dict[int, int] = {}
    for position, length, ring_id in positions:
        lengths[position] = length
        if ring_id in open_rings:
            spans.append(RingSpan(ring_id, open_rings.pop(ring_id), position))
        else:
            open_rings[ring_id] = position
    if open_rings:
        unclosed = sorted(open_rings)
        raise RingNumberingError(f"unclosed ring bond identifier(s): {unclosed}")
    spans.sort(key=lambda span: span.open_index)
    assignment = assign_ring_ids(spans, policy=policy, start_id=start_id)
    # Splice the new identifier texts over the old tokens, left to right.
    replacements: List[Tuple[int, int, str]] = []
    for span, ring_id in assignment.items():
        text = _format_ring_token(ring_id, explicit_percent=ring_id > 9)
        replacements.append((span.open_index, lengths[span.open_index], text))
        replacements.append((span.close_index, lengths[span.close_index], text))
    replacements.sort()
    parts: List[str] = []
    cursor = 0
    for position, length, text in replacements:
        parts.append(smiles[cursor:position])
        parts.append(text)
        cursor = position + length
    parts.append(smiles[cursor:])
    return "".join(parts)
