"""SMILES preprocessing (Section IV-A of the paper)."""

from .pipeline import (
    PreprocessingPipeline,
    drop_title_column,
    make_pipeline,
    strip_whitespace,
)
from .ring_renumber import (
    RingRenumberPolicy,
    assign_ring_ids,
    renumber_rings,
    renumber_tokens,
)

__all__ = [
    "PreprocessingPipeline",
    "drop_title_column",
    "make_pipeline",
    "strip_whitespace",
    "RingRenumberPolicy",
    "assign_ring_ids",
    "renumber_rings",
    "renumber_tokens",
]
