"""Composable SMILES preprocessing pipeline.

The paper applies a single optional preprocessing step (ring-identifier
renumbering) before dictionary training and before compression (Figure 2 /
Figure 3).  In practice a screening pipeline often wants a couple more
text-level normalizations (whitespace stripping, dropping the title column of
a ``.smi`` file), so the pipeline is modelled as an ordered list of named,
pure string→string steps that can be configured, applied to single strings or
whole iterables, and described in reports.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from .ring_renumber import RingRenumberPolicy, renumber_rings

PreprocessStep = Callable[[str], str]


def strip_whitespace(smiles: str) -> str:
    """Remove leading/trailing whitespace (defensive against sloppy .smi files)."""
    return smiles.strip()


def drop_title_column(line: str) -> str:
    """Keep only the first whitespace-separated column of a ``.smi`` line.

    ``.smi`` files frequently carry ``<SMILES> <molecule name>`` per line; only
    the SMILES column is compressed.
    """
    parts = line.split(None, 1)
    return parts[0] if parts else ""


@dataclass
class PreprocessingPipeline:
    """Ordered list of preprocessing steps applied to every SMILES string.

    Attributes
    ----------
    steps:
        ``(name, callable)`` pairs applied in order.
    """

    steps: List[Tuple[str, PreprocessStep]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add(self, name: str, step: PreprocessStep) -> "PreprocessingPipeline":
        """Append a named step and return ``self`` for chaining."""
        self.steps.append((name, step))
        return self

    @classmethod
    def default(
        cls,
        ring_renumbering: bool = True,
        ring_policy: RingRenumberPolicy = "innermost",
    ) -> "PreprocessingPipeline":
        """The pipeline used throughout the paper's experiments.

        Whitespace stripping always runs; ring renumbering is the optional
        optimization toggled in Table I.
        """
        pipeline = cls()
        pipeline.add("strip_whitespace", strip_whitespace)
        if ring_renumbering:
            # functools.partial (not a lambda) keeps the pipeline picklable for
            # the multiprocessing backend.
            pipeline.add(
                f"ring_renumber[{ring_policy}]",
                functools.partial(renumber_rings, policy=ring_policy),
            )
        return pipeline

    @classmethod
    def identity(cls) -> "PreprocessingPipeline":
        """A pipeline that only strips whitespace (the "no preprocessing" rows)."""
        return cls.default(ring_renumbering=False)

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #
    def __call__(self, smiles: str) -> str:
        result = smiles
        for _, step in self.steps:
            result = step(result)
        return result

    def apply(self, smiles: str) -> str:
        """Apply every step in order to a single string."""
        return self(smiles)

    def apply_all(self, smiles_iter: Iterable[str]) -> Iterator[str]:
        """Lazily apply the pipeline to every string of an iterable."""
        for smiles in smiles_iter:
            yield self(smiles)

    def apply_list(self, smiles_list: Sequence[str]) -> List[str]:
        """Apply the pipeline eagerly and return a list."""
        return [self(s) for s in smiles_list]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> List[str]:
        """Names of the configured steps, in order."""
        return [name for name, _ in self.steps]

    def describe(self) -> str:
        """One-line description used by experiment reports."""
        return " -> ".join(self.names) if self.steps else "(empty pipeline)"

    def __len__(self) -> int:
        return len(self.steps)


def make_pipeline(
    preprocessing: bool,
    ring_policy: RingRenumberPolicy = "innermost",
    extra_steps: Optional[Sequence[Tuple[str, PreprocessStep]]] = None,
) -> PreprocessingPipeline:
    """Build the pipeline for an experiment configuration.

    Parameters
    ----------
    preprocessing:
        Whether the ring-renumbering optimization is enabled (the
        "Pre-processing" column of Table I).
    ring_policy:
        Innermost (paper default) or outermost identifier preference.
    extra_steps:
        Additional named steps appended after the defaults.
    """
    pipeline = PreprocessingPipeline.default(
        ring_renumbering=preprocessing, ring_policy=ring_policy
    )
    for name, step in extra_steps or ():
        pipeline.add(name, step)
    return pipeline
