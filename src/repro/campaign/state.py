"""Campaign checkpoint: ``campaign.json`` plus the manifests it points at.

A campaign's durable state is deliberately nothing but manifests: each
generation is a normal sharded library (``gen-0000.library/`` …) and the
whole campaign history is one composed ``library.json`` over those
generation libraries.  ``campaign.json`` only records what the manifests
cannot — the evolution RNG state, the index of the last *completed*
generation, the per-generation counters, and pointers to the composed
manifest and the campaign dictionary — so a SIGKILL at any instant loses at
most the in-flight generation, which a resume then replays deterministically
to byte-identical output.

The checkpoint is written atomically (temp file + ``os.replace``) *after*
the generation's libraries are on disk, which is the whole crash-consistency
story: either the checkpoint names a generation whose files are complete,
or the generation never happened.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from ..errors import CampaignError

PathLike = Union[str, Path]

#: Checkpoint file name inside a campaign working directory.
CHECKPOINT_NAME = "campaign.json"
#: Composed manifest over every generation library, under the workdir root.
COMPOSED_MANIFEST_NAME = "composed.library.json"
#: The campaign dictionary, trained once on the curated seed population.
DICTIONARY_NAME = "campaign.dct"
#: Per-generation library directory name.
GENERATION_DIR_FORMAT = "gen-{:04d}.library"

#: Checkpoint schema version (bumped on incompatible changes).
STATE_VERSION = 1


def generation_dir(workdir: PathLike, generation: int) -> Path:
    """The library directory of generation *generation* under *workdir*."""
    return Path(workdir) / GENERATION_DIR_FORMAT.format(generation)


def encode_rng_state(state: object) -> list:
    """``random.Random.getstate()`` → JSON-serializable nested lists."""
    version, internal, gauss = state  # type: ignore[misc]
    return [version, list(internal), gauss]


def decode_rng_state(obj: object) -> tuple:
    """Inverse of :func:`encode_rng_state` (JSON arrays → state tuple)."""
    if not isinstance(obj, list) or len(obj) != 3 or not isinstance(obj[1], list):
        raise CampaignError(f"malformed RNG state in checkpoint: {obj!r}")
    return (obj[0], tuple(obj[1]), obj[2])


@dataclass
class GenerationStats:
    """Observability counters for one completed generation.

    Every field except ``elapsed_seconds`` is a deterministic function of
    the campaign seed — the resume tests compare them across a kill.
    """

    generation: int
    sampled: int = 0
    mutated: int = 0
    crossed: int = 0
    rejected: int = 0
    scored: int = 0
    survivors: int = 0
    records_written: int = 0
    best_score: float = 0.0
    mean_score: float = 0.0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    def deterministic_dict(self) -> Dict[str, object]:
        """The stats minus wall time — the cross-run comparison surface."""
        out = asdict(self)
        out.pop("elapsed_seconds")
        return out

    @classmethod
    def from_dict(cls, obj: Dict[str, object]) -> "GenerationStats":
        known = {f: obj[f] for f in cls.__dataclass_fields__ if f in obj}
        return cls(**known)  # type: ignore[arg-type]


@dataclass
class CampaignState:
    """Everything ``campaign.json`` persists."""

    name: str
    source: str
    seed: int
    config: Dict[str, object]
    generation: int
    rng_state: list
    dictionary_hash: str = ""
    composed_manifest: str = COMPOSED_MANIFEST_NAME
    generations: List[GenerationStats] = field(default_factory=list)
    version: int = STATE_VERSION

    # ------------------------------------------------------------------ #
    # RNG round-trip
    # ------------------------------------------------------------------ #
    def restore_rng(self) -> random.Random:
        """A ``random.Random`` carrying exactly the checkpointed state."""
        rng = random.Random()
        rng.setstate(decode_rng_state(self.rng_state))
        return rng

    def capture_rng(self, rng: random.Random) -> None:
        self.rng_state = encode_rng_state(rng.getstate())

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "name": self.name,
            "source": self.source,
            "seed": self.seed,
            "config": dict(self.config),
            "generation": self.generation,
            "rng_state": self.rng_state,
            "dictionary_hash": self.dictionary_hash,
            "composed_manifest": self.composed_manifest,
            "generations": [stats.as_dict() for stats in self.generations],
        }

    def save(self, workdir: PathLike) -> Path:
        """Atomically and *durably* write ``campaign.json`` under *workdir*.

        The temp-then-``os.replace`` dance guarantees a reader (or a resume
        after SIGKILL) only ever sees a complete checkpoint — the previous
        one or this one, never a torn write.  The fsyncs extend that to
        *machine* crashes: the tmp file's bytes are forced to disk before
        the rename makes them visible (no window where the rename survives
        a power cut but the content doesn't), and the directory entry is
        forced after, so the rename itself is durable too.
        """
        workdir = Path(workdir)
        path = workdir / CHECKPOINT_NAME
        tmp = workdir / (CHECKPOINT_NAME + ".tmp")
        payload = json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        try:
            dir_fd = os.open(workdir, os.O_RDONLY)
        except OSError:  # pragma: no cover — platforms without dir opens
            return path
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover — fs without dir fsync
            pass
        finally:
            os.close(dir_fd)
        return path

    @classmethod
    def load(cls, workdir: PathLike) -> "CampaignState":
        path = Path(workdir) / CHECKPOINT_NAME
        if not path.is_file():
            raise CampaignError(
                f"no campaign checkpoint at {path}: start one with "
                "CampaignDriver.start() / `zsmiles campaign run`"
            )
        try:
            obj = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"unreadable campaign checkpoint {path}: {exc}") from exc
        if not isinstance(obj, dict):
            raise CampaignError(f"campaign checkpoint {path} is not a JSON object")
        declared = obj.get("version")
        if declared != STATE_VERSION:
            raise CampaignError(
                f"campaign checkpoint {path} has version {declared!r}; "
                f"this build reads version {STATE_VERSION}"
            )
        try:
            return cls(
                name=str(obj["name"]),
                source=str(obj["source"]),
                seed=int(obj["seed"]),
                config=dict(obj["config"]),
                generation=int(obj["generation"]),
                rng_state=list(obj["rng_state"]),
                dictionary_hash=str(obj.get("dictionary_hash", "")),
                composed_manifest=str(
                    obj.get("composed_manifest", COMPOSED_MANIFEST_NAME)
                ),
                generations=[
                    GenerationStats.from_dict(entry)
                    for entry in obj.get("generations", [])
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignError(
                f"campaign checkpoint {path} is missing or mistypes a field: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, int]:
        """Cumulative observability counters across completed generations."""
        totals = {
            "sampled": 0,
            "mutated": 0,
            "crossed": 0,
            "rejected": 0,
            "scored": 0,
            "records_written": 0,
        }
        for stats in self.generations:
            for key in totals:
                totals[key] += int(getattr(stats, key))
        totals["generations"] = len(self.generations)
        return totals
