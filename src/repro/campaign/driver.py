"""The GA campaign driver: generation loops over any :class:`RecordReader`.

One :class:`CampaignDriver` owns a campaign working directory and runs the
evolve loop the ROADMAP describes — sample a seed population from a corpus
(local library *or* ``http://`` replica list, via the transport-agnostic
``sample(n, seed)``), mutate/crossover with the fragment operators, reject
invalid offspring through the curation filter chain, score with the
deterministic docking surrogate (thread-pooled), select survivors, and pack
each generation as a normal sharded library composed with its ancestors.

Determinism is the load-bearing property: every choice flows from one
``random.Random`` whose state is checkpointed after each generation, scoring
is a pure function, selection uses the total order of
:func:`repro.screening.docking.top_hits`, and generation packs go through
the byte-deterministic library writer — so a campaign SIGKILLed at any
instant and resumed from ``campaign.json`` replays the in-flight generation
to byte-identical manifests, stats and hit lists.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.codec import ZSmilesCodec
from ..dictionary.serialization import DictionaryIdentity
from ..curation.filters import (
    RecordFilter,
    canonical_filter,
    length_filter,
    strip_filter,
)
from ..curation.pipeline import IngestPipeline
from ..engine import ZSmilesEngine
from ..errors import CampaignError
from ..library import CorpusLibrary, compose_libraries, pack_library
from ..library.manifest import DICTIONARY_IDENTITY_KEY
from ..screening.docking import top_hits as rank_hits
from ..server.retry import RetryPolicy
from ..store import RecordReader, open_reader
from ..telemetry import metrics as _metrics
from . import operators
from .scoring import resolve_pocket, score_many
from .state import (
    CHECKPOINT_NAME,
    DICTIONARY_NAME,
    CampaignState,
    GenerationStats,
    generation_dir,
)

PathLike = Union[str, Path]


@dataclass
class CampaignConfig:
    """Tunable knobs of one GA campaign (persisted inside ``campaign.json``).

    Attributes
    ----------
    population_size:
        Survivors kept per generation; also the seed-sample size and the
        number of offspring attempts per generation.
    generations:
        Evolution generations to run after the seed generation 0.
    seed:
        Master seed: drives the seed-population draw and the evolution RNG.
    pocket:
        Scoring target, by name, from
        :data:`~repro.screening.docking.DEFAULT_POCKETS`.
    crossover_rate:
        Probability an offspring attempt is a two-parent crossover rather
        than a single-parent mutation.
    immigrants:
        Fresh records sampled from the source corpus each generation (keeps
        sustained sampling traffic on the serving tier; 0 disables).
    max_heavy_atoms:
        Offspring size ceiling enforced by the operators.
    score_jobs:
        Scoring thread-pool width (any value scores identically).
    min_length / max_length:
        Offspring length gate applied by the curation filter chain.
    records_per_block:
        Block granularity of the generation libraries.
    throttle:
        Seconds slept inside each generation before packing — pacing for
        campaigns sharing a serving tier (and the test hook that makes
        "SIGKILL mid-generation" reproducible).
    """

    population_size: int = 64
    generations: int = 5
    seed: int = 0
    pocket: str = "3CLpro"
    crossover_rate: float = 0.3
    immigrants: int = 0
    max_heavy_atoms: int = operators.DEFAULT_MAX_HEAVY_ATOMS
    score_jobs: int = 4
    min_length: int = 1
    max_length: Optional[int] = None
    records_per_block: int = 256
    throttle: float = 0.0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise CampaignError("population_size must be >= 2")
        if self.generations < 0:
            raise CampaignError("generations must be >= 0")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise CampaignError("crossover_rate must be in [0, 1]")
        if self.immigrants < 0:
            raise CampaignError("immigrants must be >= 0")
        if self.max_heavy_atoms < 4:
            raise CampaignError("max_heavy_atoms must be >= 4")
        if self.score_jobs < 1:
            raise CampaignError("score_jobs must be >= 1")
        if self.throttle < 0:
            raise CampaignError("throttle must be >= 0")
        resolve_pocket(self.pocket)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, obj: Dict[str, object]) -> "CampaignConfig":
        known = {f: obj[f] for f in cls.__dataclass_fields__ if f in obj}
        return cls(**known)  # type: ignore[arg-type]


def _filter_chain(config: CampaignConfig) -> List[RecordFilter]:
    """The curation chain every candidate record must survive.

    Strip → length gate → canonicalisation: offspring (and sampled seeds /
    immigrants) are packed in the parse/write fixpoint form, which is what
    makes dedup across generations meaningful and scores reproducible.
    """
    chain = [strip_filter()]
    if config.min_length > 1 or config.max_length is not None:
        chain.append(length_filter(config.min_length, config.max_length))
    chain.append(canonical_filter())
    return chain


class CampaignDriver:
    """Drives one checkpointed GA campaign in a working directory.

    Construct through :meth:`start` (new campaign) or :meth:`resume`
    (continue from ``campaign.json``); both return a driver whose
    :meth:`step` runs exactly one generation and whose :meth:`run` loops to
    the configured target.  The driver is a context manager; closing it
    releases the corpus reader and the pack engine, never the checkpoint.
    """

    def __init__(
        self,
        workdir: Path,
        state: CampaignState,
        codec: ZSmilesCodec,
        config: CampaignConfig,
    ):
        self.workdir = Path(workdir)
        self.state = state
        self.codec = codec
        self.config = config
        self.pocket = resolve_pocket(config.pocket)
        self._engine: Optional[ZSmilesEngine] = None
        self._reader: Optional[RecordReader] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def start(
        cls,
        source: Union[PathLike, Sequence[str]],
        workdir: PathLike,
        config: Optional[CampaignConfig] = None,
    ) -> "CampaignDriver":
        """Create *workdir*, draw the seed generation and checkpoint it.

        *source* is anything :func:`repro.store.open_reader` accepts: a
        library directory, ``library.json``, ``.zss`` shard, flat file, one
        ``http://`` URL or a comma-separated replica list.  The campaign
        dictionary is trained once on the curated seed population and
        reused for every generation, so the composed manifest pins a single
        dictionary identity end to end.
        """
        config = config if config is not None else CampaignConfig()
        workdir = Path(workdir)
        if (workdir / CHECKPOINT_NAME).exists():
            raise CampaignError(
                f"{workdir} already holds a campaign: resume it instead"
            )
        workdir.mkdir(parents=True, exist_ok=True)
        source_str = source if isinstance(source, str) else (
            ",".join(source) if isinstance(source, (list, tuple)) else str(source)
        )
        state = CampaignState(
            name=workdir.name,
            source=source_str,
            seed=config.seed,
            config=config.as_dict(),
            generation=-1,
            rng_state=[],
        )
        driver = cls(workdir, state, codec=None, config=config)  # type: ignore[arg-type]
        driver._run_seed_generation()
        return driver

    @classmethod
    def resume(
        cls, workdir: PathLike, source: Optional[str] = None
    ) -> "CampaignDriver":
        """Reopen a campaign from its checkpoint.

        *source* optionally replaces the corpus location (e.g. a changed
        replica list); the replacement is persisted on the next checkpoint
        write.  The in-flight generation the checkpoint does *not* name is
        replayed from the campaign RNG state, deterministically.
        """
        workdir = Path(workdir)
        state = CampaignState.load(workdir)
        if source is not None:
            state.source = source
        config = CampaignConfig.from_dict(state.config)
        dict_path = workdir / DICTIONARY_NAME
        if not dict_path.is_file():
            raise CampaignError(f"campaign dictionary missing: {dict_path}")
        codec = ZSmilesCodec.from_dictionary(dict_path)
        return cls(workdir, state, codec, config)

    # ------------------------------------------------------------------ #
    # Lazy resources
    # ------------------------------------------------------------------ #
    #: Retry discipline for remote corpus reads: a campaign step is long
    #: and restartable-but-expensive, so it rides out transient replica
    #: trouble harder than an interactive client — more rotations, longer
    #: backoff, bounded by a total deadline instead of hanging forever.
    REMOTE_RETRY = RetryPolicy(max_attempts=4, base_delay=0.2, deadline=60.0)

    @property
    def reader(self) -> RecordReader:
        """The corpus reader, opened on first use (local or HTTP).

        HTTP sources get :data:`REMOTE_RETRY`; local readers ignore the
        policy (nothing to retry on a local file).
        """
        if self._reader is None:
            self._reader = open_reader(self.state.source, retry=self.REMOTE_RETRY)
        return self._reader

    @property
    def engine(self) -> ZSmilesEngine:
        """The pack engine (in-process kernel backend: deterministic bytes)."""
        if self._engine is None:
            if self.codec is None:
                raise CampaignError("campaign codec not initialised")
            self._engine = ZSmilesEngine.from_codec(self.codec, backend="kernel")
        return self._engine

    def close(self) -> None:
        """Release the reader and engine (the checkpoint stays on disk)."""
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def __enter__(self) -> "CampaignDriver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The generation loop
    # ------------------------------------------------------------------ #
    def _curate(self, records: Sequence[str]) -> Tuple[List[str], int, int]:
        """Run *records* through the filter chain; ``(kept, seen, rejected)``."""
        pipeline = IngestPipeline(filters=_filter_chain(self.config), dedup=True)
        kept = list(pipeline.process(records))
        stats = pipeline.stats
        return kept, stats.lines_in, stats.rejected_total()

    def _select(
        self, candidates: Sequence[str]
    ) -> Tuple[List[str], List[float]]:
        """Score *candidates* and keep the ``population_size`` best.

        Selection rides :func:`~repro.screening.docking.top_hits`' total
        order (score, then SMILES), so the survivor list — and therefore
        the packed generation bytes — cannot depend on scoring order.
        """
        scores = score_many(candidates, self.pocket, jobs=self.config.score_jobs)
        ranked = rank_hits(
            list(zip(candidates, scores)), self.config.population_size
        )
        return [s for s, _ in ranked], [score for _, score in ranked]

    def _pack_generation(self, generation: int, population: Sequence[str]) -> None:
        """Pack *population* as ``gen-NNNN.library`` and recompose history."""
        pack_library(
            generation_dir(self.workdir, generation),
            population,
            self.engine,
            shards=1,
            records_per_block=self.config.records_per_block,
            metadata={"campaign_generation": generation},
        )
        sources = [generation_dir(self.workdir, g) for g in range(generation + 1)]
        # Explicit metadata with workdir-relative source names keeps the
        # composed manifest byte-stable across resumes and relocations
        # (compose's default records absolute source paths).
        compose_libraries(
            self.workdir / self.state.composed_manifest,
            sources,
            metadata={
                "composed_from": [src.name for src in sources],
                DICTIONARY_IDENTITY_KEY: DictionaryIdentity.of(
                    self.engine.table
                ).to_json_obj(),
            },
        )

    def _finish_generation(
        self, stats: GenerationStats, rng, started: float
    ) -> GenerationStats:
        """Checkpoint a completed generation (stats + RNG state, atomically)."""
        stats.elapsed_seconds = round(time.perf_counter() - started, 6)
        self.state.generations.append(stats)
        self.state.generation = stats.generation
        if rng is not None:
            self.state.capture_rng(rng)
        self.state.save(self.workdir)
        registry = _metrics.get_registry()
        registry.counter(
            "zsmiles_campaign_generations_total",
            "Campaign generations completed and checkpointed",
        ).inc()
        registry.histogram(
            "zsmiles_campaign_generation_seconds",
            "Wall time of one campaign generation",
            buckets=(0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0),
        ).observe(stats.elapsed_seconds)
        offspring = registry.counter(
            "zsmiles_campaign_offspring_total",
            "Offspring by curation/selection outcome",
            labels=("outcome",),
        )
        offspring.labels("accepted").inc(stats.survivors)
        offspring.labels("rejected").inc(stats.rejected)
        return stats

    def _run_seed_generation(self) -> GenerationStats:
        """Generation 0: sample, curate, train the dictionary, pack."""
        config = self.config
        started = time.perf_counter()
        _, records = self.reader.sample(config.population_size, config.seed)
        seeds, seen, rejected = self._curate(records)
        if not seeds:
            raise CampaignError(
                "seed sample produced no valid records after curation: "
                "is the source corpus SMILES-like?"
            )
        self.codec = ZSmilesCodec.train(seeds, preprocessing=True, lmax=8)
        self.codec.save_dictionary(self.workdir / DICTIONARY_NAME)
        self.state.dictionary_hash = DictionaryIdentity.of(self.codec.table).hash
        population, scores = self._select(seeds)
        if config.throttle:
            time.sleep(config.throttle)
        self._pack_generation(0, population)
        stats = GenerationStats(
            generation=0,
            sampled=seen,
            rejected=rejected,
            scored=len(seeds),
            survivors=len(population),
            records_written=len(population),
            best_score=round(min(scores), 9),
            mean_score=round(sum(scores) / len(scores), 9),
        )
        rng = random.Random(config.seed)
        return self._finish_generation(stats, rng, started)

    def step(self) -> GenerationStats:
        """Run exactly one evolution generation and checkpoint it."""
        config = self.config
        generation = self.state.generation + 1
        started = time.perf_counter()
        rng = self.state.restore_rng()
        parents = self._load_population()

        offspring: List[str] = []
        mutated = crossed = rejected = 0
        for _ in range(config.population_size):
            if len(parents) >= 2 and rng.random() < config.crossover_rate:
                a, b = rng.sample(range(len(parents)), 2)
                child = operators.crossover(
                    parents[a], parents[b], rng,
                    max_heavy_atoms=config.max_heavy_atoms,
                )
                crossed += 1
            else:
                parent = parents[rng.randrange(len(parents))]
                child = operators.mutate(
                    parent, rng, max_heavy_atoms=config.max_heavy_atoms
                )
                mutated += 1
            if child is None:
                rejected += 1
            else:
                offspring.append(child)

        sampled = 0
        if config.immigrants:
            immigrant_seed = rng.randrange(2**63)
            _, immigrants = self.reader.sample(config.immigrants, immigrant_seed)
            sampled = len(immigrants)
            offspring.extend(immigrants)

        curated, seen, filter_rejected = self._curate(offspring)
        rejected += filter_rejected
        parent_set = set(parents)
        fresh = [record for record in curated if record not in parent_set]
        rejected += len(curated) - len(fresh)

        candidates = list(parents) + fresh
        population, scores = self._select(candidates)
        if config.throttle:
            time.sleep(config.throttle)
        self._pack_generation(generation, population)
        stats = GenerationStats(
            generation=generation,
            sampled=sampled,
            mutated=mutated,
            crossed=crossed,
            rejected=rejected,
            scored=len(candidates),
            survivors=len(population),
            records_written=len(population),
            best_score=round(min(scores), 9),
            mean_score=round(sum(scores) / len(scores), 9),
        )
        return self._finish_generation(stats, rng, started)

    def run(self, generations: Optional[int] = None) -> CampaignState:
        """Step until ``generation == generations`` (default: the config's).

        Passing a larger *generations* than the config's extends the
        campaign; the new target is persisted with the next checkpoint.
        """
        if generations is not None:
            if generations < 0:
                raise CampaignError("generations must be >= 0")
            self.config.generations = generations
            self.state.config = self.config.as_dict()
        while self.state.generation < self.config.generations:
            self.step()
        return self.state

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _load_population(self) -> List[str]:
        """The last completed generation's records (the live population)."""
        if self.state.generation < 0:
            raise CampaignError("campaign has no completed generation yet")
        library_dir = generation_dir(self.workdir, self.state.generation)
        with CorpusLibrary.open(library_dir) as library:
            return list(library.iter_all())

    @property
    def counters(self) -> Dict[str, int]:
        """Cumulative sampled/mutated/rejected/scored/… counters."""
        return self.state.counters()

    def composed_manifest_path(self) -> Path:
        return self.workdir / self.state.composed_manifest

    def top_hits(self, count: int = 16) -> List[Tuple[str, float]]:
        """The best *count* distinct records across the whole campaign.

        Reads the composed library (every generation, ancestors first),
        dedups keeping first occurrence, rescores — the scorer is pure, so
        this is exact — and ranks with the total order.
        """
        with CorpusLibrary.open(self.composed_manifest_path()) as library:
            distinct = list(dict.fromkeys(library.iter_all()))
        scores = score_many(distinct, self.pocket, jobs=self.config.score_jobs)
        return rank_hits(list(zip(distinct, scores)), count)


# ---------------------------------------------------------------------- #
# Module-level conveniences (the CLI rides these)
# ---------------------------------------------------------------------- #
def run_campaign(
    source: Union[PathLike, Sequence[str]],
    workdir: PathLike,
    config: Optional[CampaignConfig] = None,
) -> CampaignState:
    """Start a campaign and run it to its configured generation target."""
    with CampaignDriver.start(source, workdir, config) as driver:
        return driver.run()


def resume_campaign(
    workdir: PathLike,
    generations: Optional[int] = None,
    source: Optional[str] = None,
) -> CampaignState:
    """Resume a checkpointed campaign and run it to its target."""
    with CampaignDriver.resume(workdir, source=source) as driver:
        return driver.run(generations)


def campaign_status(workdir: PathLike) -> CampaignState:
    """Load a campaign's checkpoint without touching its corpus source."""
    return CampaignState.load(workdir)


def campaign_top_hits(
    workdir: PathLike, count: int = 16
) -> List[Tuple[str, float]]:
    """Top hits of a checkpointed campaign (no corpus connection needed)."""
    with CampaignDriver.resume(workdir) as driver:
        return driver.top_hits(count)
