"""Generative GA screening campaigns over the full serving stack.

This package makes the ROADMAP's "generative screening campaign" a
first-class workload: an evolutionary loop that *reads* its seed and
immigrant populations from any corpus tier — a local library, a single
``.zss`` shard, or an ``http://`` replica list, all through
:func:`repro.store.open_reader` and the transport-agnostic
``sample(n, seed)`` — and *writes* each generation back as a normal
sharded library, composing the campaign history into one manifest.

Architecture
============

``operators``
    Pure GA operators over :class:`~repro.smiles.MolecularGraph`:
    :func:`mutate` attaches one fragment from
    :mod:`repro.datasets.fragments` at a free-valence atom;
    :func:`crossover` fuses two parents with a single new bond.  Both draw
    every choice from a caller-supplied ``random.Random`` and return
    ``None`` for chemically impossible edits — never an invalid SMILES.

``scoring``
    :func:`score_many` fans the deterministic docking surrogate
    (:func:`repro.screening.docking.dock_score`) over a thread pool;
    results are identical at any pool width because the scorer is pure and
    ``map`` preserves order.

``state``
    The ``campaign.json`` checkpoint: evolution RNG state, last *completed*
    generation, per-generation :class:`GenerationStats`, and pointers to
    the composed manifest and the campaign dictionary.  Written atomically
    *after* a generation's libraries are on disk, so a SIGKILL loses at
    most the in-flight generation.

``driver``
    :class:`CampaignDriver` ties it together: sample seeds → curate
    (strip / length / canonical filters, dedup) → train the campaign
    dictionary once → loop ``step()``: breed, curate offspring, score,
    select with the total order of
    :func:`repro.screening.docking.top_hits`, pack ``gen-NNNN.library``,
    recompose, checkpoint.

Determinism contract
====================

Kill a campaign at any instant, ``resume()`` it, and the finished campaign
is byte-identical to an uninterrupted run with the same seed: same composed
manifest, same per-generation stats (minus wall time), same top-hits list.
This holds over HTTP replica lists too — replica failover changes which
server answers, never which records are served.

CLI: ``zsmiles campaign run | resume | status | top-hits``.

Quickstart::

    from repro.campaign import CampaignConfig, CampaignDriver

    config = CampaignConfig(population_size=32, generations=3, seed=7)
    with CampaignDriver.start("corpus.library", "camp/", config) as driver:
        state = driver.run()
    for smiles, score in campaign_top_hits("camp/", 10):
        print(f"{score:9.3f}  {smiles}")
"""

from .driver import (
    CampaignConfig,
    CampaignDriver,
    campaign_status,
    campaign_top_hits,
    resume_campaign,
    run_campaign,
)
from .operators import (
    DEFAULT_MAX_HEAVY_ATOMS,
    DEFAULT_MUTATION_FRAGMENTS,
    attachment_candidates,
    crossover,
    mutate,
)
from .scoring import resolve_pocket, score_many
from .state import (
    CHECKPOINT_NAME,
    COMPOSED_MANIFEST_NAME,
    DICTIONARY_NAME,
    GENERATION_DIR_FORMAT,
    CampaignState,
    GenerationStats,
    generation_dir,
)

__all__ = [
    "CHECKPOINT_NAME",
    "COMPOSED_MANIFEST_NAME",
    "DEFAULT_MAX_HEAVY_ATOMS",
    "DEFAULT_MUTATION_FRAGMENTS",
    "DICTIONARY_NAME",
    "GENERATION_DIR_FORMAT",
    "CampaignConfig",
    "CampaignDriver",
    "CampaignState",
    "GenerationStats",
    "attachment_candidates",
    "campaign_status",
    "campaign_top_hits",
    "crossover",
    "generation_dir",
    "mutate",
    "resolve_pocket",
    "resume_campaign",
    "run_campaign",
    "score_many",
]
