"""Fragment-level GA operators: mutation and crossover over molecular graphs.

The generative campaign evolves SMILES records the same way the synthetic
dataset generators build them — by attaching chemical fragments from
:mod:`repro.datasets.fragments` at atoms with free valence — so every
offspring inherits the library's own validity guarantees instead of relying
on an external toolkit.

Operators are *pure* deterministic functions of ``(input SMILES, RNG
state)``: they parse their inputs into fresh :class:`MolecularGraph`
instances (the input strings are never mutated), draw every choice from the
caller-supplied ``random.Random``, and emit a SMILES string — or ``None``
when no chemically sensible edit exists (no attachment point with free
valence, size budget exhausted, or the written offspring fails validation).
``None`` is a *rejection*, which the campaign driver counts; callers never
see invalid molecules.  Emitted offspring then pass through the curation
filter chain (:func:`repro.curation.filters.canonical_filter`), so what the
campaign packs is always in the canonical parse/write fixpoint form.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from ..datasets.fragments import FRAGMENT_LIBRARY, free_valence
from ..smiles import MolecularGraph, is_valid, parse, write
from ..errors import CampaignError, SmilesError

#: Fragments the mutation operator may attach: every decoration and chain
#: fragment plus the small rings — large ring systems would blow through the
#: size budget in one step.  Order is fixed (it indexes RNG draws).
DEFAULT_MUTATION_FRAGMENTS: Tuple[str, ...] = (
    "methyl",
    "ethyl",
    "propyl_chain",
    "isopropyl",
    "hydroxyl",
    "methoxy",
    "amine",
    "fluoro",
    "chloro",
    "bromo",
    "carbonyl",
    "carboxylic_acid",
    "ester",
    "amide",
    "nitrile",
    "trifluoromethyl",
    "benzene",
    "pyridine",
    "furan",
    "cyclopropane",
)

#: Terminal halogens cannot take another substituent.
_HALOGENS = frozenset(("F", "Cl", "Br", "I"))

#: Default heavy-atom ceiling for offspring (rejects runaway growth).
DEFAULT_MAX_HEAVY_ATOMS = 60


def attachment_candidates(graph: MolecularGraph, max_degree: int = 5) -> List[int]:
    """Atom indices an operator may bond a new fragment to, in index order.

    An atom qualifies when it has at least one unit of free valence, is not
    a terminal halogen, and has not already accumulated *max_degree* bonds.
    The deterministic index order matters: the RNG draws *into* this list,
    so two runs with equal RNG state pick the same atom.
    """
    return [
        idx
        for idx in range(graph.atom_count())
        if free_valence(graph, idx) >= 1
        and graph.degree(idx) < max_degree
        and graph.atoms[idx].element not in _HALOGENS
    ]


def _parse_parent(smiles: str) -> Optional[MolecularGraph]:
    try:
        return parse(smiles)
    except SmilesError:
        return None


def _emit(graph: MolecularGraph) -> Optional[str]:
    """Write *graph* back out; ``None`` when the result fails validation."""
    offspring = write(graph, ring_policy="sequential")
    return offspring if is_valid(offspring) else None


def mutate(
    smiles: str,
    rng: random.Random,
    fragments: Sequence[str] = DEFAULT_MUTATION_FRAGMENTS,
    max_heavy_atoms: int = DEFAULT_MAX_HEAVY_ATOMS,
) -> Optional[str]:
    """Attach one RNG-chosen fragment at an RNG-chosen attachment atom.

    Returns the offspring SMILES, or ``None`` when the parent cannot be
    parsed, offers no attachment point, every candidate fragment would
    exceed *max_heavy_atoms*, or the edited graph writes to an invalid
    string.  The parent string is never modified.
    """
    if not fragments:
        raise CampaignError("mutate needs a non-empty fragment pool")
    graph = _parse_parent(smiles)
    if graph is None:
        return None
    candidates = attachment_candidates(graph)
    if not candidates:
        return None
    attachment = candidates[rng.randrange(len(candidates))]
    budget = max_heavy_atoms - graph.atom_count()
    pool = [name for name in fragments if FRAGMENT_LIBRARY[name].heavy_atoms <= budget]
    if not pool:
        return None
    spec = FRAGMENT_LIBRARY[pool[rng.randrange(len(pool))]]
    spec.builder(graph, attachment)
    return _emit(graph)


def _append_graph(dst: MolecularGraph, src: MolecularGraph) -> List[int]:
    """Copy *src*'s atoms and bonds into *dst*; returns the index mapping.

    Atoms are copied with :func:`dataclasses.replace` so the two graphs
    never share mutable state.
    """
    mapping = [dst.add_atom(replace(atom)) for atom in src.atoms]
    for bond in src.bonds:
        dst.add_bond(mapping[bond.a], mapping[bond.b], bond.order)
    return mapping


def crossover(
    a: str,
    b: str,
    rng: random.Random,
    max_heavy_atoms: int = DEFAULT_MAX_HEAVY_ATOMS,
) -> Optional[str]:
    """Fuse two parents with a single RNG-chosen bond between them.

    The offspring contains every atom of both parents (A's first, then B's)
    joined by one new single bond between a free-valence atom of each part.
    Returns ``None`` when either parent fails to parse, the fused molecule
    would exceed *max_heavy_atoms*, either part offers no attachment point,
    or the written offspring fails validation.
    """
    graph_a = _parse_parent(a)
    graph_b = _parse_parent(b)
    if graph_a is None or graph_b is None:
        return None
    if graph_a.atom_count() + graph_b.atom_count() > max_heavy_atoms:
        return None
    fused = MolecularGraph()
    map_a = _append_graph(fused, graph_a)
    map_b = _append_graph(fused, graph_b)
    candidates = set(attachment_candidates(fused))
    left = [idx for idx in map_a if idx in candidates]
    right = [idx for idx in map_b if idx in candidates]
    if not left or not right:
        return None
    fused.add_bond(
        left[rng.randrange(len(left))],
        right[rng.randrange(len(right))],
    )
    return _emit(fused)
