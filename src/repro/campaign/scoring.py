"""Thread-pooled deterministic scoring for campaign generations.

:func:`repro.screening.docking.dock_score` is a pure function of the
``(SMILES, pocket)`` pair, so scoring parallelises trivially:
``ThreadPoolExecutor.map`` preserves input order and every worker computes
the same value it would serially.  The campaign's determinism guarantee
(kill → resume → byte-identical) therefore survives any ``score_jobs``
setting — pinned by the driver tests.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Sequence

from ..errors import CampaignError
from ..screening.docking import DEFAULT_POCKETS, PocketModel, dock_score


def resolve_pocket(name: str) -> PocketModel:
    """Look a pocket up in :data:`~repro.screening.docking.DEFAULT_POCKETS`."""
    for pocket in DEFAULT_POCKETS:
        if pocket.name == name:
            return pocket
    known = ", ".join(p.name for p in DEFAULT_POCKETS)
    raise CampaignError(f"unknown pocket {name!r}; known pockets: {known}")


def score_many(
    smiles_list: Sequence[str], pocket: PocketModel, jobs: int = 1
) -> List[float]:
    """Scores for *smiles_list* against *pocket*, in input order.

    ``jobs > 1`` fans the pure scoring function over a thread pool; the
    result is identical to the serial loop because ``map`` preserves order
    and the score depends on nothing but its arguments.
    """
    if jobs < 1:
        raise CampaignError(f"score_jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(smiles_list) < 2:
        return [dock_score(smiles, pocket) for smiles in smiles_list]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(lambda smiles: dock_score(smiles, pocket), smiles_list))
