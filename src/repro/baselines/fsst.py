"""FSST reimplementation (Boncz, Neumann, Leis — VLDB 2020; reference [13]).

FSST (Fast Static Symbol Table) compresses short strings with a table of at
most 255 symbols of 1–8 bytes each; every input byte sequence is greedily
replaced by the longest matching symbol (one output code byte), and bytes not
covered by the table are emitted as an escape code followed by the raw byte.
Because each record is encoded independently against a static table, FSST
preserves random access — which is why the paper treats it as the closest
state-of-the-art competitor — but the table is *input-dependent* (built from a
sample of the file being compressed) and the output is binary.

This is a from-scratch reimplementation of the construction described in the
FSST paper, simplified in two ways that do not change its qualitative
behaviour: the symbol table is built over a configurable number of refinement
iterations using symbol/pair gain counting (as in the original), and encoding
uses a dictionary keyed by prefix length rather than the AVX-optimized match
kernel.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from .interface import BaselineCodec, CodecProperties

#: Code reserved for the escape marker (raw byte follows).
ESCAPE_CODE = 255
#: Maximum number of table symbols (code 255 is the escape).
MAX_SYMBOLS = 255
#: Maximum symbol length in bytes, as in the FSST paper.
MAX_SYMBOL_LENGTH = 8


class FsstSymbolTable:
    """A static symbol table: list of byte-string symbols, one code each."""

    def __init__(self, symbols: Sequence[bytes]):
        if len(symbols) > MAX_SYMBOLS:
            raise ValueError(f"at most {MAX_SYMBOLS} symbols allowed, got {len(symbols)}")
        self.symbols: List[bytes] = list(symbols)
        self._code_of: Dict[bytes, int] = {sym: i for i, sym in enumerate(self.symbols)}
        self._by_first_byte: Dict[int, List[Tuple[bytes, int]]] = {}
        for sym, code in self._code_of.items():
            bucket = self._by_first_byte.setdefault(sym[0], [])
            bucket.append((sym, code))
        for bucket in self._by_first_byte.values():
            bucket.sort(key=lambda item: -len(item[0]))  # longest first

    def __len__(self) -> int:
        return len(self.symbols)

    def longest_match(self, data: bytes, pos: int) -> Optional[Tuple[bytes, int]]:
        """Longest symbol matching ``data[pos:]``, or ``None``."""
        bucket = self._by_first_byte.get(data[pos])
        if not bucket:
            return None
        window = data[pos : pos + MAX_SYMBOL_LENGTH]
        for sym, code in bucket:
            if window.startswith(sym):
                return sym, code
        return None

    def symbol_for_code(self, code: int) -> bytes:
        """Symbol bytes for a code (raises ``IndexError`` for unknown codes)."""
        return self.symbols[code]


def _greedy_pass(
    sample: Sequence[bytes], table: Optional[FsstSymbolTable]
) -> Tuple[Counter, Counter]:
    """One counting pass: frequencies of matched units and of adjacent-unit pairs."""
    single: Counter = Counter()
    pairs: Counter = Counter()
    for line in sample:
        pos = 0
        prev: Optional[bytes] = None
        n = len(line)
        while pos < n:
            unit: bytes
            if table is not None:
                match = table.longest_match(line, pos)
                unit = match[0] if match is not None else line[pos : pos + 1]
            else:
                unit = line[pos : pos + 1]
            single[unit] += 1
            if prev is not None and len(prev) + len(unit) <= MAX_SYMBOL_LENGTH:
                pairs[prev + unit] += 1
            prev = unit
            pos += len(unit)
    return single, pairs


def build_symbol_table(
    corpus: Sequence[str],
    iterations: int = 5,
    sample_bytes: int = 16_384,
    max_symbols: int = MAX_SYMBOLS,
) -> FsstSymbolTable:
    """Construct an FSST symbol table from a sample of *corpus*.

    The construction follows the iterative scheme of the FSST paper: encode a
    sample with the current table, count the gain (frequency × length) of
    every used symbol and of every concatenation of adjacent symbols, and keep
    the ``max_symbols`` highest-gain candidates for the next round.  As in the
    original (and as the paper notes — "a static symbol table defined from a
    small chunk of data from the input file"), the table is built from a
    bounded sample (default 16 KiB) rather than the whole input.
    """
    sample: List[bytes] = []
    used = 0
    for line in corpus:
        if used >= sample_bytes:
            break
        encoded = line.encode("latin-1")
        sample.append(encoded)
        used += len(encoded) + 1
    table: Optional[FsstSymbolTable] = None
    for _ in range(max(1, iterations)):
        single, pairs = _greedy_pass(sample, table)
        gains: Counter = Counter()
        for sym, count in single.items():
            gains[sym] += count * len(sym)
        for sym, count in pairs.items():
            gains[sym] += count * len(sym)
        best = [sym for sym, _ in gains.most_common(max_symbols)]
        table = FsstSymbolTable(best)
    assert table is not None
    return table


class FsstCodec(BaselineCodec):
    """Record-oriented FSST compressor."""

    properties = CodecProperties(
        name="FSST",
        readable_output=False,
        random_access=True,
        shared_dictionary=False,  # symbol table is built per input dataset
    )

    #: FSST codes span the full byte range (newline included), so separable
    #: storage needs a per-record length prefix instead of a newline.
    record_overhead = 2

    def __init__(self, iterations: int = 5, sample_bytes: int = 16_384):
        self.iterations = iterations
        self.sample_bytes = sample_bytes
        self.table: Optional[FsstSymbolTable] = None

    def fit(self, corpus: Sequence[str]) -> "FsstCodec":
        """Build the input-dependent symbol table from a sample of *corpus*."""
        self.table = build_symbol_table(
            corpus, iterations=self.iterations, sample_bytes=self.sample_bytes
        )
        return self

    def _require_table(self) -> FsstSymbolTable:
        if self.table is None:
            raise RuntimeError("FsstCodec.fit must be called before compressing")
        return self.table

    def compress_record(self, record: str) -> bytes:
        table = self._require_table()
        data = record.encode("latin-1")
        out = bytearray()
        pos = 0
        n = len(data)
        while pos < n:
            match = table.longest_match(data, pos)
            if match is None:
                out.append(ESCAPE_CODE)
                out.append(data[pos])
                pos += 1
            else:
                sym, code = match
                out.append(code)
                pos += len(sym)
        return bytes(out)

    def decompress_record(self, payload: bytes) -> str:
        table = self._require_table()
        out = bytearray()
        i = 0
        n = len(payload)
        while i < n:
            code = payload[i]
            if code == ESCAPE_CODE:
                if i + 1 >= n:
                    raise ValueError("dangling FSST escape code")
                out.append(payload[i + 1])
                i += 2
            else:
                out.extend(table.symbol_for_code(code))
                i += 1
        return out.decode("latin-1")
