"""Adapter exposing ZSMILES through the :class:`BaselineCodec` interface.

The Figure 4 experiment iterates over a list of :class:`BaselineCodec`
instances; wrapping the real codec keeps that driver uniform and also gives a
single place where the end-to-end "ZSMILES + Bzip2" pipeline is defined.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.codec import ZSmilesCodec
from ..dictionary.prepopulation import PrePopulation
from .bzip2_codec import bzip2_over_lines
from .interface import BaselineCodec, CodecProperties


class ZSmilesBaseline(BaselineCodec):
    """ZSMILES behind the baseline interface (trains its shared dictionary on ``fit``)."""

    properties = CodecProperties(
        name="ZSMILES",
        readable_output=True,
        random_access=True,
        shared_dictionary=True,
    )

    def __init__(
        self,
        preprocessing: bool = True,
        prepopulation: PrePopulation = PrePopulation.SMILES_ALPHABET,
        lmax: int = 8,
    ):
        self.preprocessing = preprocessing
        self.prepopulation = prepopulation
        self.lmax = lmax
        self.codec: Optional[ZSmilesCodec] = None

    def fit(self, corpus: Sequence[str]) -> "ZSmilesBaseline":
        """Train the ZSMILES dictionary on *corpus*."""
        self.codec = ZSmilesCodec.train(
            corpus,
            preprocessing=self.preprocessing,
            prepopulation=self.prepopulation,
            lmax=self.lmax,
        )
        return self

    def _require_codec(self) -> ZSmilesCodec:
        if self.codec is None:
            raise RuntimeError("ZSmilesBaseline.fit must be called before compressing")
        return self.codec

    def compress_record(self, record: str) -> bytes:
        return self._require_codec().compress(record).encode("latin-1")

    def decompress_record(self, payload: bytes) -> str:
        return self._require_codec().decompress(payload.decode("latin-1"))

    # ------------------------------------------------------------------ #
    def zsmiles_plus_bzip2_ratio(self, corpus: Sequence[str]) -> float:
        """End-to-end ratio of bzip2 applied on top of the ZSMILES output.

        This is the "ZSMILES + Bzip2" bar of Figure 4: the dataset is first
        compressed record-by-record with ZSMILES (keeping separability for the
        on-line copy), and the resulting ``.zsmi`` file is then bzip2'd for
        cold storage.
        """
        codec = self._require_codec()
        compressed_lines = [codec.compress(record) for record in corpus]
        zsmiles_ratio = sum(len(line) + 1 for line in compressed_lines) / max(
            1, sum(len(record) + 1 for record in corpus)
        )
        bzip2_stage = bzip2_over_lines(compressed_lines)
        return zsmiles_ratio * bzip2_stage
