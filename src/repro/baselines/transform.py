"""Reversible SMILES transform + file-wide compression baseline.

Scanlon & Ridley ("A Fully Reversible Data Transform Technique Enhancing Data
Compression of SMILES Data", reference [15] of the paper, discussed in the
related-work section as the Gupta et al. preprocessing approach) improve the
compressibility of SMILES files by applying a reversible character-level
transform — multi-character tokens that the SMILES grammar treats atomically
(``Cl``, ``Br``, common bracket atoms, frequent punctuation runs) are replaced
by single unused ASCII characters — before running a general-purpose,
file-wide binary compressor.

The paper dismisses this family for its use case because file-wide compression
destroys random access; it is reproduced here so the comparison can be made
quantitatively.
"""

from __future__ import annotations

import bz2
from typing import Dict, List, Sequence

from .interface import BaselineCodec, CodecProperties

#: Fixed, order-sensitive transform table (longest tokens first).  Replacement
#: characters are printable ASCII that never occur in SMILES.
TRANSFORM_TABLE: Dict[str, str] = {
    "C(=O)N": "!",
    "C(=O)O": '"',
    "c1ccccc1": "&",
    "C(F)(F)F": "'",
    "S(=O)(=O)": ",",
    "[nH]": ";",
    "[N+]": "<",
    "[O-]": ">",
    "(=O)": "?",
    "Cl": "^",
    "Br": "`",
    "@@": "{",
    "=O": "|",
}

#: Inverse mapping used by :func:`inverse_transform`.
INVERSE_TABLE: Dict[str, str] = {v: k for k, v in TRANSFORM_TABLE.items()}


def forward_transform(smiles: str) -> str:
    """Apply the reversible token substitution to one SMILES string."""
    out = smiles
    for token, replacement in TRANSFORM_TABLE.items():
        out = out.replace(token, replacement)
    return out


def inverse_transform(text: str) -> str:
    """Invert :func:`forward_transform` exactly."""
    out = text
    # Apply inverses in reverse insertion order so nested replacements undo
    # cleanly (e.g. '=O' must be restored after '(=O)').
    for replacement in reversed(list(TRANSFORM_TABLE.values())):
        out = out.replace(replacement, INVERSE_TABLE[replacement])
    return out


class TransformBzip2Codec(BaselineCodec):
    """Reversible transform followed by file-wide bzip2 (no random access)."""

    properties = CodecProperties(
        name="Transform + Bzip2 (file)",
        readable_output=False,
        random_access=False,
        shared_dictionary=True,
    )

    def __init__(self, compresslevel: int = 9):
        self.compresslevel = compresslevel

    def fit(self, corpus: Sequence[str]) -> "TransformBzip2Codec":
        """The transform table is fixed; nothing to train."""
        return self

    def compress_record(self, record: str) -> bytes:
        return bz2.compress(forward_transform(record).encode("latin-1"), self.compresslevel)

    def decompress_record(self, payload: bytes) -> str:
        return inverse_transform(bz2.decompress(payload).decode("latin-1"))

    # ------------------------------------------------------------------ #
    def compress_corpus_blob(self, corpus: Sequence[str]) -> bytes:
        """Transform every record, join, and compress as one bzip2 stream."""
        blob = "\n".join(forward_transform(s) for s in corpus).encode("latin-1") + b"\n"
        return bz2.compress(blob, self.compresslevel)

    def decompress_corpus_blob(self, payload: bytes) -> List[str]:
        """Recover the original records from a corpus blob."""
        text = bz2.decompress(payload).decode("latin-1")
        return [inverse_transform(line) for line in text.splitlines()]

    def compressed_size(self, corpus: Sequence[str], per_record_overhead: int = 0) -> int:
        return len(self.compress_corpus_blob(corpus))

    def compression_ratio(self, corpus: Sequence[str], per_record_overhead: int = 0) -> float:
        original = sum(len(record) + 1 for record in corpus)
        if original == 0:
            return 1.0
        return self.compressed_size(corpus) / original
